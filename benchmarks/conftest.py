"""Benchmark harness configuration.

Benchmarks run the full-scale workloads (override with REPRO_SCALE).
Each benchmark executes its experiment once (``pedantic`` with a single
round — these are minutes-scale analyses, not microbenchmarks), prints
the regenerated table, and asserts the paper's qualitative shape.
"""

from __future__ import annotations

import os

import pytest

from repro.workloads import BENCHMARK_NAMES, build_benchmark

BENCH_SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session")
def full_suite():
    """Compile the suite once for the whole benchmark session."""
    return {name: build_benchmark(name, BENCH_SCALE) for name in BENCHMARK_NAMES}


def run_once(benchmark, fn, *args):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
