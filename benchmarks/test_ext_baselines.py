"""Extension bench: our encodings vs the related-work schemes."""

from repro.experiments import ext_baselines

from conftest import run_once


def test_ext_baselines(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, ext_baselines.run, bench_scale)
    print()
    print(ext_baselines.render(rows))
    for row in rows:
        # Paper ordering: sub-instruction codewords beat whole-word
        # call-dictionary codewords (which cannot compress single
        # instructions), which beat the software mini-subroutines.
        assert row.nibble < row.baseline
        assert row.baseline < row.liao1
        assert row.liao1 <= row.liao2
        assert row.liao1 <= row.minisub + 0.02
        # CCRP's per-line padding and LAT cost more than one whole-text
        # Huffman pass.
        assert row.huffman < row.ccrp_line
