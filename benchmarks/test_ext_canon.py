"""Extension bench: register canonicalization headroom (paper §5)."""

from repro.experiments import ext_canon

from conftest import run_once


def test_ext_canon(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, ext_canon.run, bench_scale)
    print()
    print(ext_canon.render(rows))
    for row in rows:
        # Renaming always merges some sequences in compiled code...
        assert row.merge_factor > 1.05, row.name
        # ...but not unboundedly (opcodes/immediates still distinguish).
        assert row.merge_factor < 3.0, row.name
        assert row.rescued_occurrences > 0, row.name
