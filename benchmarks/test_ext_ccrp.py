"""Extension bench: CCRP codec vs dictionary compression."""

from repro.experiments import ext_ccrp

from conftest import run_once


def test_ext_ccrp(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, ext_ccrp.run, bench_scale)
    print()
    print(ext_ccrp.render(rows))
    for row in rows:
        # The paper's section 2.3 contrast: byte-granular Huffman with
        # per-line padding and a LAT compresses far less than the
        # dictionary scheme on the same programs.
        assert row.nibble_ratio < row.ccrp_ratio
        assert row.ccrp_ratio < 1.0
