"""Extension bench: dictionary content mix (the SDTS boilerplate story)."""

from repro.experiments import ext_dict_content

from conftest import run_once


def test_ext_dict_content(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, ext_dict_content.run, bench_scale)
    print()
    print(ext_dict_content.render(rows))
    for row in rows:
        boilerplate = sum(
            row.mix.get(cls, 0.0)
            for cls in ("address", "move", "constant", "memory", "return")
        )
        # The compressible fabric of compiled code is the template
        # boilerplate around the computation (paper section 1.1).
        assert boilerplate > 0.5, row.name
        # Relative branches can never enter the dictionary; the only
        # branch-class entries possible are the rare indirect bctr.
        assert row.mix.get("branch", 0.0) < 0.01, row.name