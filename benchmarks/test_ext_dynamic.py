"""Extension bench: profile-guided vs size-optimized dictionaries."""

from repro.experiments import ext_dynamic

from conftest import run_once


def test_ext_dynamic(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, ext_dynamic.run, bench_scale)
    print()
    print(ext_dynamic.render(rows))
    for row in rows:
        # The Pareto trade: profiling reduces fetch traffic...
        assert row.traffic_fetch_bytes <= row.size_fetch_bytes, row.name
        # ...while never beating the size-optimized ratio on ROM size.
        assert row.traffic_ratio_static >= row.size_ratio - 1e-9, row.name
    mean_saved = sum(r.fetch_improvement for r in rows) / len(rows)
    assert mean_saved > 0.01
    benchmark.extra_info["mean_fetch_saved_pct"] = round(100 * mean_saved, 1)
