"""Extension bench: nibble-allocation design-space search."""

from repro.experiments import ext_encoding_search

from conftest import run_once


def test_ext_encoding_search(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, ext_encoding_search.run, bench_scale)
    print()
    print(ext_encoding_search.render(rows))
    for row in rows:
        # The search can never do worse than the Figure 10 allocation
        # (it is in the search space), and the paper's hand-picked
        # choice should be within ~2 points of per-program optimal.
        assert row.best_ratio <= row.figure10_ratio + 1e-12
        assert row.improvement_points < 2.0
        assert row.allocations_tried == 816
        # Paper section 4.1.3's hint: when few codewords are needed,
        # more short codewords win — the best allocation spends at
        # least as many first-nibble values on 1-2 nibble codewords.
        n1, n2, _, _ = row.best_allocation
        assert n1 + n2 >= 12
