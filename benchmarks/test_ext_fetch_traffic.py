"""Extension bench: fetch traffic of the compressed processor."""

from repro.experiments import ext_fetch_traffic

from conftest import run_once


def test_ext_fetch_traffic(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, ext_fetch_traffic.run, bench_scale)
    print()
    print(ext_fetch_traffic.render(rows))
    for row in rows:
        # Compressed fetch moves fewer bytes for the same instruction
        # stream — the [Chen97b] bandwidth argument.
        assert row.traffic_ratio < 1.0
        assert row.codeword_expansions > 0
