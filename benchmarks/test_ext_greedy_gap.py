"""Extension bench: greedy vs exhaustive-optimal dictionaries."""

from repro.experiments import ext_greedy_gap

from conftest import run_once


def test_ext_greedy_gap(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, ext_greedy_gap.run, bench_scale)
    print()
    print(ext_greedy_gap.render(rows))
    for row in rows:
        # Paper footnote 1: greedy is near-optimal in practice.
        assert row.gap <= 0.05, row.name
        assert row.subsets_tried > 1000
