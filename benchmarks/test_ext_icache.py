"""Extension bench: I-cache miss rates ([Chen97a] effect)."""

from repro.experiments import ext_icache

from conftest import run_once


def test_ext_icache(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, ext_icache.run, bench_scale)
    print()
    print(ext_icache.render(rows))
    for row in rows:
        for size, (uncompressed, compressed) in row.miss_rates.items():
            # Denser code never misses more, and at small caches the
            # reduction is substantial.
            assert compressed <= uncompressed + 1e-12, (row.name, size)
        small_unc, small_cmp = row.miss_rates[min(row.miss_rates)]
        assert small_cmp < small_unc, row.name
