"""Extension bench: optimization level vs compression."""

from repro.experiments import ext_optlevel

from conftest import run_once


def test_ext_optlevel(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, ext_optlevel.run, bench_scale)
    print()
    print(ext_optlevel.render(rows))
    for row in rows:
        # Unoptimized code is bigger...
        assert row.text_inflation > 1.0, row.name
        # ...but compresses essentially as well as optimized code, so
        # the compressed O0/O2 gap stays close to the text gap — the
        # compression ratio is insensitive to the optimization level.
        assert abs(row.o0_ratio - row.o2_ratio) < 0.04, row.name
        assert row.compressed_inflation <= row.text_inflation + 0.03, row.name
