"""Extension bench: standardized-prologue ablation (paper section 5)."""

from repro.experiments import ext_prologue

from conftest import run_once


def test_ext_prologue(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, ext_prologue.run, bench_scale)
    print()
    print(ext_prologue.render(rows))
    for row in rows:
        # Standardizing prologues roughly doubles the pre-compression
        # binary (every function saves all 18 callee-saved registers)...
        assert row.standard_text_bytes >= 1.5 * row.normal_text_bytes
        # ...and compression recovers nearly all of it: the uniform
        # save/restore sequences collapse into codewords, leaving the
        # final size within ~15% of the normal build instead of ~2x.
        assert row.standard_compressed <= 1.15 * row.normal_compressed
        assert row.standard_compressed <= 0.30 * row.standard_text_bytes
