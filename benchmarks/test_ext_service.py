"""Extension bench: batch service throughput, cold vs. warm cache.

Runs the full 8-workload suite across all three encodings through
``repro.service`` twice against the same artifact cache.  The cold
pass compiles and compresses everything; the warm pass must be served
entirely from cache (>= 90% hit rate is the acceptance bar; we assert
100%), bit-identical to the fresh artifacts, and measurably faster.
"""

import time

from repro.experiments.common import suite_batch
from repro.service import ArtifactCache, MetricsRegistry
from repro.service.jobs import ENCODING_NAMES

from conftest import run_once


def _pass(cache, scale, registry):
    start = time.perf_counter()
    results = suite_batch(
        ENCODING_NAMES, scale, cache=cache, processes=0, metrics=registry
    )
    return results, time.perf_counter() - start


def test_ext_service(benchmark, bench_scale, tmp_path):
    cache = ArtifactCache(tmp_path / "artifacts")
    registry = MetricsRegistry()

    cold_results, cold_seconds = run_once(
        benchmark, _pass, cache, bench_scale, registry
    )
    warm_results, warm_seconds = _pass(cache, bench_scale, registry)

    assert all(result.ok for result in cold_results)
    assert all(result.ok for result in warm_results)
    assert len(cold_results) == 24  # 8 workloads x 3 encodings

    # Warm pass: 100% cache hits (acceptance bar: >= 90%).
    hit_rate = sum(r.cache_hit for r in warm_results) / len(warm_results)
    assert hit_rate >= 0.9
    # Cached artifacts are bit-identical to the fresh ones.
    for cold, warm in zip(cold_results, warm_results):
        assert warm.blob == cold.blob
        assert warm.image().to_bytes() == cold.blob

    # The win the service exists for: warm >> cold throughput.
    assert warm_seconds < cold_seconds / 5, (cold_seconds, warm_seconds)

    print()
    print(
        f"cold: {cold_seconds:8.2f}s  "
        f"({len(cold_results) / cold_seconds:6.2f} jobs/s)"
    )
    print(
        f"warm: {warm_seconds:8.2f}s  "
        f"({len(warm_results) / warm_seconds:6.2f} jobs/s)  "
        f"speedup x{cold_seconds / warm_seconds:.0f}"
    )
    print(registry.report())
