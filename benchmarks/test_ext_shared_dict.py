"""Extension bench: per-program vs shared dictionary (adaptivity)."""

from repro.experiments import ext_shared_dict

from conftest import run_once


def test_ext_shared_dict(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, ext_shared_dict.run, bench_scale)
    print()
    print(ext_shared_dict.render(rows))
    for row in rows:
        # Paper section 2.2: dictionaries derived from "the specific
        # characteristics of the program under execution" beat a fixed
        # compromise set on every benchmark.
        assert row.own_ratio <= row.shared_ratio + 1e-9, row.name
    mean_gain = sum(r.adaptivity_points for r in rows) / len(rows)
    assert mean_gain > 0.5
    benchmark.extra_info["mean_adaptivity_points"] = round(mean_gain, 1)
