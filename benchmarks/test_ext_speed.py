"""Extension bench: cycle estimates vs bus width (speed/size trade)."""

from repro.experiments import ext_speed

from conftest import run_once


def test_ext_speed(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, ext_speed.run, bench_scale)
    print()
    print(ext_speed.render(rows))
    for row in rows:
        # Narrow embedded bus: compression wins cycles outright.
        assert row.speedup(1) > 1.0, row.name
        # Wide bus: compression costs cycles (the paper's stated trade:
        # "execution speed can be traded for compression").
        assert row.speedup(4) < 1.0, row.name
        # Speedup degrades monotonically as the bus widens.
        assert row.speedup(1) > row.speedup(2) > row.speedup(4), row.name
