"""Extension bench: vs Thumb/MIPS16-style dense re-encoding (paper §2.2)."""

from repro.experiments import ext_thumb

from conftest import run_once


def test_ext_thumb(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, ext_thumb.run, bench_scale)
    print()
    print(ext_thumb.render(rows))
    for row in rows:
        # Recompiling for the dense subset beats re-encoding the binary.
        assert row.thumb_recompiled_ratio < row.thumb_reencode_ratio
        # Paper's claim: the per-program dictionary approach reaches at
        # least Thumb-class compression without a new compiler/ISA.
        assert row.nibble_ratio < row.thumb_recompiled_ratio
        # The dense model re-encodes a majority of instructions, as
        # Thumb/MIPS16 do.
        assert row.dense_fraction > 0.6
