"""Regenerates paper Figure 11 (nibble scheme vs Unix compress)."""

from repro.experiments import fig11_vs_compress

from conftest import run_once


def test_fig11_vs_compress(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, fig11_vs_compress.run, bench_scale)
    print()
    print(fig11_vs_compress.render(rows))
    for row in rows:
        reduction = 1.0 - row.nibble_ratio
        # Paper headline: 30-50% reduction (our synthetic suite is
        # slightly more compressible; allow up to 65%).
        assert 0.30 < reduction < 0.65, row.name
        # Paper: the gap to the adaptive coder stays within ~5 points.
        assert abs(row.gap_points) < 10.0, row.name
    benchmark.extra_info["mean_reduction_pct"] = round(
        100 * (1 - sum(r.nibble_ratio for r in rows) / len(rows)), 1
    )
