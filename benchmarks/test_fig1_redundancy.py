"""Regenerates paper Figure 1 (instruction-encoding redundancy)."""

from repro.experiments import fig1_redundancy

from conftest import run_once


def test_fig1_redundancy(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, fig1_redundancy.run, bench_scale)
    print()
    print(fig1_redundancy.render(rows))
    average_unique = sum(r.unique_instruction_pct for r in rows) / len(rows)
    assert average_unique < 0.20  # paper: "on average, less than 20%"
    benchmark.extra_info["avg_unique_encoding_pct"] = round(100 * average_unique, 1)
