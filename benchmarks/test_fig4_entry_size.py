"""Regenerates paper Figure 4 (dictionary entry length sweep)."""

from repro.experiments import fig4_entry_size

from conftest import run_once


def test_fig4_entry_size(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, fig4_entry_size.run, bench_scale)
    print()
    print(fig4_entry_size.render(rows))
    for row in rows:
        assert row.ratios[2] < row.ratios[1]
        assert row.ratios[4] <= row.ratios[2] + 0.002
        assert abs(row.ratios[8] - row.ratios[4]) < 0.06
