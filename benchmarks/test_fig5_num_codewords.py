"""Regenerates paper Figure 5 (codeword count sweep)."""

from repro.experiments import fig5_num_codewords

from conftest import run_once


def test_fig5_num_codewords(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, fig5_num_codewords.run, bench_scale)
    print()
    print(fig5_num_codewords.render(rows))
    for row in rows:
        budgets = sorted(row.ratios)
        for small, large in zip(budgets, budgets[1:]):
            assert row.ratios[large] <= row.ratios[small] + 1e-9
        # Dictionary size is the single most important parameter: going
        # from 16 to 8192 codewords buys a large improvement.
        assert row.ratios[16] - row.ratios[8192] > 0.10
