"""Regenerates paper Figure 6 (dictionary composition, ijpeg)."""

from repro.experiments import fig6_dict_composition

from conftest import run_once


def test_fig6_dict_composition(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, fig6_dict_composition.run, bench_scale)
    print()
    print(fig6_dict_composition.render(rows))
    largest = rows[-1]
    # Paper: 48%-80% of entries hold a single instruction, growing with
    # dictionary size.
    assert largest.length_fractions.get(1, 0) > 0.45
    assert largest.length_fractions.get(1, 0) >= rows[0].length_fractions.get(1, 0)
