"""Regenerates paper Figure 7 (bytes saved by entry length, ijpeg)."""

from repro.experiments import fig7_bytes_saved

from conftest import run_once


def test_fig7_bytes_saved(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, fig7_bytes_saved.run, bench_scale)
    print()
    print(fig7_bytes_saved.render(rows))
    largest = rows[-1]
    total = sum(largest.saved_fraction_by_length.values())
    by_length = largest.saved_fraction_by_length
    singles = by_length.get(1, 0)
    # Paper: single-instruction entries provide the largest share of
    # the savings (48-60% there; our synthetic suite has more savings
    # in long uniform sequences, so the share is lower but single
    # instructions remain the largest single length class).
    assert singles / total > 0.25
    assert singles == max(by_length.values())
    # And their share grows with dictionary size (paper's second claim).
    smallest = rows[0]
    smallest_share = (
        smallest.saved_fraction_by_length.get(1, 0)
        / sum(smallest.saved_fraction_by_length.values())
    )
    assert singles / total >= smallest_share
