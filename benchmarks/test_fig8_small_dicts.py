"""Regenerates paper Figure 8 (1-byte codewords, small dictionaries)."""

from repro.experiments import fig8_small_dicts

from conftest import run_once


def test_fig8_small_dicts(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, fig8_small_dicts.run, bench_scale)
    print()
    print(fig8_small_dicts.render(rows))
    for row in rows:
        # More entries always help, and the dictionary stays tiny.
        assert row.ratios[32] <= row.ratios[16] <= row.ratios[8] < 1.0
        assert row.dictionary_bytes[32] <= 512
    average = sum(row.ratios[32] for row in rows) / len(rows)
    # Paper: a 512-byte dictionary buys ~15% reduction on average; our
    # scaled-down synthetic programs concentrate more size in the top
    # sequences, so the reduction is at least as strong.
    assert average <= 0.85
