"""Regenerates paper Figure 9 (composition of compressed program)."""

from repro.experiments import fig9_composition

from conftest import run_once


def test_fig9_composition(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, fig9_composition.run, bench_scale)
    print()
    print(fig9_composition.render(rows))
    for stats in rows:
        fractions = stats.composition_fractions()
        codewords = fractions["codeword_index"] + fractions["codeword_escape"]
        # Paper: with 8192 codewords, codewords are a large share of
        # the program and escape bytes are exactly half of them (2-byte
        # codewords = 1 escape byte + 1 index byte).
        assert codewords > 0.25
        assert abs(fractions["codeword_escape"] - fractions["codeword_index"]) < 1e-9
        assert fractions["dictionary"] > 0.0
