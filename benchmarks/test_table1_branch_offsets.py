"""Regenerates paper Table 1 (branch offset field usage)."""

from repro.experiments import table1_branch_offsets

from conftest import run_once


def test_table1_branch_offsets(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, table1_branch_offsets.run, bench_scale)
    print()
    print(table1_branch_offsets.render(rows))
    for row in rows:
        # Paper: almost all branches have slack; the worst column stays
        # a tiny fraction even at 4-bit target resolution.
        assert row.percent(row.too_narrow_4bit) < 5.0
