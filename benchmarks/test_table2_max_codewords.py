"""Regenerates paper Table 2 (maximum codewords used)."""

from repro.experiments import table2_max_codewords

from conftest import run_once


def test_table2_max_codewords(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, table2_max_codewords.run, bench_scale)
    print()
    print(table2_max_codewords.render(rows))
    by_name = {row.name: row for row in rows}
    # Bigger programs need more codewords; gcc tops the table as in the
    # paper, compress sits at the bottom.
    assert by_name["gcc"].max_codewords_used == max(
        row.max_codewords_used for row in rows
    )
    assert by_name["compress"].max_codewords_used == min(
        row.max_codewords_used for row in rows
    )
