"""Regenerates paper Table 3 (prologue/epilogue share)."""

from repro.experiments import table3_prologue

from conftest import run_once


def test_table3_prologue(benchmark, bench_scale, full_suite):
    rows = run_once(benchmark, table3_prologue.run, bench_scale)
    print()
    print(table3_prologue.render(rows))
    for row in rows:
        combined = row.prologue_fraction + row.epilogue_fraction
        # Paper: prologue+epilogue typically ~12% of the program.
        assert 0.05 < combined < 0.25, row.name
