"""Design-space exploration: which encoding for which memory budget?

Sweeps the compression parameters the paper identifies as the two that
matter — dictionary size first, codeword size second (section 5) — over
one of the synthetic CINT95 benchmarks, and prints a designer-facing
recommendation table: for each instruction-memory budget, the cheapest
configuration that fits.

The sweep runs through the batch service (`repro.service`): each
configuration is a CompressionJob keyed by program content + encoding
parameters, so re-running the script (or widening the sweep) reuses
cached artifacts instead of recompressing everything from scratch.

Run:  python examples/design_space.py [benchmark] [--scale S]
      [--cache-dir DIR | --no-cache] [--processes N]
"""

import argparse
import os

from repro.baselines import unix_compress_size
from repro.service import ArtifactCache, CompressionJob, run_batch
from repro.workloads import BENCHMARK_NAMES, build_benchmark


def sweep_jobs(program):
    """Yield (label, job) across the design space."""
    for entries in (8, 16, 32):
        yield (
            f"1-byte codewords, {entries}-entry dict",
            CompressionJob(program=program, encoding="onebyte",
                           max_codewords=entries),
        )
    for budget in (256, 1024, 4096, 8192):
        yield (
            f"2-byte codewords, {budget} codewords",
            CompressionJob(program=program, encoding="baseline",
                           max_codewords=budget),
        )
    for budget in (584, 4680):
        yield (
            f"nibble codewords, {budget} codewords",
            CompressionJob(program=program, encoding="nibble",
                           max_codewords=budget),
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="ijpeg",
                        choices=BENCHMARK_NAMES)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--cache-dir",
                        default=os.environ.get("REPRO_CACHE_DIR",
                                               ".repro-cache"))
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--processes", type=int, default=0)
    args = parser.parse_args()

    program = build_benchmark(args.benchmark, args.scale)
    original = program.text_size
    print(f"{args.benchmark}: {len(program.text)} instructions, "
          f"{original} bytes uncompressed\n")

    labels_and_jobs = list(sweep_jobs(program))
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    results = run_batch(
        [job for _, job in labels_and_jobs],
        cache=cache,
        processes=args.processes,
    )

    rows = []
    print(f"{'configuration':38s} {'stream':>8s} {'dict':>7s} "
          f"{'total':>8s} {'ratio':>7s}")
    for (label, _), result in zip(labels_and_jobs, results):
        if not result.ok:
            print(f"{label:38s} FAILED: {result.error}")
            continue
        meta = result.meta
        rows.append((label, meta))
        hit = "  (cached)" if result.cache_hit else ""
        print(
            f"{label:38s} {meta['stream_bytes']:7d}B "
            f"{meta['dictionary_bytes']:6d}B "
            f"{meta['compressed_bytes']:7d}B "
            f"{meta['compressed_bytes'] / original:7.1%}{hit}"
        )

    lzw = unix_compress_size(program.text_bytes())
    print(f"\n(reference: Unix compress on the raw text = {lzw} bytes, "
          f"{lzw / original:.1%} — not executable in place)")

    # Recommendation table: smallest dictionary RAM that meets each budget.
    print("\nrecommendations by instruction-memory budget:")
    for fraction in (0.8, 0.7, 0.6, 0.5, 0.45):
        budget = int(original * fraction)
        fitting = [
            (label, meta) for label, meta in rows
            if meta["compressed_bytes"] <= budget
        ]
        if not fitting:
            print(f"  <= {fraction:.0%} of original ({budget:6d}B): "
                  "no configuration fits")
            continue
        label, best = min(fitting, key=lambda lm: lm[1]["dictionary_bytes"])
        print(
            f"  <= {fraction:.0%} of original ({budget:6d}B): {label} "
            f"(needs {best['dictionary_bytes']}B of dictionary RAM)"
        )


if __name__ == "__main__":
    main()
