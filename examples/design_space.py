"""Design-space exploration: which encoding for which memory budget?

Sweeps the compression parameters the paper identifies as the two that
matter — dictionary size first, codeword size second (section 5) — over
one of the synthetic CINT95 benchmarks, and prints a designer-facing
recommendation table: for each instruction-memory budget, the cheapest
configuration that fits.

Run:  python examples/design_space.py [benchmark] [--scale S]
"""

import argparse

from repro import BaselineEncoding, NibbleEncoding, OneByteEncoding, compress
from repro.baselines import unix_compress_size
from repro.workloads import BENCHMARK_NAMES, build_benchmark


def sweep(program):
    """Yield (label, compressed) across the design space."""
    for entries in (8, 16, 32):
        yield f"1-byte codewords, {entries}-entry dict", compress(
            program, OneByteEncoding(entries)
        )
    for budget in (256, 1024, 4096, 8192):
        yield f"2-byte codewords, {budget} codewords", compress(
            program, BaselineEncoding(), max_codewords=budget
        )
    for budget in (584, 4680):
        yield f"nibble codewords, {budget} codewords", compress(
            program, NibbleEncoding(), max_codewords=budget
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="ijpeg",
                        choices=BENCHMARK_NAMES)
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    program = build_benchmark(args.benchmark, args.scale)
    original = program.text_size
    print(f"{args.benchmark}: {len(program.text)} instructions, "
          f"{original} bytes uncompressed\n")

    results = []
    print(f"{'configuration':38s} {'stream':>8s} {'dict':>7s} "
          f"{'total':>8s} {'ratio':>7s}")
    for label, compressed in sweep(program):
        results.append((label, compressed))
        print(
            f"{label:38s} {compressed.stream_bytes:7d}B "
            f"{compressed.dictionary_bytes:6d}B "
            f"{compressed.compressed_bytes:7d}B "
            f"{compressed.compression_ratio:7.1%}"
        )

    lzw = unix_compress_size(program.text_bytes())
    print(f"\n(reference: Unix compress on the raw text = {lzw} bytes, "
          f"{lzw / original:.1%} — not executable in place)")

    # Recommendation table: smallest dictionary RAM that meets each budget.
    print("\nrecommendations by instruction-memory budget:")
    for fraction in (0.8, 0.7, 0.6, 0.5, 0.45):
        budget = int(original * fraction)
        fitting = [
            (label, c) for label, c in results if c.compressed_bytes <= budget
        ]
        if not fitting:
            print(f"  <= {fraction:.0%} of original ({budget:6d}B): "
                  "no configuration fits")
            continue
        label, best = min(fitting, key=lambda lc: lc[1].dictionary_bytes)
        print(
            f"  <= {fraction:.0%} of original ({budget:6d}B): {label} "
            f"(needs {best.dictionary_bytes}B of dictionary RAM)"
        )


if __name__ == "__main__":
    main()
