"""Embedded firmware scenario: fit a controller into a smaller ROM.

The paper's motivating setting — "embedded processors where instruction
memory size dominates cost" — with the small-dictionary compression of
section 4.1.2: 1-byte codewords drawn from the 32 illegal-opcode escape
bytes, dictionaries of 8/16/32 entries (128/256/512 bytes of on-chip
dictionary RAM).

The firmware is a thermostat/fan controller: sensor filtering, a mode
state machine, PID-ish control arithmetic, and an alarm log.

Run:  python examples/embedded_firmware.py
"""

from repro import OneByteEncoding, compile_and_link, compress
from repro.machine import run_compressed, run_program

FIRMWARE = """
int temp_log[64];
int alarm_log[16];
int alarm_count;
int mode;
int setpoint;
int integral;

int read_sensor(int tick) {
    // Synthetic plant: slow sine-ish drift plus switching noise.
    int base = 210 + ((tick * 7) % 40) - 20;
    int noise = ((tick * 1103515245 + 12345) >> 16) & 7;
    return base + noise - 3;
}

int median3(int a, int b, int c) {
    if (a > b) { int t = a; a = b; b = t; }
    if (b > c) { int t = b; b = c; c = t; }
    if (a > b) { int t = a; a = b; b = t; }
    return b;
}

int filter_temp(int tick) {
    int s0 = read_sensor(tick);
    int s1 = read_sensor(tick + 1);
    int s2 = read_sensor(tick + 2);
    return median3(s0, s1, s2);
}

void log_alarm(int code, int value) {
    if (alarm_count < 16) {
        alarm_log[alarm_count] = code * 1000 + value;
        alarm_count = alarm_count + 1;
    }
}

int control_output(int temperature) {
    int error = setpoint - temperature;
    integral = clamp(integral + error, 0 - 500, 500);
    int output = error * 4 + integral / 8;
    return clamp(output, 0 - 255, 255);
}

int next_mode(int temperature) {
    switch (mode) {
        case 0:  // idle
            if (temperature > setpoint + 10) { return 2; }
            if (temperature < setpoint - 10) { return 1; }
            return 0;
        case 1:  // heating
            if (temperature >= setpoint) { return 0; }
            return 1;
        case 2:  // cooling
            if (temperature <= setpoint) { return 0; }
            return 2;
        case 3:  // fault
            return 3;
        default:
            return 0;
    }
}

void main() {
    setpoint = 220;
    mode = 0;
    integral = 0;
    alarm_count = 0;
    int checksum = 0;
    int tick;
    for (tick = 0; tick < 64; tick = tick + 1) {
        int temperature = filter_temp(tick * 3);
        temp_log[tick] = temperature;
        if (temperature > 245) { log_alarm(1, temperature); mode = 3; }
        mode = next_mode(temperature);
        int output = control_output(temperature);
        checksum = checksum ^ (output + mode * 256 + tick);
    }
    print_int(checksum);
    print_nl();
    print_int(alarm_count);
    print_nl();
    print_int(sum_i(temp_log, 64) / 64);
    print_nl();
}
"""


def main() -> None:
    program = compile_and_link(FIRMWARE, name="thermostat")
    rom_uncompressed = program.text_size
    print(f"firmware: {len(program.text)} instructions, "
          f"{rom_uncompressed} bytes of ROM uncompressed\n")

    reference = run_program(program)
    print(f"{'dict entries':>12s} {'dict RAM':>9s} {'ROM bytes':>10s} "
          f"{'ratio':>7s} {'verified':>9s}")
    for entries in (8, 16, 32):
        compressed = compress(program, OneByteEncoding(entries))
        result = run_compressed(compressed)
        ok = result.output_text == reference.output_text
        print(
            f"{entries:12d} {compressed.dictionary_bytes:8d}B "
            f"{compressed.stream_bytes:9d}B "
            f"{compressed.compression_ratio:7.1%} {str(ok):>9s}"
        )
        assert ok

    best = compress(program, OneByteEncoding(32))
    saved = rom_uncompressed - best.compressed_bytes
    print(
        f"\nwith a 512-byte dictionary the ROM shrinks by {saved} bytes "
        f"({saved / rom_uncompressed:.0%}) and the firmware still runs "
        "bit-identically."
    )
    print(f"controller output: {reference.output_text.split()}")


if __name__ == "__main__":
    main()
