"""Why compiled code compresses: inspect encoding redundancy.

Walks one synthetic benchmark with the ISA tools and shows the paper's
Figure 1 intuition directly: a handful of instruction encodings —
prologue stores, address-formation pairs, returns — dominate the static
program.

Run:  python examples/inspect_redundancy.py [benchmark]
"""

import argparse
from collections import Counter

from repro.core.profile import coverage_of_top_fraction, encoding_redundancy
from repro.isa.disassembler import disassemble
from repro.workloads import BENCHMARK_NAMES, build_benchmark


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="go",
                        choices=BENCHMARK_NAMES)
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    program = build_benchmark(args.benchmark, args.scale)
    profile = encoding_redundancy(program)
    print(f"{args.benchmark}: {profile.total_instructions} instructions, "
          f"{profile.distinct_encodings} distinct encodings")
    print(f"  instructions whose encoding appears exactly once: "
          f"{profile.unique_fraction:.1%}  (paper: <20% on average)")
    print(f"  top 1% of distinct encodings cover "
          f"{coverage_of_top_fraction(program, 0.01):.1%} of the program")
    print(f"  top 10% cover {coverage_of_top_fraction(program, 0.10):.1%}")
    print()

    counts = Counter(program.words())
    print("the 15 most frequent instruction encodings:")
    print(f"{'count':>7s} {'share':>7s}  {'word':10s} instruction")
    for word, count in counts.most_common(15):
        share = count / profile.total_instructions
        print(f"{count:7d} {share:7.2%}  {word:#010x} {disassemble(word)}")


if __name__ == "__main__":
    main()
