"""Performance study: what does compression cost — or save — at runtime?

The paper targets systems that "trade execution speed for compression"
and leaves the performance question to future work.  This example puts
the repo's performance instruments together on one benchmark:

1. fetch traffic (bytes moved from program memory),
2. I-cache miss rates across cache sizes,
3. cycle estimates across instruction-bus widths,
4. the profile-guided dictionary's effect on all of the above.

Run:  python examples/performance_study.py [benchmark] [--scale S]
"""

import argparse

from repro import NibbleEncoding, compress
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.icache import InstructionCache, attach_to_simulator
from repro.machine.simulator import Simulator, profile_program
from repro.machine.timing import TimingParameters, time_compressed, time_uncompressed
from repro.workloads import BENCHMARK_NAMES, build_benchmark


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="m88ksim",
                        choices=BENCHMARK_NAMES)
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    program = build_benchmark(args.benchmark, args.scale)
    compressed = compress(program, NibbleEncoding())
    print(f"{args.benchmark}: {program.text_size} bytes -> "
          f"{compressed.compressed_bytes} bytes "
          f"({compressed.compression_ratio:.1%})\n")

    # 1. Fetch traffic -------------------------------------------------
    plain = Simulator(program)
    plain_result = plain.run()
    packed = CompressedSimulator(compressed)
    packed.run()
    uncompressed_bytes = 4 * plain_result.steps
    compressed_bytes = packed.stats.bytes_fetched(
        compressed.encoding.alignment_bits
    )
    print(f"fetch traffic: {uncompressed_bytes} B uncompressed vs "
          f"{compressed_bytes:.0f} B compressed "
          f"({compressed_bytes / uncompressed_bytes:.2f}x)\n")

    # 2. I-cache misses -------------------------------------------------
    print(f"{'cache':>8s} {'uncompressed':>13s} {'compressed':>11s}")
    for size in (256, 512, 1024, 2048):
        reference = Simulator(program)
        reference_cache = attach_to_simulator(
            reference, InstructionCache(size, 16, 2), 32
        )
        reference.run()
        dense = CompressedSimulator(compressed)
        dense_cache = attach_to_simulator(
            dense, InstructionCache(size, 16, 2),
            compressed.encoding.alignment_bits,
        )
        dense.run()
        print(f"{size:7d}B {reference_cache.stats.miss_rate:13.2%} "
              f"{dense_cache.stats.miss_rate:11.2%}")
    print()

    # 3. Cycle estimates -------------------------------------------------
    print(f"{'bus':>6s} {'uncompressed':>13s} {'compressed':>11s} {'speedup':>8s}")
    for bus in (1, 2, 4):
        params = TimingParameters(bus_bytes=bus)
        reference_cycles = time_uncompressed(program, params).cycles
        dense_cycles = time_compressed(compressed, params).cycles
        print(f"{bus:5d}B {reference_cycles:13.0f} {dense_cycles:11.0f} "
              f"{reference_cycles / dense_cycles:7.2f}x")
    print()

    # 4. Profile-guided dictionary ----------------------------------------
    profile = profile_program(program)
    tuned = compress(program, NibbleEncoding(), position_weights=profile)
    tuned_sim = CompressedSimulator(tuned)
    tuned_sim.run()
    tuned_bytes = tuned_sim.stats.bytes_fetched(tuned.encoding.alignment_bits)
    print("profile-guided dictionary:")
    print(f"  static ratio {compressed.compression_ratio:.1%} -> "
          f"{tuned.compression_ratio:.1%}")
    print(f"  fetch bytes  {compressed_bytes:.0f} -> {tuned_bytes:.0f} "
          f"({1 - tuned_bytes / compressed_bytes:+.1%} saved)")


if __name__ == "__main__":
    main()
