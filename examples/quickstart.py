"""Quickstart: compile, compress, inspect, and execute a program.

Reproduces the paper's Figure 2 in miniature: a MiniC program is
compiled to PowerPC, the dictionary compressor replaces its repeated
instruction sequences with codewords, and the compressed image runs on
the compressed-program processor model with identical output.

Run:  python examples/quickstart.py
"""

from repro import BaselineEncoding, NibbleEncoding, compile_and_link, compress
from repro.isa.disassembler import format_instruction
from repro.machine import run_compressed, run_program

SOURCE = """
int histogram[16];
int samples[64];

void classify(int data[], int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        int bucket = (data[i] >> 4) & 15;
        histogram[bucket] = histogram[bucket] + 1;
    }
}

int peak() {
    int best = 0;
    int i;
    for (i = 1; i < 16; i = i + 1) {
        if (histogram[i] > histogram[best]) { best = i; }
    }
    return best;
}

void main() {
    int i;
    for (i = 0; i < 64; i = i + 1) {
        samples[i] = (i * 37 + 11) & 255;
    }
    classify(samples, 64);
    print_int(peak());
    print_nl();
}
"""


def main() -> None:
    program = compile_and_link(SOURCE, name="quickstart")
    print(f"compiled: {len(program.text)} instructions "
          f"({program.text_size} bytes of .text)\n")

    # --- compress with the paper's two main encodings -----------------
    for encoding in (BaselineEncoding(), NibbleEncoding()):
        compressed = compress(program, encoding)
        print(
            f"{encoding.name:9s}: {compressed.stream_bytes:5d} stream bytes "
            f"+ {compressed.dictionary_bytes:4d} dictionary bytes "
            f"-> ratio {compressed.compression_ratio:.1%} "
            f"({len(compressed.dictionary)} codewords)"
        )
    print()

    # --- a Figure-2 style listing: codewords amid instructions --------
    compressed = compress(program, BaselineEncoding())
    print("first compressed tokens of classify():")
    start, _ = program.function_ranges()["classify"]
    shown = 0
    for token in compressed.tokens:
        if token.orig_index is None or token.orig_index < start:
            continue
        if shown >= 12:
            break
        if token.kind == "cw":
            entry = compressed.dictionary[token.rank]
            body = "; ".join(
                format_instruction(ins)
                for ins in map(_decode, entry.words)
            )
            print(f"  CODEWORD #{token.rank:<4d} -> {body}")
        else:
            print(f"  {format_instruction(token.instruction)}")
        shown += 1
    print()

    # --- the dictionary itself ----------------------------------------
    print("top 5 dictionary entries (rank: uses, instructions):")
    for rank, entry in enumerate(compressed.dictionary.entries[:5]):
        body = "; ".join(format_instruction(_decode(w)) for w in entry.words)
        print(f"  #{rank}: {entry.uses:3d} uses   {body}")
    print()

    # --- execute both ways ---------------------------------------------
    reference = run_program(program)
    result = run_compressed(compressed)
    print(f"uncompressed output: {reference.output_text.strip()!r}")
    print(f"compressed output:   {result.output_text.strip()!r}")
    assert result.output_text == reference.output_text
    print("outputs identical — the compressed image is execution-equivalent.")


def _decode(word):
    from repro.isa.instruction import decode

    return decode(word)


if __name__ == "__main__":
    main()
