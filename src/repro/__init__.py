"""repro — reproduction of "Improving Code Density Using Compression
Techniques" (Lefurgy, Bird, Chen, Mudge; U. Michigan CSE-TR-342-97 /
MICRO 1997).

The package provides the full stack the paper's evaluation needs:

* :mod:`repro.isa` — a bit-accurate 32-bit PowerPC subset,
* :mod:`repro.compiler` — a MiniC SDTS compiler (GCC -O2 stand-in),
* :mod:`repro.linker` — static linking into executable Programs,
* :mod:`repro.workloads` — the synthetic SPEC CINT95-like suite,
* :mod:`repro.core` — the paper's dictionary compression (greedy
  dictionary, baseline/1-byte/nibble codeword encodings, branch
  patching),
* :mod:`repro.machine` — functional simulation, uncompressed and
  compressed (dictionary-expanding fetch stage),
* :mod:`repro.baselines` — Unix compress (LZW), CCRP Huffman, Liao
  call-dictionary, mini-subroutines,
* :mod:`repro.experiments` — one module per paper table/figure,
* :mod:`repro.service` — batch compression as a service: content-
  addressed artifact caching, a parallel worker pool, and pipeline
  metrics (the ``repro-serve`` CLI).

Quickstart::

    from repro import compile_and_link, compress, NibbleEncoding
    from repro.machine import run_program, run_compressed

    program = compile_and_link(minic_source)
    compressed = compress(program, NibbleEncoding())
    print(compressed.compression_ratio)
    assert run_compressed(compressed).output_text == \\
        run_program(program).output_text
"""

from repro.compiler import compile_and_link, compile_source
from repro.core import (
    BaselineEncoding,
    CompressedProgram,
    Compressor,
    NibbleEncoding,
    OneByteEncoding,
    compress,
)
from repro.linker import Program, link
from repro.service import (
    ArtifactCache,
    CompressionJob,
    JobResult,
    MetricsRegistry,
    run_batch,
)

__version__ = "1.1.0"

__all__ = [
    "compile_and_link",
    "compile_source",
    "ArtifactCache",
    "BaselineEncoding",
    "CompressedProgram",
    "CompressionJob",
    "Compressor",
    "JobResult",
    "MetricsRegistry",
    "NibbleEncoding",
    "OneByteEncoding",
    "compress",
    "run_batch",
    "Program",
    "link",
    "__version__",
]
