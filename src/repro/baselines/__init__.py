"""Comparison compressors from the paper's related-work section.

* :mod:`lzw` — a Unix ``compress(1)``-style adaptive LZW coder with
  9→16-bit growing codes (paper Figure 11's comparison point).
* :mod:`huffman` — byte-granularity Huffman coding in the style of
  CCRP [Wolfe92/94] (paper section 2.3), with an optional
  cache-line-refill mode and Line Address Table overhead.
* :mod:`liao` — the call-dictionary scheme of [Liao96] (section 2.4):
  codewords are whole instruction words, so single instructions cannot
  be compressed.
* :mod:`minisub` — [Liao96]'s software-only mini-subroutine scheme:
  common sequences become ``bl``-called subroutines ending in ``blr``.
"""

from repro.baselines.huffman import HuffmanResult, huffman_compress_bytes, ccrp_compress
from repro.baselines.lzw import lzw_compress, lzw_decompress, unix_compress_size
from repro.baselines.liao import liao_compress
from repro.baselines.minisub import minisub_compress

__all__ = [
    "HuffmanResult",
    "huffman_compress_bytes",
    "ccrp_compress",
    "lzw_compress",
    "lzw_decompress",
    "unix_compress_size",
    "liao_compress",
    "minisub_compress",
]
