"""Executable CCRP codec: line-granular Huffman with a Line Address Table.

Where :mod:`repro.baselines.huffman` only *estimates* CCRP sizes, this
module implements the actual mechanism of [Wolfe92]:

* one program-wide canonical Huffman code over instruction bytes;
* each cache-line-sized block of .text compressed independently and
  padded to a byte, so a line can be decompressed on refill without
  touching its neighbours;
* a Line Address Table (LAT) mapping line index → byte offset of the
  compressed line.

Because instructions keep their original addresses, the processor core
runs unmodified; ``ccrp_fetch_stats`` models the refill cost by running
the plain simulator with an I-cache and counting the Huffman bits
decoded on each miss — the decode-work comparison the paper's section
2.3 makes against dictionary lookup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import bitutils
from repro.baselines.huffman import assign_codes, code_lengths
from repro.errors import CompressionError
from repro.linker.program import Program
from repro.machine.icache import InstructionCache
from repro.machine.simulator import Simulator


@dataclass(frozen=True)
class CcrpImage:
    """A CCRP-compressed text section."""

    line_bytes: int
    original_length: int
    lengths: dict[int, int]  # canonical Huffman code lengths
    blob: bytes  # concatenated byte-padded compressed lines
    lat: tuple[int, ...]  # line index -> byte offset into blob

    @property
    def line_count(self) -> int:
        return len(self.lat)

    @property
    def lat_bytes(self) -> int:
        # 3 bytes per entry suffices for <=16MB of compressed text.
        return 3 * self.line_count

    @property
    def table_bytes(self) -> int:
        return 256  # one code length byte per symbol

    @property
    def compressed_bytes(self) -> int:
        return len(self.blob) + self.lat_bytes + self.table_bytes

    @property
    def compression_ratio(self) -> float:
        return self.compressed_bytes / self.original_length

    def line_bits(self, line_index: int) -> int:
        """Compressed size of one line in bits (byte-padded)."""
        start = self.lat[line_index]
        end = (
            self.lat[line_index + 1]
            if line_index + 1 < self.line_count
            else len(self.blob)
        )
        return 8 * (end - start)


def ccrp_encode(text: bytes, line_bytes: int = 32) -> CcrpImage:
    """Compress ``text`` line by line with one program-wide code."""
    if line_bytes <= 0:
        raise CompressionError("line size must be positive")
    lengths = code_lengths(text)
    codes = assign_codes(lengths)
    blob = bytearray()
    lat: list[int] = []
    for start in range(0, len(text), line_bytes):
        lat.append(len(blob))
        writer = bitutils.BitWriter()
        for byte in text[start : start + line_bytes]:
            code, width = codes[byte]
            writer.write(code, width)
        blob += writer.getvalue()  # padded to a byte: independent lines
    return CcrpImage(
        line_bytes=line_bytes,
        original_length=len(text),
        lengths=lengths,
        blob=bytes(blob),
        lat=tuple(lat),
    )


def ccrp_decode_line(image: CcrpImage, line_index: int) -> bytes:
    """Decompress one line — what a CCRP cache refill performs."""
    if not 0 <= line_index < image.line_count:
        raise CompressionError(f"line {line_index} out of range")
    reverse = {
        (width, code): symbol
        for symbol, (code, width) in assign_codes(image.lengths).items()
    }
    start = image.lat[line_index]
    end = (
        image.lat[line_index + 1]
        if line_index + 1 < image.line_count
        else len(image.blob)
    )
    reader = bitutils.BitReader(image.blob[start:end])
    expected = min(
        image.line_bytes, image.original_length - line_index * image.line_bytes
    )
    out = bytearray()
    code = 0
    width = 0
    while len(out) < expected:
        code = (code << 1) | reader.read(1)
        width += 1
        symbol = reverse.get((width, code))
        if symbol is not None:
            out.append(symbol)
            code = 0
            width = 0
        elif width > 32:
            raise CompressionError("corrupt CCRP line")
    return bytes(out)


def ccrp_decode_all(image: CcrpImage) -> bytes:
    """Decompress the whole text (used to verify the codec)."""
    return b"".join(
        ccrp_decode_line(image, index) for index in range(image.line_count)
    )


@dataclass(frozen=True)
class CcrpFetchStats:
    """Refill work for one simulated run."""

    name: str
    instructions: int
    cache_misses: int
    decode_bits: int

    @property
    def decode_bits_per_kilo_instruction(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.decode_bits / self.instructions


def ccrp_fetch_stats(
    program: Program,
    cache_size: int = 1024,
    line_bytes: int = 32,
    assoc: int = 2,
    max_steps: int = 50_000_000,
) -> CcrpFetchStats:
    """Run ``program`` with a CCRP front end and count refill work.

    Every I-cache miss decompresses one line; the work counted is the
    number of compressed bits the Huffman decoder walks.
    """
    image = ccrp_encode(program.text_bytes(), line_bytes)
    cache = InstructionCache(cache_size, line_bytes, assoc)
    decode_bits = 0

    simulator = Simulator(program, max_steps=max_steps)

    def hook(byte_address: int, size_units: int) -> None:
        nonlocal decode_bits
        if not cache.access(byte_address):
            line_index = (byte_address - program.text_base) // line_bytes
            decode_bits += image.line_bits(line_index)

    simulator.fetch_hook = hook
    result = simulator.run()
    return CcrpFetchStats(
        name=program.name,
        instructions=result.steps,
        cache_misses=cache.stats.misses,
        decode_bits=decode_bits,
    )
