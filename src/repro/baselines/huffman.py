"""Byte-granularity Huffman coding, CCRP style (paper section 2.3).

CCRP [Wolfe92] Huffman-encodes instruction *bytes* at cache-line
granularity so lines can be decompressed independently on refill; a
Line Address Table (LAT) maps line addresses to compressed locations.
``ccrp_compress`` models both costs: per-line bit padding and the LAT.

The paper contrasts this with its own scheme: byte granularity needs
more codewords per instruction and a LAT, while dictionary codewords
expand to whole instruction groups and need no LAT because branches are
re-patched.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass

from repro.errors import CompressionError


@dataclass(frozen=True)
class HuffmanResult:
    """Huffman coding outcome."""

    payload_bits: int
    table_bytes: int
    code_lengths: dict[int, int]

    @property
    def compressed_bytes(self) -> int:
        return self.table_bytes + (self.payload_bits + 7) // 8


def code_lengths(data: bytes) -> dict[int, int]:
    """Canonical Huffman code lengths for the byte distribution."""
    counts = Counter(data)
    if not counts:
        return {}
    if len(counts) == 1:
        symbol = next(iter(counts))
        return {symbol: 1}
    heap: list[tuple[int, int, tuple[int, ...]]] = []
    for tiebreak, (symbol, count) in enumerate(sorted(counts.items())):
        heap.append((count, tiebreak, (symbol,)))
    heapq.heapify(heap)
    tiebreak = len(heap)
    lengths: dict[int, int] = dict.fromkeys(counts, 0)
    while len(heap) > 1:
        count_a, _, symbols_a = heapq.heappop(heap)
        count_b, _, symbols_b = heapq.heappop(heap)
        for symbol in symbols_a + symbols_b:
            lengths[symbol] += 1
        tiebreak += 1
        heapq.heappush(heap, (count_a + count_b, tiebreak, symbols_a + symbols_b))
    return lengths


def assign_codes(lengths: dict[int, int]) -> dict[int, tuple[int, int]]:
    """Canonical code assignment: symbol -> (code, length)."""
    ordered = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for symbol, length in ordered:
        code <<= length - previous_length
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


def huffman_compress_bytes(data: bytes) -> HuffmanResult:
    """Whole-text Huffman coding of ``data`` (table stored as 256
    one-byte code lengths, the canonical-table convention)."""
    lengths = code_lengths(data)
    payload = sum(lengths[byte] for byte in data)
    return HuffmanResult(payload_bits=payload, table_bytes=256, code_lengths=lengths)


def huffman_roundtrip(data: bytes) -> bool:
    """Encode ``data`` to a bit stream and decode it back; True when the
    round trip is exact (proves the code is prefix-free and canonical
    assignment is consistent)."""
    from repro import bitutils

    if not data:
        return True
    codes = assign_codes(code_lengths(data))
    writer = bitutils.BitWriter()
    for byte in data:
        code, length = codes[byte]
        writer.write(code, length)
    reverse = {(length, code): symbol for symbol, (code, length) in codes.items()}
    reader = bitutils.BitReader(writer.getvalue())
    out = bytearray()
    code = 0
    length = 0
    while len(out) < len(data):
        code = (code << 1) | reader.read(1)
        length += 1
        symbol = reverse.get((length, code))
        if symbol is not None:
            out.append(symbol)
            code = 0
            length = 0
        elif length > 32:
            return False
    return bytes(out) == data


def ccrp_compress(
    data: bytes, line_bytes: int = 32, lat_entry_bytes: int = 3
) -> HuffmanResult:
    """CCRP model: one program-wide Huffman table, lines compressed
    independently (padded to a byte), plus a LAT entry per line."""
    if line_bytes <= 0:
        raise CompressionError("line size must be positive")
    lengths = code_lengths(data)
    payload = 0
    lines = 0
    for start in range(0, len(data), line_bytes):
        line = data[start : start + line_bytes]
        line_bits = sum(lengths[b] for b in line)
        payload += (line_bits + 7) // 8 * 8  # pad each line to a byte
        lines += 1
    table_and_lat = 256 + lines * lat_entry_bytes
    return HuffmanResult(
        payload_bits=payload, table_bytes=table_and_lat, code_lengths=lengths
    )
