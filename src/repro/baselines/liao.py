"""Liao's call-dictionary compression (paper section 2.4, [Liao96]).

The call-dictionary instruction is a full instruction word carrying
``location`` and ``length`` fields; common sequences move to a
dictionary region and are invoked by that instruction.  Because the
codeword occupies one (or two) whole instruction words, a dictionary
entry must contain at least ``codeword_words + 1`` instructions to
save anything — single instructions, the most frequent patterns, can
never be compressed.  The paper's sections 2.4 and 4.1.1 use exactly
this contrast to motivate sub-instruction codewords.

This model reuses the greedy dictionary machinery with Liao's cost
model; it reports sizes only (the scheme's execution semantics —
implicit return after ``length`` instructions — do not need a stream
format to evaluate compression).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.candidates import enumerate_candidates
from repro.core.greedy import _valid_occurrences
from repro.errors import CompressionError
from repro.linker.program import Program


@dataclass(frozen=True)
class LiaoResult:
    """Size accounting for the call-dictionary scheme."""

    name: str
    codeword_words: int
    original_bytes: int
    stream_bytes: int
    dictionary_bytes: int
    entries: int
    replaced_occurrences: int

    @property
    def compressed_bytes(self) -> int:
        return self.stream_bytes + self.dictionary_bytes

    @property
    def compression_ratio(self) -> float:
        return self.compressed_bytes / self.original_bytes


def liao_compress(
    program: Program,
    codeword_words: int = 1,
    max_entry_len: int = 8,
    max_codewords: int | None = None,
) -> LiaoResult:
    """Greedy call-dictionary compression with whole-word codewords."""
    if codeword_words not in (1, 2):
        raise CompressionError("Liao codewords are 1 or 2 instruction words")
    candidates = enumerate_candidates(program, max_entry_len=max_entry_len)
    covered = [False] * len(program.text)
    codeword_bits = 32 * codeword_words

    def savings_bits(length: int, uses: int) -> int:
        return uses * (32 * length - codeword_bits) - 32 * length

    # Simple greedy without a heap: candidate sets here are filtered to
    # length > codeword_words, which keeps them small.
    viable = {
        key: candidate
        for key, candidate in candidates.items()
        if candidate.length > codeword_words
    }
    entries = 0
    entry_lengths: list[int] = []
    replaced = 0
    capacity = max_codewords if max_codewords is not None else 1 << 30
    import heapq

    heap = []
    for key, candidate in viable.items():
        uses = len(candidate.positions)
        priority = savings_bits(candidate.length, uses)
        if priority > 0:
            heap.append((-priority, key))
    heapq.heapify(heap)
    while heap and entries < capacity:
        neg_priority, key = heapq.heappop(heap)
        candidate = viable[key]
        occurrences = _valid_occurrences(candidate, covered)
        current = savings_bits(candidate.length, len(occurrences))
        if current != -neg_priority:
            if current > 0:
                heapq.heappush(heap, (-current, key))
            continue
        if current <= 0:
            break
        entries += 1
        entry_lengths.append(candidate.length)
        replaced += len(occurrences)
        for position in occurrences:
            for index in range(position, position + candidate.length):
                covered[index] = True

    original = program.text_size
    uncovered = sum(1 for flag in covered if not flag)
    stream_bits = 32 * uncovered + codeword_bits * replaced
    dictionary_bytes = 4 * sum(entry_lengths)
    return LiaoResult(
        name=program.name,
        codeword_words=codeword_words,
        original_bytes=original,
        stream_bytes=stream_bits // 8,
        dictionary_bytes=dictionary_bytes,
        entries=entries,
        replaced_occurrences=replaced,
    )
