"""Unix ``compress(1)``-style LZW coder.

The paper's Figure 11 compares the nibble-aligned scheme against Unix
Compress run over the extracted instruction bytes.  This module
implements the same family of coder: LZW with an adaptive dictionary,
variable-width codes growing from 9 to 16 bits, a CLEAR code, and a
dictionary reset when the code space fills while compression degrades
(block mode).  A decompressor provides the round-trip guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import bitutils

CLEAR_CODE = 256
FIRST_FREE = 257
MIN_BITS = 9
MAX_BITS = 16
HEADER_BYTES = 3  # magic (2) + flags (1), as written by compress(1)


@dataclass(frozen=True)
class LzwResult:
    """Compressed output plus accounting."""

    codes: tuple[int, ...]
    payload_bits: int

    @property
    def compressed_bytes(self) -> int:
        return HEADER_BYTES + (self.payload_bits + 7) // 8


def lzw_compress(data: bytes) -> LzwResult:
    """Compress ``data``; returns the code sequence and bit count."""
    dictionary: dict[bytes, int] = {bytes([i]): i for i in range(256)}
    next_code = FIRST_FREE
    code_bits = MIN_BITS
    codes: list[int] = []
    payload_bits = 0

    def emit(code: int) -> None:
        nonlocal payload_bits
        codes.append(code)
        payload_bits += code_bits

    if not data:
        return LzwResult(tuple(), 0)

    window = bytes([data[0]])
    # Track recent compression to decide on dictionary resets, like
    # block-mode compress: reset when full and ratio stops improving.
    consumed = 1
    emitted_bits_at_last_check = 0
    consumed_at_last_check = 0
    for byte in data[1:]:
        candidate = window + bytes([byte])
        consumed += 1
        if candidate in dictionary:
            window = candidate
            continue
        emit(dictionary[window])
        if next_code < (1 << MAX_BITS):
            dictionary[candidate] = next_code
            next_code += 1
            if next_code > (1 << code_bits) and code_bits < MAX_BITS:
                code_bits += 1
        else:
            # Dictionary full: check whether compression is degrading.
            recent_bits = payload_bits - emitted_bits_at_last_check
            recent_bytes = consumed - consumed_at_last_check
            if recent_bytes >= 4096 and recent_bits >= 8 * recent_bytes:
                emit(CLEAR_CODE)
                dictionary = {bytes([i]): i for i in range(256)}
                next_code = FIRST_FREE
                code_bits = MIN_BITS
                emitted_bits_at_last_check = payload_bits
                consumed_at_last_check = consumed
        window = bytes([byte])
    emit(dictionary[window])
    return LzwResult(tuple(codes), payload_bits)


def lzw_decompress(result: LzwResult) -> bytes:
    """Invert :func:`lzw_compress` (dictionary rebuilt on the fly)."""
    if not result.codes:
        return b""
    table: dict[int, bytes] = {i: bytes([i]) for i in range(256)}
    next_code = FIRST_FREE
    out = bytearray()
    previous: bytes | None = None
    for code in result.codes:
        if code == CLEAR_CODE:
            table = {i: bytes([i]) for i in range(256)}
            next_code = FIRST_FREE
            previous = None
            continue
        if previous is None:
            entry = table[code]
        elif code in table:
            entry = table[code]
            if next_code < (1 << MAX_BITS):
                table[next_code] = previous + entry[:1]
                next_code += 1
        else:
            # The classic KwKwK case.
            entry = previous + previous[:1]
            if next_code < (1 << MAX_BITS):
                table[next_code] = entry
                next_code += 1
        out.extend(entry)
        previous = entry
    return bytes(out)


def unix_compress_size(data: bytes) -> int:
    """Compressed size (bytes) of ``data`` under the compress(1) model."""
    return lzw_compress(data).compressed_bytes
