"""Software-only mini-subroutine compression ([Liao96], paper 2.4).

Each common sequence becomes a subroutine ending in ``blr``; every
occurrence is replaced by a ``bl``.  No hardware support is required,
but the sequence must not disturb the link register, so anything
containing a call (``bl``), an LR move, or a return cannot be
abstracted.  Cost model per entry of length L with u uses:

    savings = u * (L - 1) * 4  -  (L + 1) * 4        [bytes]

(the occurrence shrinks to one ``bl``; the subroutine body plus its
``blr`` lands once in .text).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.candidates import enumerate_candidates
from repro.core.greedy import _valid_occurrences
from repro.isa.instruction import decode
from repro.isa.registers import LR
from repro.linker.program import Program


@dataclass(frozen=True)
class MiniSubResult:
    """Size accounting for the mini-subroutine transform."""

    name: str
    original_bytes: int
    compressed_bytes: int
    subroutines: int
    call_sites: int

    @property
    def compression_ratio(self) -> float:
        return self.compressed_bytes / self.original_bytes


def _touches_lr(word: int) -> bool:
    ins = decode(word)
    if ins.mnemonic in ("bl", "bcl", "bclr", "bcctrl"):
        return True
    if ins.mnemonic in ("mfspr", "mtspr") and ins.operand("SPR") == LR:
        return True
    return False


def minisub_compress(
    program: Program, max_entry_len: int = 8
) -> MiniSubResult:
    """Greedy mini-subroutine abstraction over ``program``."""
    candidates = enumerate_candidates(program, max_entry_len=max_entry_len)
    covered = [False] * len(program.text)

    viable = {
        key: candidate
        for key, candidate in candidates.items()
        if candidate.length >= 2 and not any(_touches_lr(w) for w in key)
    }

    def savings_bytes(length: int, uses: int) -> int:
        return uses * (length - 1) * 4 - (length + 1) * 4

    import heapq

    heap = []
    for key, candidate in viable.items():
        priority = savings_bytes(candidate.length, len(candidate.positions))
        if priority > 0:
            heap.append((-priority, key))
    heapq.heapify(heap)

    subroutines = 0
    call_sites = 0
    extra_subroutine_bytes = 0
    while heap:
        neg_priority, key = heapq.heappop(heap)
        candidate = viable[key]
        occurrences = _valid_occurrences(candidate, covered)
        current = savings_bytes(candidate.length, len(occurrences))
        if current != -neg_priority:
            if current > 0:
                heapq.heappush(heap, (-current, key))
            continue
        if current <= 0:
            break
        subroutines += 1
        call_sites += len(occurrences)
        extra_subroutine_bytes += 4 * (candidate.length + 1)
        for position in occurrences:
            for index in range(position, position + candidate.length):
                covered[index] = True

    uncovered = sum(1 for flag in covered if not flag)
    compressed = 4 * uncovered + 4 * call_sites + extra_subroutine_bytes
    return MiniSubResult(
        name=program.name,
        original_bytes=program.text_size,
        compressed_bytes=compressed,
        subroutines=subroutines,
        call_sites=call_sites,
    )
