"""Thumb/MIPS16-style dense re-encoding model (paper section 2.2).

Thumb and MIPS16 shrink code by re-encoding a *subset* of the base ISA
into 16-bit instructions with 3-bit register fields and reduced
immediates, plus explicit mode-switch branches between 16- and 32-bit
regions.  The paper compares its dictionary method against their ~30%
and ~40% typical reductions.

This module models such a re-encoding for our PowerPC subset:

* the eight "low" registers are chosen per program by static usage —
  mirroring how the MIPS16 designers picked their register subset from
  compiler statistics;
* an instruction is 16-bit encodable if its mnemonic has a dense format
  and its operands fit (low registers, shortened immediates/offsets);
* the program is partitioned into 16-bit and 32-bit regions by dynamic
  programming, paying ``MODE_SWITCH_BYTES`` at every transition (the
  ``bx``-style mode-change branches both ISAs require).

It is a size model, not an executable re-encoding — exactly the level
at which the paper's section 2.2 comparison operates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro import bitutils
from repro.isa.fields import OperandKind
from repro.isa.instruction import Instruction
from repro.linker.program import Program

MODE_SWITCH_BYTES = 4  # one mode-change branch per region transition

# Mnemonics with plausible 16-bit dense formats, with the immediate
# width available after the opcode and register fields are paid for
# (modelled on actual Thumb-1 / MIPS16 formats).
_DENSE_IMM_WIDTH = {
    "addi": 8,      # Thumb add/sub imm8 (also covers li)
    "cmpwi": 8,     # Thumb cmp imm8
    "mulli": 5,
    "andi.": 5,
    "ori": 5,
    "xori": 5,
}
_DENSE_MEM_OFFSET_WIDTH = 5  # scaled imm5, like Thumb ldr/str
_DENSE_RR = frozenset(
    {"add", "subf", "and", "or", "xor", "neg", "nor", "slw", "srw",
     "sraw", "mullw", "cmpw", "cmplw", "extsb", "extsh"}
)
_DENSE_SHIFT_IMM = frozenset({"srawi"})  # imm5 shift, like Thumb lsr/asr
_DENSE_MEM = frozenset({"lwz", "stw", "lbz", "stb", "lhz", "sth"})
_DENSE_BRANCH_WIDTH = {"b": 11, "bl": 11, "bc": 8, "bcl": 8}
_DENSE_OTHER = frozenset({"bclr", "bcctr", "bcctrl", "sc", "rlwinm"})


def select_low_registers(program: Program, count: int = 8) -> frozenset[int]:
    """The ``count`` statically most-used GPRs (the dense register set)."""
    usage: Counter[int] = Counter()
    for ti in program.text:
        for operand, value in zip(ti.instruction.spec.operands, ti.instruction.values):
            if operand.kind is OperandKind.GPR:
                usage[value] += 1
            elif operand.kind is OperandKind.DISP_GPR:
                usage[value[1]] += 1
    return frozenset(register for register, _ in usage.most_common(count))


def _registers_ok(ins: Instruction, low: frozenset[int]) -> bool:
    for operand, value in zip(ins.spec.operands, ins.values):
        if operand.kind is OperandKind.GPR and value not in low:
            return False
        if operand.kind is OperandKind.DISP_GPR and value[1] not in low:
            return False
    return True


def is_dense_encodable(ins: Instruction, low: frozenset[int]) -> bool:
    """Can this instruction use a 16-bit dense format?"""
    name = ins.mnemonic
    if name in _DENSE_RR or name in _DENSE_OTHER:
        if name == "rlwinm":
            # Only the slwi/srwi/clrlwi idioms have Thumb analogues.
            sh, mb, me = (ins.operand("SH"), ins.operand("MB"), ins.operand("ME"))
            shift_like = (
                (mb == 0 and me == 31 - sh)
                or (sh and mb == 32 - sh and me == 31)
                or (sh == 0 and me == 31)
            )
            if not shift_like:
                return False
        return _registers_ok(ins, low)
    if name in _DENSE_IMM_WIDTH:
        width = _DENSE_IMM_WIDTH[name]
        immediate = ins.values[-1]
        if name == "cmpwi" and ins.operand("crfD") != 0:
            return False
        if isinstance(immediate, tuple):  # pragma: no cover - imm forms only
            return False
        fits = (
            bitutils.fits_unsigned(immediate, width)
            if name != "addi"
            else bitutils.fits_signed(immediate, width)
        )
        return fits and _registers_ok(ins, low)
    if name in _DENSE_SHIFT_IMM:
        return ins.operand("SH") < 32 and _registers_ok(ins, low)
    if name in _DENSE_MEM:
        disp, base = ins.operand("D(rA)")
        scale = 4 if name in ("lwz", "stw") else (2 if name in ("lhz", "sth") else 1)
        scaled_ok = disp % scale == 0 and bitutils.fits_unsigned(
            disp // scale, _DENSE_MEM_OFFSET_WIDTH
        )
        return scaled_ok and _registers_ok(ins, low)
    if name in _DENSE_BRANCH_WIDTH:
        # The 16-bit branch keeps a halfword-scaled offset.
        target_slot = ins.operand("target")
        return bitutils.fits_signed(target_slot * 2, _DENSE_BRANCH_WIDTH[name])
    if name in ("mfspr", "mtspr"):
        return False  # Thumb needs 32-bit mode for system registers
    return False


@dataclass(frozen=True)
class Thumb16Result:
    """Outcome of the dense re-encoding model."""

    name: str
    original_bytes: int
    compressed_bytes: int
    dense_instructions: int
    total_instructions: int
    mode_switches: int

    @property
    def compression_ratio(self) -> float:
        return self.compressed_bytes / self.original_bytes

    @property
    def dense_fraction(self) -> float:
        if not self.total_instructions:
            return 0.0
        return self.dense_instructions / self.total_instructions


def thumb16_model(
    program: Program,
    low_register_count: int = 8,
    assume_recompiled: bool = False,
) -> Thumb16Result:
    """Minimum size under the dense/wide mode partition (DP).

    State: the mode after instruction ``i``.  A 16-bit-encodable
    instruction costs 2 bytes in dense mode or 4 in wide mode; others
    cost 4 and force wide mode; every mode change costs
    ``MODE_SWITCH_BYTES``.

    ``assume_recompiled=False`` models re-encoding the existing binary:
    register operands must land in the dense register set.  With
    ``assume_recompiled=True`` the register constraint is waived —
    modelling a compiler that targets the dense set directly, which is
    how Thumb/MIPS16 actually reach their 30–40% reductions (they are
    compiler targets, not binary rewriters).
    """
    if assume_recompiled:
        low = frozenset(range(32))
    else:
        low = select_low_registers(program, low_register_count)
    encodable = [is_dense_encodable(ti.instruction, low) for ti in program.text]

    INF = float("inf")
    # cost[mode]: best bytes so far ending in mode (0 = wide, 1 = dense)
    cost = [0.0, float(MODE_SWITCH_BYTES)]
    switches = [0, 1]
    for dense_ok in encodable:
        wide_stay = cost[0] + 4
        wide_from_dense = cost[1] + MODE_SWITCH_BYTES + 4
        new_wide = min(wide_stay, wide_from_dense)
        new_wide_switches = (
            switches[0] if wide_stay <= wide_from_dense else switches[1] + 1
        )
        if dense_ok:
            dense_stay = cost[1] + 2
            dense_from_wide = cost[0] + MODE_SWITCH_BYTES + 2
            new_dense = min(dense_stay, dense_from_wide)
            new_dense_switches = (
                switches[1] if dense_stay <= dense_from_wide else switches[0] + 1
            )
        else:
            new_dense = INF
            new_dense_switches = 0
        cost = [new_wide, new_dense]
        switches = [new_wide_switches, new_dense_switches]

    best_mode = 0 if cost[0] <= cost[1] else 1
    return Thumb16Result(
        name=program.name,
        original_bytes=program.text_size,
        compressed_bytes=int(cost[best_mode]),
        dense_instructions=sum(encodable),
        total_instructions=len(program.text),
        mode_switches=switches[best_mode],
    )
