"""Bit-level helpers shared by the ISA, compressor, and simulator.

PowerPC documentation numbers bits big-endian: bit 0 is the most
significant bit of the 32-bit word.  All helpers here follow that
convention so field definitions can be copied straight from the
architecture manual.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

WORD_BITS = 32
WORD_MASK = 0xFFFF_FFFF


def mask(width: int) -> int:
    """Return a mask of ``width`` one-bits."""
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def extract(word: int, start: int, width: int) -> int:
    """Extract ``width`` bits from ``word`` starting at big-endian bit ``start``.

    ``extract(w, 0, 6)`` returns the primary opcode of a PowerPC word.
    """
    if start < 0 or width <= 0 or start + width > WORD_BITS:
        raise ValueError(f"bad field [{start}:{start + width}) in 32-bit word")
    shift = WORD_BITS - start - width
    return (word >> shift) & mask(width)


def deposit(word: int, start: int, width: int, value: int) -> int:
    """Return ``word`` with ``value`` placed in the big-endian field."""
    if start < 0 or width <= 0 or start + width > WORD_BITS:
        raise ValueError(f"bad field [{start}:{start + width}) in 32-bit word")
    if value < 0 or value > mask(width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    shift = WORD_BITS - start - width
    return (word & ~(mask(width) << shift) & WORD_MASK) | (value << shift)


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    value &= mask(width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def to_twos_complement(value: int, width: int) -> int:
    """Encode a signed ``value`` into ``width`` bits, validating range."""
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    if not lo <= value <= hi:
        raise ValueError(f"{value} out of range for signed {width}-bit field")
    return value & mask(width)


def fits_signed(value: int, width: int) -> bool:
    """True if ``value`` is representable as a signed ``width``-bit integer."""
    return -(1 << (width - 1)) <= value <= (1 << (width - 1)) - 1


def fits_unsigned(value: int, width: int) -> bool:
    """True if ``value`` is representable as an unsigned ``width``-bit integer."""
    return 0 <= value <= mask(width)


def u32(value: int) -> int:
    """Wrap ``value`` to an unsigned 32-bit integer."""
    return value & WORD_MASK


def s32(value: int) -> int:
    """Wrap ``value`` to a signed 32-bit integer."""
    return sign_extend(value & WORD_MASK, 32)


def cdiv(a: int, b: int) -> int:
    """C-style (truncating toward zero) signed division, like ``divw``."""
    if b == 0:
        raise ZeroDivisionError("division by zero")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def cmod(a: int, b: int) -> int:
    """C-style remainder: ``a - cdiv(a, b) * b``."""
    return a - cdiv(a, b) * b


def rotl32(value: int, amount: int) -> int:
    """Rotate a 32-bit value left by ``amount`` bits."""
    amount &= 31
    value &= WORD_MASK
    return ((value << amount) | (value >> (32 - amount))) & WORD_MASK


def words_to_bytes(words: Iterable[int]) -> bytes:
    """Serialize 32-bit words big-endian (PowerPC memory order)."""
    out = bytearray()
    for word in words:
        out += u32(word).to_bytes(4, "big")
    return bytes(out)


def bytes_to_words(data: bytes) -> list[int]:
    """Deserialize big-endian bytes into 32-bit words."""
    if len(data) % 4:
        raise ValueError(f"byte length {len(data)} is not a multiple of 4")
    return [int.from_bytes(data[i : i + 4], "big") for i in range(0, len(data), 4)]


class BitWriter:
    """Accumulates values most-significant-bit first into a byte stream.

    Used by the nibble-aligned encoder: nibbles and larger codewords are
    appended in order, and the final stream is padded to a whole byte.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._acc: int = 0  # partial byte accumulator (< 8 bits)
        self._acc_bits: int = 0
        self._nbits: int = 0

    def write(self, value: int, width: int) -> None:
        """Append the low ``width`` bits of ``value``."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0 or value > mask(width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._nbits += width
        acc = (self._acc << width) | value
        acc_bits = self._acc_bits + width
        while acc_bits >= 8:
            acc_bits -= 8
            self._buffer.append((acc >> acc_bits) & 0xFF)
        self._acc = acc & mask(acc_bits)
        self._acc_bits = acc_bits

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._nbits

    def getvalue(self) -> bytes:
        """Return the stream padded with zero bits to a byte boundary."""
        out = bytes(self._buffer)
        if self._acc_bits:
            out += bytes([(self._acc << (8 - self._acc_bits)) & 0xFF])
        return out


class BitReader:
    """Reads values most-significant-bit first from a byte stream."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    @property
    def bit_position(self) -> int:
        """Current read position in bits from the start of the stream."""
        return self._pos

    @property
    def bits_remaining(self) -> int:
        """Number of unread bits left in the stream."""
        return len(self._data) * 8 - self._pos

    def seek_bit(self, bit_position: int) -> None:
        """Jump to an absolute bit position (used for branch targets)."""
        if bit_position < 0 or bit_position > len(self._data) * 8:
            raise ValueError(f"bit position {bit_position} out of range")
        self._pos = bit_position

    def read(self, width: int) -> int:
        """Read ``width`` bits; raises ``EOFError`` past end of stream."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if self._pos + width > len(self._data) * 8:
            raise EOFError("bit stream exhausted")
        value = 0
        pos = self._pos
        remaining = width
        while remaining:
            byte = self._data[pos // 8]
            offset = pos % 8
            take = min(8 - offset, remaining)
            chunk = (byte >> (8 - offset - take)) & mask(take)
            value = (value << take) | chunk
            pos += take
            remaining -= take
        self._pos = pos
        return value

    def peek(self, width: int) -> int:
        """Read ``width`` bits without advancing."""
        saved = self._pos
        try:
            return self.read(width)
        finally:
            self._pos = saved


def iter_nibbles(data: bytes) -> Iterator[int]:
    """Yield the 4-bit nibbles of ``data``, high nibble first."""
    for byte in data:
        yield byte >> 4
        yield byte & 0xF
