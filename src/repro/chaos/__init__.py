"""Deterministic fault injection across the service stack.

The attack side of the robustness story (docs/robustness.md):

* :mod:`repro.chaos.schedule` — seeded, replayable fault decisions
  over three planes (disk, worker, connection);
* :mod:`repro.chaos.filesystem` — the :class:`FaultyFilesystem` shim
  threaded under the artifact cache, shard migration, and job ledger,
  plus crash-point mode for kill-after-every-write property tests;
* :mod:`repro.chaos.process` — worker kills/hangs for both the
  server's executor threads and the pool's worker processes;
* :mod:`repro.chaos.campaign` — the end-to-end campaign: host a real
  server under a schedule, drive it with the resilient
  :class:`repro.client.ReproClient`, classify every job into the
  shared outcome taxonomy, and gate on zero lost-acknowledged jobs
  and zero silent divergences (``repro-chaos run``).

This ``__init__`` keeps the filesystem/campaign imports lazy so that
:mod:`repro.service.pool` can import the (dependency-free) process
plane without creating an import cycle through the service package.
"""

from repro.chaos.process import (
    WorkerCrash,
    apply_worker_fault,
    install_schedule,
    installed_schedule,
    pool_kill_point,
    uninstall_schedule,
)
from repro.chaos.schedule import (
    FAULTS,
    PLANES,
    ChaosRule,
    ChaosSchedule,
    Injection,
    parse_rule,
)

_LAZY = {
    "FaultyFilesystem": ("repro.chaos.filesystem", "FaultyFilesystem"),
    "SimulatedCrash": ("repro.chaos.filesystem", "SimulatedCrash"),
    "ChaosCampaignConfig": ("repro.chaos.campaign", "ChaosCampaignConfig"),
    "ChaosReport": ("repro.chaos.campaign", "ChaosReport"),
    "run_chaos_campaign": ("repro.chaos.campaign", "run_chaos_campaign"),
    "DEFAULT_RULES": ("repro.chaos.campaign", "DEFAULT_RULES"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "FAULTS",
    "PLANES",
    "ChaosRule",
    "ChaosSchedule",
    "Injection",
    "WorkerCrash",
    "apply_worker_fault",
    "install_schedule",
    "installed_schedule",
    "parse_rule",
    "pool_kill_point",
    "uninstall_schedule",
    *_LAZY,
]
