"""End-to-end chaos campaigns: a real server, real faults, a hard gate.

:func:`run_chaos_campaign` hosts a :class:`CompressionServer` with a
:class:`~repro.chaos.filesystem.FaultyFilesystem` under its cache and
ledger and a :class:`~repro.chaos.schedule.ChaosSchedule` driving the
worker and connection planes, then pushes ``jobs`` submissions through
the resilient :class:`repro.client.ReproClient` and classifies every
one into the shared taxonomy
(:data:`repro.verify.outcomes.JOB_OUTCOMES`):

* ``completed`` — first try, artifact byte-identical to the reference;
* ``retried-then-completed`` — client or server retried, same bytes;
* ``rejected-retryable`` — the job ended with an honest, retryable
  error (terminal ``failed``/``cancelled`` or exhausted submission);
* ``lost`` — the server acknowledged the job and then never produced
  an observable terminal state (or said "completed" and could not
  deliver the artifact);
* ``silently-diverged`` — the server served *wrong bytes* as success.

The **gate** is zero ``lost`` and zero ``silently-diverged``: faults
may cost latency and retries, never acknowledged work or correctness.

Determinism: references are computed *before* any chaos is active, the
schedule's decisions are pure hashes of stable identities, jobs run
serially from one seeded client, and the report carries a fingerprint
over the outcome sequence — ``--runs 2`` re-runs the campaign and
asserts fingerprint equality, which CI does on every push.
"""

from __future__ import annotations

import hashlib
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from random import Random

from repro.chaos.filesystem import FaultyFilesystem
from repro.chaos.process import install_schedule, uninstall_schedule
from repro.chaos.schedule import ChaosRule, ChaosSchedule
from repro.client import CircuitBreaker, ReproClient, RetryPolicy
from repro.errors import ServiceError
from repro.perf.loadgen import HostedServer
from repro.server.app import ServerConfig, parse_spec
from repro.server.quotas import QuotaSpec
from repro.service.pool import execute_job
from repro.verify.outcomes import (
    JOB_COMPLETED,
    JOB_DIVERGED,
    JOB_LOST,
    JOB_OUTCOMES,
    JOB_REJECTED,
    JOB_RETRIED,
    gate_jobs,
    tally,
)

#: The default three-plane fault mix: frequent enough to bite on every
#: campaign, rare enough that most jobs still complete.
DEFAULT_RULES = (
    ChaosRule("disk", "torn_write", 0.05),
    ChaosRule("disk", "enospc", 0.03),
    ChaosRule("disk", "eio_read", 0.03),
    ChaosRule("worker", "kill", 0.05),
    ChaosRule("worker", "hang", 0.02),
    ChaosRule("connection", "reset", 0.05),
)


@dataclass
class ChaosCampaignConfig:
    """One campaign; ``repro-chaos run`` flags map 1:1."""

    seed: int = 1997
    jobs: int = 200
    benchmarks: list[str] = field(default_factory=lambda: ["compress", "li"])
    encodings: list[str] = field(default_factory=lambda: ["nibble"])
    scale: float = 0.25
    verify: str = "stream"
    rules: tuple[ChaosRule, ...] = DEFAULT_RULES
    tenants: list[str] = field(default_factory=lambda: ["alpha", "beta"])
    #: Serial (one in-flight job) keeps the fault decision sequence
    #: identical across runs; the server still runs its full stack.
    job_timeout: float = 10.0
    job_attempts: int = 3
    hang_seconds: float = 12.0  # > job_timeout, so hangs trip the timeout
    shards: int = 4
    #: Distinct scale variants per benchmark.  Identical specs dedupe
    #: to one job on the server (by design — that *is* the idempotency
    #: mechanism), so variants keep the worker and disk planes
    #: exercised across the whole campaign instead of only its start.
    variants: int = 25

    def spec_for(self, index: int) -> dict:
        benchmark = self.benchmarks[index % len(self.benchmarks)]
        encoding = self.encodings[index % len(self.encodings)]
        scale = round(
            self.scale + (index % max(1, self.variants)) * 0.01, 4
        )
        return {
            "benchmark": benchmark,
            "encoding": encoding,
            "scale": scale,
            "verify": self.verify,
        }


@dataclass
class ChaosReport:
    """What one campaign run produced."""

    seed: int
    jobs: int
    counts: dict = field(default_factory=dict)
    injected: dict = field(default_factory=dict)
    planes: tuple = ()
    fingerprint: str = ""
    gate_violations: list = field(default_factory=list)
    client: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.gate_violations

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "jobs": self.jobs,
            "outcomes": dict(self.counts),
            "injected_faults": dict(self.injected),
            "fault_planes": list(self.planes),
            "fingerprint": self.fingerprint,
            "gate": {"ok": self.ok, "violations": list(self.gate_violations)},
            "client": dict(self.client),
            "failures": list(self.failures[:20]),
        }


def _references(config: ChaosCampaignConfig) -> dict[str, bytes]:
    """Ground-truth artifact bytes per spec, computed with NO chaos
    active — the yardstick silent divergence is measured against."""
    references: dict[str, bytes] = {}
    for index in range(config.jobs):
        job = parse_spec(
            config.spec_for(index), default_verify=config.verify
        )
        key = job.content_key()
        if key in references:
            continue
        blob, _meta, _snapshot = execute_job(job)
        references[key] = blob
    return references


def _classify(result, references: dict[str, bytes], server_attempts: int) -> str:
    if result.outcome == "lost":
        return JOB_LOST
    if result.outcome in ("failed", "cancelled", "rejected"):
        return JOB_REJECTED
    if result.outcome != "completed":
        return JOB_LOST  # unknown outcome = unaccounted-for job
    reference = references.get(result.key)
    if reference is None or result.data != reference:
        return JOB_DIVERGED
    # Deduplicated submissions share the original job's event log, so
    # its attempt count says nothing about *this* submission's journey.
    if result.retries > 0 or (not result.deduplicated and server_attempts > 1):
        return JOB_RETRIED
    return JOB_COMPLETED


def run_chaos_campaign(config: ChaosCampaignConfig) -> ChaosReport:
    """Run one seeded campaign; see the module docstring for the rules."""
    if config.jobs < 1:
        raise ServiceError("campaign needs at least one job")
    references = _references(config)

    schedule = ChaosSchedule(
        config.seed, config.rules, hang_seconds=config.hang_seconds
    )
    fs = FaultyFilesystem(schedule)
    outcomes: list[str] = []
    failures: list[dict] = []
    client_totals = {"retries": 0, "throttles": 0, "deduplicated": 0}

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        server_config = ServerConfig(
            host="127.0.0.1",
            port=0,
            cache_dir=Path(scratch) / "cache",
            shards=config.shards,
            concurrency=1,
            max_queue_depth=max(64, config.jobs),
            quota=QuotaSpec(10_000.0, 20_000),
            default_verify=config.verify,
            fs=fs,
            chaos=schedule,
            job_attempts=config.job_attempts,
            job_timeout=config.job_timeout,
        )
        install_schedule(schedule)
        try:
            with HostedServer(server_config) as hosted:
                rng = Random(config.seed)
                for index in range(config.jobs):
                    spec = config.spec_for(index)
                    tenant = config.tenants[index % len(config.tenants)]
                    client = ReproClient(
                        hosted.address,
                        tenant,
                        policy=RetryPolicy(max_attempts=6, base_delay=0.02,
                                           max_delay=0.25),
                        breaker=CircuitBreaker(failure_threshold=8,
                                               reset_timeout=0.5),
                        rng=rng,
                        timeout=max(30.0, config.hang_seconds * 3),
                    )
                    result = client.run_job(dict(spec))
                    server_attempts = _server_attempts(result)
                    outcome = _classify(result, references, server_attempts)
                    outcomes.append(outcome)
                    client_totals["retries"] += result.retries
                    client_totals["throttles"] += result.throttles
                    client_totals["deduplicated"] += int(result.deduplicated)
                    if outcome in (JOB_LOST, JOB_DIVERGED) or result.error:
                        failures.append({
                            "index": index,
                            "outcome": outcome,
                            "raw_outcome": result.outcome,
                            "job_id": result.job_id,
                            "key": result.key,
                            "error": result.error,
                        })
        finally:
            uninstall_schedule()

    counts = tally(outcomes, JOB_OUTCOMES)
    fingerprint = hashlib.sha256(
        "|".join(f"{i}:{o}" for i, o in enumerate(outcomes)).encode()
    ).hexdigest()
    return ChaosReport(
        seed=config.seed,
        jobs=config.jobs,
        counts=counts,
        injected=schedule.injected_counts(),
        planes=schedule.active_planes(),
        fingerprint=fingerprint,
        gate_violations=gate_jobs(counts),
        client=client_totals,
        failures=failures,
    )


def _server_attempts(result) -> int:
    """How many execution attempts the server's event log shows."""
    return sum(
        1 for event in result.events if event.get("kind") == "started"
    ) or 1
