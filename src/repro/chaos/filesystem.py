"""Disk-plane fault injection: the :class:`FaultyFilesystem` shim.

Drops in wherever the service accepts a
:class:`repro.service.fsio.Filesystem` (artifact cache, shard
migration, job ledger) and misbehaves in two independently useful
ways:

* **schedule mode** — a :class:`~repro.chaos.schedule.ChaosSchedule`
  decides, per operation, whether to inject a ``disk`` fault:

  - ``torn_write`` — an atomic write *succeeds* but lands only a
    prefix of the payload (a power cut the firmware lied about);
    appends land a torn half-line.  Downstream CRC / torn-tail
    recovery must catch it.
  - ``enospc`` / ``eio_write`` — the write raises ``OSError``
    (``ENOSPC``/``EIO``).
  - ``eio_read`` — a read raises transient ``EIO``.
  - ``fsync_loss`` — an append reports success but the bytes never
    reach the file (lost page-cache write).

* **crash-point mode** (``crash_after=n``) — the first *n* write
  points succeed, then the process "dies": :class:`SimulatedCrash`
  (a ``BaseException``, so ``except Exception``/``except OSError``
  recovery code cannot swallow it — exactly like ``kill -9``).  A
  write that crashes mid-flight leaves a torn artifact on disk, the
  way a real kill would.  The crash-point property tests iterate
  ``crash_after`` over **every** write point of a scenario and verify
  recovery by replay after each one.

Both modes log what they did (:attr:`FaultyFilesystem.faults`) so
campaigns and tests can assert injection actually happened.
"""

from __future__ import annotations

import errno
import os
import tempfile
from pathlib import Path

from repro.chaos.schedule import ChaosSchedule
from repro.observe import blackbox
from repro.service.fsio import AppendHandle, Filesystem


class SimulatedCrash(BaseException):
    """The process died (``kill -9``) at a write point.

    Deliberately a ``BaseException``: crash-recovery code under test
    must not be able to catch it with ``except Exception`` and
    "handle" a death it could never have observed.
    """


class FaultyFilesystem(Filesystem):
    """A :class:`Filesystem` that injects scheduled disk faults."""

    def __init__(
        self,
        schedule: ChaosSchedule | None = None,
        *,
        crash_after: int | None = None,
    ) -> None:
        self.schedule = schedule
        self.crash_after = crash_after
        self.write_ops = 0
        self.faults: list[tuple[str, str, str]] = []  # (fault, site, op)

    # -- decision plumbing ---------------------------------------------
    def _site(self, path: str | Path) -> str:
        return Path(path).name

    def _decide(self, path: str | Path, op: str) -> str | None:
        if self.schedule is None:
            return None
        site = self._site(path)
        fault = self.schedule.decide("disk", site, op)
        if fault is not None:
            self.faults.append((fault, site, op))
        return fault

    def _write_point(self, path: str | Path, op: str) -> None:
        """One write syscall about to happen; maybe die instead."""
        self.write_ops += 1
        if self.crash_after is not None and self.write_ops > self.crash_after:
            reason = (
                f"simulated kill -9 at write point #{self.write_ops} "
                f"({op} {self._site(path)})"
            )
            # A real kill -9 gives no hooks, so the flight recorder
            # dumps *before* the guillotine falls (no-op when unarmed)
            # — the chaos campaign's postmortem evidence.
            blackbox.crash_dump("simulated_crash", reason)
            raise SimulatedCrash(reason)

    @staticmethod
    def _oserror(code: int, fault: str, path: str | Path) -> OSError:
        return OSError(code, f"chaos: injected {fault}", str(path))

    def _torn(self, payload: bytes) -> bytes:
        fraction = self.schedule.torn_fraction if self.schedule else 0.5
        return payload[: max(1, int(len(payload) * fraction))]

    # -- reads ---------------------------------------------------------
    def read_bytes(self, path: str | Path) -> bytes:
        if self._decide(path, "read") == "eio_read":
            raise self._oserror(errno.EIO, "eio_read", path)
        return super().read_bytes(path)

    # -- writes --------------------------------------------------------
    def write_atomic(self, path: str | Path, data: bytes | str) -> None:
        """The real three write points, each separately crashable."""
        path = Path(path)
        payload = data.encode() if isinstance(data, str) else data
        fault = self._decide(path, "write")
        if fault == "enospc":
            raise self._oserror(errno.ENOSPC, "enospc", path)
        if fault == "eio_write":
            raise self._oserror(errno.EIO, "eio_write", path)
        if fault == "torn_write":
            payload = self._torn(payload)
        self._write_point(path, "create-temp")
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=path.suffix
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                self._write_point(path, "write-temp")
                handle.write(payload)
            self._write_point(path, "replace")
            os.replace(tmp_name, path)
        except OSError:
            Path(tmp_name).unlink(missing_ok=True)
            raise

    def open_append(self, path: str | Path) -> "FaultyAppendHandle":
        return FaultyAppendHandle(Path(path), self)

    def append_bytes(self, path: str | Path, data: bytes) -> None:
        self._write_point(path, "append-bytes")
        super().append_bytes(path, data)

    def replace(self, src: str | Path, dst: str | Path) -> None:
        self._write_point(dst, "replace")
        super().replace(src, dst)

    def unlink(self, path: str | Path, missing_ok: bool = False) -> None:
        self._write_point(path, "unlink")
        super().unlink(path, missing_ok=missing_ok)

    def truncate(self, path: str | Path, size: int) -> None:
        self._write_point(path, "truncate")
        super().truncate(path, size)

    def mkdir(self, path: str | Path) -> None:
        self._write_point(path, "mkdir")
        super().mkdir(path)

    def rmdir(self, path: str | Path) -> None:
        self._write_point(path, "rmdir")
        super().rmdir(path)


class FaultyAppendHandle(AppendHandle):
    """Append handle whose individual line writes can fail, tear, or lie."""

    def __init__(self, path: Path, fs: FaultyFilesystem) -> None:
        super().__init__(path)
        self._path = path
        self._fs = fs

    def write(self, text: str) -> None:
        fault = self._fs._decide(self._path, "append")
        if fault == "enospc":
            raise self._fs._oserror(errno.ENOSPC, "enospc", self._path)
        if fault == "eio_write":
            raise self._fs._oserror(errno.EIO, "eio_write", self._path)
        if fault == "fsync_loss":
            return  # reports success; the bytes never land
        if fault == "torn_write":
            text = text[: max(1, len(text) // 2)]  # torn half-line, no newline
            super().write(text)
            self.flush()
            return
        # Crash mode: land a torn half-line, then die — the on-disk
        # state a real kill -9 mid-append leaves behind.
        try:
            self._fs._write_point(self._path, "append")
        except SimulatedCrash:
            super().write(text[: max(1, len(text) // 2)])
            self.flush()
            raise
        super().write(text)
