"""Process-plane faults: killing, hanging, and slowing workers.

Two execution substrates run compression jobs, and both get faults:

* the **server's executor threads**
  (:meth:`repro.server.app.CompressionServer._run_job`) call
  :func:`apply_worker_fault` at the top of every attempt.  ``kill``
  raises :class:`WorkerCrash` (a
  :class:`~repro.errors.TransientError`, so the server's job loop
  retries it); ``hang`` sleeps past the server's job timeout *then*
  raises, so the attempt both stalls a slot and dies without side
  effects; ``slow_start`` just adds latency.

* the **worker processes** of :mod:`repro.service.pool` call
  :func:`pool_kill_point` at chosen points; with a schedule installed
  (:func:`install_schedule`, inherited across ``fork``) a ``kill``
  decision is a real ``SIGKILL`` to the worker's own pid — the pool's
  crash-retry path must recover it.

The installed schedule is process-global on purpose: worker processes
are forked from the parent, so installing before the pool spawns is
all the plumbing a campaign needs.
"""

from __future__ import annotations

import os
import signal
import time

from repro.errors import TransientError


class WorkerCrash(TransientError):
    """A worker died mid-job (simulated).  Retryable by definition."""


_schedule = None


def install_schedule(schedule) -> None:
    """Make ``schedule`` visible to pool kill points (fork-inherited)."""
    global _schedule
    _schedule = schedule


def uninstall_schedule() -> None:
    global _schedule
    _schedule = None


def installed_schedule():
    return _schedule


def pool_kill_point(point: str, site: str) -> None:
    """A worker-process location where the installed schedule may kill.

    ``site`` should be the job's content key so decisions are
    deterministic per job, not per pid.
    """
    schedule = _schedule
    if schedule is None:
        return
    if schedule.decide("worker", site, point) == "kill":
        os.kill(os.getpid(), signal.SIGKILL)


def apply_worker_fault(schedule, site: str, *, sleep=time.sleep) -> None:
    """Thread-executor fault gate, called at the top of a job attempt.

    Raises :class:`WorkerCrash` for ``kill`` (immediately) and ``hang``
    (after sleeping ``schedule.hang_seconds`` — long enough to trip the
    server's job timeout first, which is the point).  ``slow_start``
    sleeps briefly and lets the attempt proceed.
    """
    fault = schedule.decide("worker", site, "execute")
    if fault == "kill":
        raise WorkerCrash(f"chaos: worker killed before completing {site[:12]}")
    if fault == "hang":
        sleep(schedule.hang_seconds)
        raise WorkerCrash(
            f"chaos: worker hung {schedule.hang_seconds:g}s on {site[:12]}"
        )
    if fault == "slow_start":
        sleep(schedule.slow_start_seconds)
