"""Deterministic, seed-replayable fault schedules.

A :class:`ChaosSchedule` answers one question — *does this operation
fail, and how?* — for every instrumented site in the stack.  Three
target planes exist:

========== ==========================================================
plane      instrumented sites
========== ==========================================================
``disk``   every filesystem operation the service state goes through
           (:class:`repro.chaos.filesystem.FaultyFilesystem` threaded
           under the artifact cache, shard migration, and job ledger)
``worker`` job-execution attempts (the server's executor slots and the
           :mod:`repro.service.pool` worker processes)
``connection``  HTTP responses and individual SSE frames on the
           server front end
========== ==========================================================

Determinism
-----------

The decision for an operation depends only on ``(seed, plane, site,
op, n)`` where ``n`` counts prior decisions for that exact ``(plane,
site, op)`` triple — **never** on wall-clock time or global operation
order.  Sites are stable identities (a cache file's content-key name,
a job's content key, an HTTP route), so two campaign runs with the
same seed and the same serial workload make byte-identical fault
decisions, which is what lets ``repro-chaos run --seed S`` reproduce a
failure exactly.  The uniform draw is a keyed BLAKE2b hash, not a
shared PRNG stream, so concurrent planes cannot perturb each other.

Every injected fault is recorded in :attr:`ChaosSchedule.injections`
and surfaced to :mod:`repro.observe`: a ``chaos.<plane>.<fault>``
metric fires, and the innermost open span gains/increments a
``chaos_faults`` attribute so traces show exactly which jobs were hit.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

from repro import observe
from repro.errors import ServiceError

PLANES = ("disk", "worker", "connection")

#: Fault kinds each plane understands.
FAULTS = {
    "disk": ("torn_write", "enospc", "eio_read", "eio_write", "fsync_loss"),
    "worker": ("kill", "hang", "slow_start"),
    "connection": ("reset", "stall"),
}


@dataclass(frozen=True)
class ChaosRule:
    """Inject ``fault`` on the ``plane`` with probability ``rate``.

    ``match`` restricts the rule to sites containing the substring
    (empty = every site on the plane).
    """

    plane: str
    fault: str
    rate: float
    match: str = ""

    def __post_init__(self) -> None:
        if self.plane not in PLANES:
            raise ServiceError(
                f"unknown chaos plane {self.plane!r}; choose from {PLANES}"
            )
        if self.fault not in FAULTS[self.plane]:
            raise ServiceError(
                f"unknown {self.plane} fault {self.fault!r}; choose from "
                f"{FAULTS[self.plane]}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ServiceError(f"chaos rate must be in [0, 1], got {self.rate}")

    def describe(self) -> str:
        suffix = f":{self.match}" if self.match else ""
        return f"{self.plane}:{self.fault}:{self.rate:g}{suffix}"


def parse_rule(text: str) -> ChaosRule:
    """Parse ``PLANE:FAULT:RATE[:MATCH]`` (the ``--fault`` CLI form)."""
    parts = text.split(":", 3)
    if len(parts) < 3:
        raise ServiceError(
            f"malformed chaos rule {text!r} (want PLANE:FAULT:RATE[:MATCH])"
        )
    plane, fault, rate_text = parts[0], parts[1], parts[2]
    try:
        rate = float(rate_text)
    except ValueError as exc:
        raise ServiceError(f"bad chaos rate in {text!r}") from exc
    return ChaosRule(
        plane=plane, fault=fault, rate=rate,
        match=parts[3] if len(parts) == 4 else "",
    )


@dataclass(frozen=True)
class Injection:
    """One fault the schedule decided to inject."""

    plane: str
    fault: str
    site: str
    op: str
    sequence: int  # the per-(plane, site, op) decision counter

    def describe(self) -> str:
        return f"{self.plane}:{self.fault} at {self.site}/{self.op}#{self.sequence}"


class ChaosSchedule:
    """Seeded fault decisions plus the knobs shaping each fault.

    Thread-safe: the per-site counters are the only mutable state and
    sit behind one lock; decisions themselves are pure hashes.
    """

    def __init__(
        self,
        seed: int,
        rules: list[ChaosRule] | tuple[ChaosRule, ...] = (),
        *,
        torn_fraction: float = 0.5,
        hang_seconds: float = 2.0,
        slow_start_seconds: float = 0.05,
        stall_seconds: float = 0.2,
    ) -> None:
        self.seed = seed
        self.rules = tuple(rules)
        self.torn_fraction = torn_fraction
        self.hang_seconds = hang_seconds
        self.slow_start_seconds = slow_start_seconds
        self.stall_seconds = stall_seconds
        self.injections: list[Injection] = []
        self._counters: dict[tuple[str, str, str], int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _uniform(self, plane: str, site: str, op: str, n: int, fault: str) -> float:
        token = f"{self.seed}|{plane}|{site}|{op}|{n}|{fault}".encode()
        digest = hashlib.blake2b(token, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0**64

    def decide(self, plane: str, site: str, op: str) -> str | None:
        """The fault to inject at this operation, or ``None``.

        ``site`` must be a *stable* identity (content key, file name,
        route) so replays with the same seed see the same decisions.
        """
        rules = [
            rule for rule in self.rules
            if rule.plane == plane and rule.match in site
        ]
        if not rules:
            return None
        with self._lock:
            counter_key = (plane, site, op)
            n = self._counters.get(counter_key, 0)
            self._counters[counter_key] = n + 1
        for rule in rules:
            if self._uniform(plane, site, op, n, rule.fault) < rule.rate:
                injection = Injection(plane, rule.fault, site, op, n)
                with self._lock:
                    self.injections.append(injection)
                self._observe(injection)
                return rule.fault
        return None

    @staticmethod
    def _observe(injection: Injection) -> None:
        """Report the injection to the tracing layer (no-op uninstalled)."""
        observe.metric(f"chaos.{injection.plane}.{injection.fault}", 1)
        span = observe.current_span()
        if span is not None:
            span.attrs["chaos_faults"] = span.attrs.get("chaos_faults", 0) + 1

    # ------------------------------------------------------------------
    def injected_counts(self) -> dict[str, int]:
        """``{"plane:fault": count}`` over everything injected so far."""
        counts: dict[str, int] = {}
        with self._lock:
            for injection in self.injections:
                label = f"{injection.plane}:{injection.fault}"
                counts[label] = counts.get(label, 0) + 1
        return counts

    def active_planes(self) -> tuple[str, ...]:
        return tuple(sorted({rule.plane for rule in self.rules if rule.rate > 0}))

    def describe(self) -> str:
        return (
            f"seed {self.seed}: "
            + (", ".join(rule.describe() for rule in self.rules) or "no rules")
        )
