"""Resilient client library for the compression server.

The defense half of :mod:`repro.chaos`: a client that survives every
fault the connection plane can inject — backoff with full jitter,
Retry-After honoring, idempotent resubmission, SSE resume, a status
poll fallback, and a circuit breaker.  See
:class:`~repro.client.client.ReproClient` for the failure-mode table.
"""

from repro.client.client import JobOutcome, ReproClient
from repro.client.retry import (
    CircuitBreaker,
    CircuitOpenError,
    ClientError,
    RetryPolicy,
)

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "ClientError",
    "JobOutcome",
    "ReproClient",
    "RetryPolicy",
]
