"""The resilient HTTP client for the compression server.

:class:`ReproClient` is the defense side of the chaos story: every
failure mode the fault planes can inject has a concrete answer here.

==========================  =========================================
server/network behaviour    client response
==========================  =========================================
connection refused/reset    exponential backoff + full jitter, then
                            resubmit **idempotently** (the
                            ``X-Repro-Idempotency-Key`` header keys
                            dedupe on (tenant, content key), so a
                            retried ack the client never saw does not
                            enqueue the job twice)
429 + ``Retry-After``       honor the header (capped), using a
                            separate throttle budget so being rate
                            limited is not treated as a fault
503 (draining)              backoff and retry like a transient
SSE stream reset midway     reconnect with ``?after=<cursor>`` /
                            ``Last-Event-ID`` and resume exactly
                            after the last frame seen
SSE attempts exhausted      fall back to polling the status document
failing repeatedly          circuit breaker opens; requests fail fast
                            instead of hammering a down server
==========================  =========================================

Everything is injectable — rng, sleep, clock — so campaigns drive the
client deterministically and tests never actually wait.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import random
import time
from dataclasses import dataclass, field

from repro import observe
from repro.client.retry import (
    CircuitBreaker,
    CircuitOpenError,
    ClientError,
    RetryPolicy,
)
from repro.errors import TransientError
from repro.server.routes import (
    IDEMPOTENCY_HEADER,
    TENANT_HEADER,
    TRACEPARENT_HEADER,
)
from repro.server.sse import TERMINAL_EVENTS

#: Connection-level exceptions treated as transient network faults.
_NETWORK_ERRORS = (
    ConnectionError,
    TimeoutError,
    http.client.BadStatusLine,
    http.client.IncompleteRead,
    http.client.CannotSendRequest,
    OSError,
)


@dataclass
class JobOutcome:
    """Everything one :meth:`ReproClient.run_job` call produced."""

    outcome: str  # completed | failed | cancelled | rejected | lost
    job_id: str | None = None
    key: str | None = None
    latency_seconds: float = 0.0
    retries: int = 0  # client-side retries across submit/SSE/artifact
    throttles: int = 0  # 429s honored via Retry-After
    deduplicated: bool = False
    data: bytes | None = None  # the artifact, when completed
    error: str | None = None
    events: list[dict] = field(default_factory=list)
    #: The distributed trace id this job ran under (from the server's
    #: 202 ack; None when the submission was refused outright).
    trace_id: str | None = None


class ReproClient:
    """Retrying, breaker-guarded client for one server address."""

    def __init__(
        self,
        address: tuple[str, int],
        tenant: str = "default",
        *,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        rng: random.Random | None = None,
        sleep=time.sleep,
        timeout: float = 60.0,
        max_throttle_retries: int = 8,
        sse_attempts: int = 4,
        poll_attempts: int = 10,
        poll_interval: float = 0.2,
    ) -> None:
        self.address = address
        self.tenant = tenant
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.rng = rng or random.Random()
        self.sleep = sleep
        self.timeout = timeout
        self.max_throttle_retries = max_throttle_retries
        self.sse_attempts = sse_attempts
        self.poll_attempts = poll_attempts
        self.poll_interval = poll_interval
        self.retries = 0
        self.throttles = 0

    # -- one wire request ----------------------------------------------
    def _request(
        self,
        method: str,
        target: str,
        *,
        body: dict | None = None,
        headers: dict | None = None,
        raw: bool = False,
    ):
        """Returns ``(status, headers, json_or_bytes)``; breaker-gated."""
        if not self.breaker.allow():
            raise CircuitOpenError(
                f"circuit open after {self.breaker.failures} failures"
            )
        conn = http.client.HTTPConnection(*self.address, timeout=self.timeout)
        send_headers = {TENANT_HEADER: self.tenant, **(headers or {})}
        payload = None
        if body is not None:
            payload = json.dumps(body)
            send_headers["Content-Type"] = "application/json"
        try:
            conn.request(method, target, payload, send_headers)
            response = conn.getresponse()
            data = response.read()
        except _NETWORK_ERRORS as exc:
            self.breaker.record_failure()
            raise TransientError(
                f"{method} {target}: {type(exc).__name__}: {exc}"
            ) from exc
        finally:
            conn.close()
        self.breaker.record_success()
        if raw:
            return response.status, dict(response.getheaders()), data
        document = None
        if data:
            try:
                document = json.loads(data)
            except json.JSONDecodeError:
                document = None
        return response.status, dict(response.getheaders()), document

    # -- submission ----------------------------------------------------
    @staticmethod
    def idempotency_key(spec: dict) -> str:
        """A stable token for the spec (the header only needs presence,
        but a content-derived value makes wire traces greppable)."""
        canonical = json.dumps(spec, sort_keys=True).encode()
        return hashlib.sha256(canonical).hexdigest()[:16]

    def submit(self, spec: dict) -> dict:
        """Submit until acknowledged; returns the 202 document.

        Raises :class:`ClientError` when every attempt (transient
        budget *and* throttle budget) is spent without an ack.

        Every attempt carries the same ``traceparent`` (the enclosing
        span's identity when one is open, else minted here), so server
        admissions of client retries all land in one trace.
        """
        traceparent = observe.current_traceparent()
        if traceparent is None:
            traceparent = observe.format_traceparent(
                observe.make_trace_id(), observe.make_span_id()
            )
        headers = {
            IDEMPOTENCY_HEADER: self.idempotency_key(spec),
            TRACEPARENT_HEADER: traceparent,
        }
        throttles = 0
        last_error = "no attempts made"
        attempt = 0
        while attempt < self.policy.max_attempts:
            try:
                status, resp_headers, document = self._request(
                    "POST", "/v1/jobs", body=spec, headers=headers
                )
            except (TransientError, CircuitOpenError) as exc:
                last_error = str(exc)
                attempt += 1
                self.retries += 1
                if attempt < self.policy.max_attempts:
                    self.sleep(self.policy.delay(attempt, self.rng))
                continue
            if status == 202:
                return document
            if status == 429:
                # Being rate limited is the server working as designed,
                # not a fault: separate budget, server-chosen delay.
                throttles += 1
                self.throttles += 1
                if throttles > self.max_throttle_retries:
                    raise ClientError(
                        f"still throttled after {throttles - 1} waits: "
                        f"{(document or {}).get('reason')}"
                    )
                self.sleep(self.policy.honor_retry_after(
                    resp_headers.get("Retry-After")
                ))
                continue
            if status == 503:
                last_error = "server draining (503)"
                attempt += 1
                self.retries += 1
                if attempt < self.policy.max_attempts:
                    self.sleep(self.policy.delay(attempt, self.rng))
                continue
            raise ClientError(
                f"submit refused: HTTP {status} {document!r}"
            )
        raise ClientError(f"submit exhausted retries: {last_error}")

    # -- waiting for the terminal event --------------------------------
    def wait(self, job_id: str) -> tuple[dict | None, list[dict]]:
        """Follow the job to a terminal event.

        Tries the SSE stream first (resuming with ``?after=`` across
        resets), then falls back to polling the status document.
        Returns ``(terminal_event_or_None, all_events_seen)`` — ``None``
        means the server acknowledged the job but never produced a
        terminal state the client could observe: a **lost** job.
        """
        events: list[dict] = []
        cursor = -1
        for _ in range(self.sse_attempts):
            try:
                terminal, cursor = self._stream(job_id, cursor, events)
            except (TransientError, CircuitOpenError):
                self.retries += 1
                self.sleep(self.policy.delay(0, self.rng))
                continue
            if terminal is not None:
                return terminal, events
        # SSE kept dying — poll the status document instead.
        for _ in range(self.poll_attempts):
            try:
                status, _, document = self._request(
                    "GET", f"/v1/jobs/{job_id}"
                )
            except (TransientError, CircuitOpenError):
                self.retries += 1
                self.sleep(self.policy.delay(0, self.rng))
                continue
            if status == 200 and document and document.get("status") in (
                "completed", "failed", "cancelled"
            ):
                kind = document["status"]
                synthetic = {"kind": kind, "data": {
                    "job_id": job_id,
                    "cache_hit": document.get("cache_hit", False),
                    "meta": document.get("meta", {}),
                    "error": document.get("error"),
                    "polled": True,
                }}
                events.append(synthetic)
                return synthetic, events
            self.sleep(self.poll_interval)
        return None, events

    def _stream(
        self, job_id: str, cursor: int, events: list[dict]
    ) -> tuple[dict | None, int]:
        """One SSE connection; returns (terminal_or_None, new_cursor)."""
        if not self.breaker.allow():
            raise CircuitOpenError("circuit open")
        target = f"/v1/jobs/{job_id}/events"
        headers = {TENANT_HEADER: self.tenant}
        if cursor >= 0:
            headers["Last-Event-ID"] = str(cursor)
        conn = http.client.HTTPConnection(*self.address, timeout=self.timeout)
        try:
            conn.request("GET", target, headers=headers)
            response = conn.getresponse()
            if response.status != 200:
                raise ClientError(
                    f"events stream for {job_id}: HTTP {response.status}"
                )
            kind = None
            event_id = None
            data_lines: list[str] = []
            while True:
                line = response.readline()
                if not line:
                    # Clean close without a terminal event: tell the
                    # caller to reconnect from the cursor.
                    self.breaker.record_success()
                    return None, cursor
                text = line.decode("utf-8").rstrip("\r\n")
                if not text:
                    if kind is not None:
                        data = json.loads("\n".join(data_lines) or "{}")
                        event = {"kind": kind, "data": data}
                        events.append(event)
                        if event_id is not None:
                            cursor = event_id
                        if kind in TERMINAL_EVENTS:
                            self.breaker.record_success()
                            return event, cursor
                    kind, event_id, data_lines = None, None, []
                    continue
                if text.startswith(":"):
                    continue  # keep-alive
                name, _, value = text.partition(":")
                value = value.removeprefix(" ")
                if name == "event":
                    kind = value
                elif name == "id":
                    try:
                        event_id = int(value)
                    except ValueError:
                        event_id = None
                elif name == "data":
                    data_lines.append(value)
        except _NETWORK_ERRORS as exc:
            self.breaker.record_failure()
            raise TransientError(
                f"SSE stream {job_id}: {type(exc).__name__}: {exc}"
            ) from exc
        finally:
            conn.close()

    # -- artifact download ---------------------------------------------
    def artifact(self, job_id: str) -> bytes:
        """Download the finished artifact, retrying transient failures."""
        last_error = "no attempts made"
        for attempt in range(self.policy.max_attempts):
            try:
                status, headers, data = self._request(
                    "GET", f"/v1/jobs/{job_id}/artifact", raw=True
                )
            except (TransientError, CircuitOpenError) as exc:
                last_error = str(exc)
                self.retries += 1
                self.sleep(self.policy.delay(attempt, self.rng))
                continue
            if status == 200:
                return data
            last_error = f"HTTP {status}"
            if status not in (404, 409, 500):
                break
            self.retries += 1
            self.sleep(self.policy.delay(attempt, self.rng))
        raise ClientError(f"artifact download failed: {last_error}")

    # -- the full journey ----------------------------------------------
    def run_job(self, spec: dict) -> JobOutcome:
        """Submit → wait → download, absorbing every retryable fault.

        With a recorder installed, the whole round trip is one
        ``client.job`` span; :meth:`submit` forwards its identity as
        the ``traceparent`` header, so the server-side job span becomes
        this span's child — one trace id across the wire.
        """
        with observe.span("client.job", tenant=self.tenant) as client_span:
            return self._run_job(spec, client_span)

    def _run_job(self, spec: dict, client_span) -> JobOutcome:
        start = time.perf_counter()
        retries_before = self.retries
        throttles_before = self.throttles
        try:
            ack = self.submit(spec)
        except (ClientError, TransientError) as exc:
            return JobOutcome(
                outcome="rejected",
                latency_seconds=time.perf_counter() - start,
                retries=self.retries - retries_before,
                throttles=self.throttles - throttles_before,
                error=str(exc),
            )
        job_id = ack["job_id"]
        key = ack.get("key")
        deduplicated = bool(ack.get("deduplicated"))
        trace_id = ack.get("trace_id")
        if client_span is not None and trace_id:
            client_span.attrs["job_id"] = job_id
        terminal, events = self.wait(job_id)
        latency = time.perf_counter() - start
        common = dict(
            job_id=job_id, key=key,
            retries=self.retries - retries_before,
            throttles=self.throttles - throttles_before,
            deduplicated=deduplicated, events=events,
            trace_id=trace_id,
        )
        if terminal is None:
            return JobOutcome(
                outcome="lost", latency_seconds=latency,
                error="acknowledged but no terminal state observed",
                **common,
            )
        if terminal["kind"] != "completed":
            return JobOutcome(
                outcome=terminal["kind"], latency_seconds=latency,
                error=terminal["data"].get("error")
                or terminal["data"].get("reason"),
                **common,
            )
        try:
            blob = self.artifact(job_id)
        except (ClientError, TransientError) as exc:
            # Completed but undeliverable counts as lost: the server
            # said success and cannot produce the artifact.
            return JobOutcome(
                outcome="lost",
                latency_seconds=time.perf_counter() - start,
                error=f"completed but artifact unavailable: {exc}",
                **{**common, "retries": self.retries - retries_before},
            )
        return JobOutcome(
            outcome="completed",
            latency_seconds=time.perf_counter() - start,
            data=blob,
            **{**common, "retries": self.retries - retries_before},
        )
