"""Retry policy and circuit breaker for the resilient client.

Two classic mechanisms, both with injectable clocks/randomness so the
tests (and the deterministic chaos campaigns) control every delay:

* :class:`RetryPolicy` — exponential backoff with **full jitter**
  (AWS-style): the sleep before attempt *k* is drawn uniformly from
  ``[0, min(max_delay, base * 2**k)]``.  Full jitter beats equal or
  no jitter under contention because retries from many clients spread
  over the whole window instead of synchronising into waves.
* :class:`CircuitBreaker` — closed → open after N consecutive
  failures; open requests fail fast (:class:`CircuitOpenError`)
  without touching the network; after ``reset_timeout`` one probe is
  allowed through (half-open) — success closes the circuit, failure
  re-opens it for another full timeout.
"""

from __future__ import annotations

import time

from repro.errors import ReproError


class ClientError(ReproError):
    """A client-side failure that retrying will not fix."""


class CircuitOpenError(ClientError):
    """The circuit breaker is open; the request was not attempted."""


class RetryPolicy:
    """Exponential backoff with full jitter, plus Retry-After capping."""

    def __init__(
        self,
        max_attempts: int = 6,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        retry_after_cap: float = 5.0,
    ) -> None:
        if max_attempts < 1:
            raise ClientError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.retry_after_cap = retry_after_cap

    def delay(self, attempt: int, rng) -> float:
        """Full-jitter sleep before retry ``attempt`` (0-based)."""
        ceiling = min(self.max_delay, self.base_delay * (2 ** attempt))
        return rng.uniform(0.0, ceiling)

    def honor_retry_after(self, header_value) -> float:
        """A server-provided Retry-After, capped so a confused (or
        hostile) server cannot park the client for minutes."""
        try:
            seconds = float(header_value)
        except (TypeError, ValueError):
            return self.base_delay
        return max(0.0, min(seconds, self.retry_after_cap))


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self.failures = 0
        self.opened_at: float | None = None
        self._probing = False
        self.fast_failures = 0  # requests refused while open

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return "closed"
        if self._clock() - self.opened_at >= self.reset_timeout:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May a request go out right now?  (Half-open admits one.)"""
        state = self.state
        if state == "closed":
            return True
        if state == "half-open" and not self._probing:
            self._probing = True
            return True
        self.fast_failures += 1
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._probing = False
        self.failures += 1
        if self.failures >= self.failure_threshold:
            self.opened_at = self._clock()
