"""MiniC -> PowerPC compiler substrate.

The paper's premise (section 1.1) is that compilers generate code with a
Syntax Directed Translation Scheme: fixed instruction templates reused
throughout a program, differing only in register numbers and operand
offsets.  That template reuse is what makes compiled code compressible.

This package is a complete, small compiler built on that principle:

* :mod:`lexer` / :mod:`parser` — MiniC (a C subset: ints, global arrays,
  array parameters, full statement set including ``switch``).
* :mod:`semantics` — symbol resolution and checking.
* :mod:`ir` / :mod:`lowering` — three-address IR.
* :mod:`optimizer` — constant folding, copy propagation, algebraic
  simplification, dead-code elimination (the "-O2 without inlining or
  unrolling" configuration the paper compiled with).
* :mod:`regalloc` — liveness analysis + linear-scan allocation over the
  PowerPC SysV register convention.
* :mod:`codegen` — SDTS instruction templates, GCC-style prologue and
  epilogue sequences (tagged for the paper's Table 3), jump tables for
  dense switches.
* :mod:`runtime` — the statically linked runtime library.
* :mod:`driver` — ``compile_source`` / ``compile_and_link``.
"""

from repro.compiler.driver import compile_and_link, compile_source

__all__ = ["compile_and_link", "compile_source"]
