"""MiniC abstract syntax tree.

MiniC is the C subset the paper's benchmarks need: 32-bit signed ints,
global scalars and arrays (``int``/``char`` element types), array
parameters (``int a[]``), the full structured statement set including
``switch``, and calls.  No pointers, structs, or floating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Type:
    """``int``, ``char`` (arrays only), or an array-of-element type."""

    base: str  # 'int' | 'char' | 'void'
    is_array: bool = False

    @property
    def element_size(self) -> int:
        return 1 if self.base == "char" else 4


INT = Type("int")
VOID = Type("void")
INT_ARRAY = Type("int", is_array=True)
CHAR_ARRAY = Type("char", is_array=True)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
@dataclass
class Expr:
    line: int = 0


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class ArrayRef(Expr):
    name: str = ""
    index: Expr | None = None


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Binary(Expr):
    op: str = "+"
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Unary(Expr):
    op: str = "-"
    operand: Expr | None = None


@dataclass
class Logical(Expr):
    """Short-circuit ``&&`` / ``||``."""

    op: str = "&&"
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Assign(Expr):
    """``target = value`` or compound ``target op= value``."""

    target: Expr | None = None  # Var or ArrayRef
    value: Expr | None = None
    op: str | None = None  # None for plain '='


@dataclass
class Conditional(Expr):
    """Ternary ``cond ? a : b``."""

    cond: Expr | None = None
    then: Expr | None = None
    otherwise: Expr | None = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------
@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    body: list[Stmt] = field(default_factory=list)


@dataclass
class LocalDecl(Stmt):
    name: str = ""
    init: Expr | None = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    otherwise: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class DoWhile(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None


@dataclass
class For(Stmt):
    init: Stmt | None = None  # ExprStmt or LocalDecl
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class SwitchCase:
    value: int = 0
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    selector: Expr | None = None
    cases: list[SwitchCase] = field(default_factory=list)
    default: list[Stmt] | None = None


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------
@dataclass
class Param:
    name: str
    type: Type
    line: int = 0


@dataclass
class GlobalVar:
    name: str
    type: Type
    array_size: int | None = None
    init: list[int] | None = None  # scalar: single element list
    line: int = 0

    @property
    def size_bytes(self) -> int:
        if self.array_size is None:
            return 4
        return self.array_size * self.type.element_size


@dataclass
class Function:
    name: str
    return_type: Type
    params: list[Param]
    body: Block
    line: int = 0


@dataclass
class TranslationUnit:
    globals: list[GlobalVar] = field(default_factory=list)
    functions: list[Function] = field(default_factory=list)
