"""SDTS code generation: IR -> PowerPC instruction templates.

Every IR operation maps onto a fixed instruction template, reused at
every occurrence with only register numbers and offsets varying — the
property (paper section 1.1) that makes compiled code compressible.

Register conventions (see :mod:`repro.compiler.regalloc`):

* r0  — data-only scratch (never a base register: ``RA=0`` means zero),
* r1  — stack pointer,
* r11 — address scratch,
* r12 — secondary scratch,
* r3–r10 — arguments / volatile allocatables,
* r14–r31 — callee-saved allocatables.

Prologue and epilogue instructions are tagged with their
:class:`~repro.linker.objfile.InsnRole` so the paper's Table 3 can
measure them.  Dense ``switch`` statements compile to jump tables placed
in .data (so the table can be re-patched after compression, paper
section 3.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import bitutils
from repro.compiler import ir
from repro.compiler.regalloc import Allocation, Loc, allocate
from repro.errors import CompileError
from repro.linker.objfile import AsmOp, DataItem, FunctionUnit, InsnRole

_SCRATCH_ADDR = 11
_SCRATCH_2 = 12
_SCRATCH_DATA = 0
_SP = 1
_ARG_BASE = 3

# (BO, CR bit) encodings for branch-on-comparison; CR field is cr0.
_BRANCH_CODES = {
    "lt": (12, 0),
    "gt": (12, 1),
    "eq": (12, 2),
    "ge": (4, 0),
    "le": (4, 1),
    "ne": (4, 2),
}

_LOADS = {1: "lbz", 4: "lwz"}
_STORES = {1: "stb", 4: "stw"}

_EPILOGUE_LABEL = ".Lepilogue"


@dataclass(frozen=True)
class CodegenConfig:
    """Knobs for code generation.

    ``standardize_prologue`` implements the paper's section 5 proposal:
    always save/restore the full callee-saved register file so every
    prologue is byte-identical (trading size before compression for
    compressibility).
    """

    standardize_prologue: bool = False
    jump_table_min_cases: int = 4
    jump_table_max_ratio: int = 2


class FunctionCodegen:
    """Generates one :class:`FunctionUnit` from an IR function."""

    def __init__(
        self,
        fn: ir.IRFunction,
        allocation: Allocation,
        config: CodegenConfig,
        data_out: list[DataItem],
    ) -> None:
        self.fn = fn
        self.alloc = allocation
        self.config = config
        self.data_out = data_out
        self.unit = FunctionUnit(fn.name, is_library=fn.is_library)
        self._jump_tables = 0
        self._frame = self._plan_frame()

    # ==================================================================
    # Frame planning
    # ==================================================================
    def _plan_frame(self) -> dict:
        saved = list(self.alloc.used_nonvolatile)
        if self.config.standardize_prologue:
            saved = list(range(31, 13, -1))
        needs_frame = bool(
            self.alloc.has_calls or saved or self.alloc.num_spill_slots
        )
        size = 0
        if needs_frame:
            size = 8 + 4 * self.alloc.num_spill_slots + 4 * len(saved)
            size = (size + 15) & ~15
        return {"needs_frame": needs_frame, "size": size, "saved": saved}

    def _spill_offset(self, slot_index: int) -> int:
        return 8 + 4 * slot_index

    def _save_offset(self, register: int) -> int:
        return self._frame["size"] - 4 * (32 - register)

    # ==================================================================
    # Emission helpers
    # ==================================================================
    def _emit(
        self,
        mnemonic: str,
        *values,
        target: str | None = None,
        role: InsnRole = InsnRole.BODY,
        hi_symbol: str | None = None,
        lo_symbol: str | None = None,
        lo_addend: int = 0,
    ) -> None:
        self.unit.add(
            AsmOp(
                mnemonic,
                tuple(values),
                target=target,
                role=role,
                hi_symbol=hi_symbol,
                lo_symbol=lo_symbol,
                lo_addend=lo_addend,
            )
        )

    def _label(self, name: str) -> None:
        self.unit.place_label(name)

    def _emit_li(self, dest_reg: int, value: int, role: InsnRole = InsnRole.BODY) -> None:
        """Materialize a 32-bit constant: ``li`` or ``lis``+``ori``."""
        if bitutils.fits_signed(value, 16):
            self._emit("addi", dest_reg, 0, value, role=role)
            return
        high = (value >> 16) & 0xFFFF
        low = value & 0xFFFF
        self._emit("addis", dest_reg, 0, bitutils.sign_extend(high, 16), role=role)
        if low:
            self._emit("ori", dest_reg, dest_reg, low, role=role)

    def _fetch(self, operand: ir.Operand, scratch: int) -> int:
        """Bring an operand into a physical register; returns the register."""
        if isinstance(operand, ir.Imm):
            self._emit_li(scratch, operand.value)
            return scratch
        location = self.alloc.loc(operand)
        if location.kind == "reg":
            return location.index
        self._emit("lwz", scratch, (self._spill_offset(location.index), _SP))
        return scratch

    def _dest_reg(self, dest: ir.VReg) -> tuple[int, Loc]:
        """Physical register results should be computed into."""
        location = self.alloc.loc(dest)
        if location.kind == "reg":
            return location.index, location
        return _SCRATCH_ADDR, location

    def _store_dest(self, physical: int, location: Loc) -> None:
        if location.kind == "stack":
            self._emit("stw", physical, (self._spill_offset(location.index), _SP))

    # ==================================================================
    # Top level
    # ==================================================================
    def generate(self) -> FunctionUnit:
        self._emit_prologue()
        self._move_params_in()
        for instr in self.fn.instrs:
            self._gen_instr(instr)
        self._emit_epilogue()
        self._peephole_jumps()
        return self.unit

    def _peephole_jumps(self) -> None:
        """Remove unconditional branches to the very next instruction
        (typically the ``b .Lepilogue`` of a fall-through return)."""
        changed = True
        while changed:
            changed = False
            for index, op in enumerate(self.unit.ops):
                if op.mnemonic != "b" or op.target is None:
                    continue
                target_index = self.unit.labels.get(op.target)
                if target_index == index + 1:
                    del self.unit.ops[index]
                    for label, pos in self.unit.labels.items():
                        if pos > index:
                            self.unit.labels[label] = pos - 1
                    changed = True
                    break

    def _emit_prologue(self) -> None:
        frame = self._frame
        if not frame["needs_frame"]:
            return
        self._emit("stwu", _SP, (-frame["size"], _SP), role=InsnRole.PROLOGUE)
        if self.alloc.has_calls:
            self._emit("mfspr", 0, 8, role=InsnRole.PROLOGUE)
            self._emit("stw", 0, (frame["size"] + 4, _SP), role=InsnRole.PROLOGUE)
        for register in frame["saved"]:
            self._emit(
                "stw", register, (self._save_offset(register), _SP),
                role=InsnRole.PROLOGUE,
            )

    def _emit_epilogue(self) -> None:
        frame = self._frame
        self._label(_EPILOGUE_LABEL)
        if frame["needs_frame"]:
            if self.alloc.has_calls:
                self._emit(
                    "lwz", 0, (frame["size"] + 4, _SP), role=InsnRole.EPILOGUE
                )
                self._emit("mtspr", 8, 0, role=InsnRole.EPILOGUE)
            for register in frame["saved"]:
                self._emit(
                    "lwz", register, (self._save_offset(register), _SP),
                    role=InsnRole.EPILOGUE,
                )
            self._emit("addi", _SP, _SP, frame["size"], role=InsnRole.EPILOGUE)
        self._emit("bclr", 20, 0, role=InsnRole.EPILOGUE)

    def _move_params_in(self) -> None:
        moves = []
        for pid in range(self.fn.nparams):
            location = self.alloc.location.get(ir.VReg(pid))
            if location is None:
                continue  # unused parameter
            moves.append((location, _ARG_BASE + pid))
        self._shuffle_regs_to_locs(moves)

    # ==================================================================
    # Instruction dispatch
    # ==================================================================
    def _gen_instr(self, instr: ir.Instr) -> None:
        method = getattr(self, f"_gen_{type(instr).__name__.lower()}", None)
        if method is None:  # pragma: no cover - IR set is closed
            raise CompileError(f"no template for {type(instr).__name__}")
        method(instr)

    def _gen_label(self, instr: ir.Label) -> None:
        self._label(instr.name)

    def _gen_copy(self, instr: ir.Copy) -> None:
        dest, location = self._dest_reg(instr.dest)
        if isinstance(instr.src, ir.Imm):
            self._emit_li(dest, instr.src.value)
        else:
            src = self._fetch(instr.src, dest)
            if src != dest:
                self._emit("or", dest, src, src)
        self._store_dest(dest, location)

    def _gen_bin(self, instr: ir.Bin) -> None:
        dest, location = self._dest_reg(instr.dest)
        handled = self._try_immediate_bin(instr, dest)
        if not handled:
            a = self._fetch(instr.a, _SCRATCH_ADDR)
            b = self._fetch(instr.b, _SCRATCH_2)
            self._emit_bin_rr(instr.op, dest, a, b)
        self._store_dest(dest, location)

    def _try_immediate_bin(self, instr: ir.Bin, dest: int) -> bool:
        """Use an immediate instruction form when the Imm fits."""
        if not isinstance(instr.b, ir.Imm) or isinstance(instr.a, ir.Imm):
            return False
        value = instr.b.value
        a = None
        op = instr.op
        if op == "add" and bitutils.fits_signed(value, 16):
            a = self._fetch(instr.a, _SCRATCH_ADDR)
            self._emit("addi", dest, a, value)
        elif op == "sub" and bitutils.fits_signed(-value, 16):
            a = self._fetch(instr.a, _SCRATCH_ADDR)
            self._emit("addi", dest, a, -value)
        elif op == "mul" and bitutils.fits_signed(value, 16):
            a = self._fetch(instr.a, _SCRATCH_ADDR)
            self._emit("mulli", dest, a, value)
        elif op == "and" and bitutils.fits_unsigned(value, 16):
            a = self._fetch(instr.a, _SCRATCH_ADDR)
            self._emit("andi.", dest, a, value)
        elif op == "or" and bitutils.fits_unsigned(value, 16):
            a = self._fetch(instr.a, _SCRATCH_ADDR)
            self._emit("ori", dest, a, value)
        elif op == "xor" and bitutils.fits_unsigned(value, 16):
            a = self._fetch(instr.a, _SCRATCH_ADDR)
            self._emit("xori", dest, a, value)
        elif op == "shl" and 0 <= value < 32:
            a = self._fetch(instr.a, _SCRATCH_ADDR)
            if value == 0:
                if a != dest:
                    self._emit("or", dest, a, a)
            else:
                self._emit("rlwinm", dest, a, value, 0, 31 - value)
        elif op == "sra" and 0 <= value < 32:
            a = self._fetch(instr.a, _SCRATCH_ADDR)
            if value == 0:
                if a != dest:
                    self._emit("or", dest, a, a)
            else:
                self._emit("srawi", dest, a, value)
        else:
            return False
        return True

    def _emit_bin_rr(self, op: str, dest: int, a: int, b: int) -> None:
        if op == "add":
            self._emit("add", dest, a, b)
        elif op == "sub":
            self._emit("subf", dest, b, a)  # rT = rB - rA
        elif op == "mul":
            self._emit("mullw", dest, a, b)
        elif op == "div":
            self._emit("divw", dest, a, b)
        elif op == "mod":
            # t = a / b; t = t * b; dest = a - t.  r0 is the temporary so
            # the template never clobbers operands staged in r11/r12.
            self._emit("divw", _SCRATCH_DATA, a, b)
            self._emit("mullw", _SCRATCH_DATA, _SCRATCH_DATA, b)
            self._emit("subf", dest, _SCRATCH_DATA, a)
        elif op == "and":
            self._emit("and", dest, a, b)
        elif op == "or":
            self._emit("or", dest, a, b)
        elif op == "xor":
            self._emit("xor", dest, a, b)
        elif op == "shl":
            self._emit("slw", dest, a, b)
        elif op == "sra":
            self._emit("sraw", dest, a, b)
        else:  # pragma: no cover
            raise CompileError(f"no template for binary op {op!r}")

    def _gen_un(self, instr: ir.Un) -> None:
        dest, location = self._dest_reg(instr.dest)
        a = self._fetch(instr.a, _SCRATCH_ADDR)
        if instr.op == "neg":
            self._emit("neg", dest, a)
        else:  # bitwise not
            self._emit("nor", dest, a, a)
        self._store_dest(dest, location)

    def _gen_cmpset(self, instr: ir.CmpSet) -> None:
        dest, location = self._dest_reg(instr.dest)
        done = self._new_local_label()
        self._emit_compare(instr.a, instr.b)
        bo, bit = _BRANCH_CODES[instr.op]
        self._emit_li(dest, 1)
        self._emit("bc", bo, bit, 0, target=done)
        self._emit_li(dest, 0)
        self._label(done)
        self._store_dest(dest, location)

    def _emit_compare(self, a: ir.Operand, b: ir.Operand) -> None:
        reg_a = self._fetch(a, _SCRATCH_ADDR)
        if isinstance(b, ir.Imm) and bitutils.fits_signed(b.value, 16):
            self._emit("cmpwi", 0, reg_a, b.value)
        else:
            reg_b = self._fetch(b, _SCRATCH_2)
            self._emit("cmpw", 0, reg_a, reg_b)

    def _gen_cbr(self, instr: ir.CBr) -> None:
        self._emit_compare(instr.a, instr.b)
        bo, bit = _BRANCH_CODES[instr.op]
        self._emit("bc", bo, bit, 0, target=instr.target)

    def _gen_br(self, instr: ir.Br) -> None:
        self._emit("b", 0, target=instr.target)

    def _gen_addrof(self, instr: ir.AddrOf) -> None:
        dest, location = self._dest_reg(instr.dest)
        self._emit("addis", dest, 0, 0, hi_symbol=instr.symbol)
        self._emit("addi", dest, dest, 0, lo_symbol=instr.symbol)
        self._store_dest(dest, location)

    # ------------------------------------------------------------------
    # Memory access templates
    # ------------------------------------------------------------------
    def _gen_loadsym(self, instr: ir.LoadSym) -> None:
        dest, location = self._dest_reg(instr.dest)
        opcode = _LOADS[instr.size]
        if instr.index is None or isinstance(instr.index, ir.Imm):
            addend = (
                0 if instr.index is None else instr.index.value * instr.scale
            )
            self._emit("addis", _SCRATCH_ADDR, 0, 0,
                       hi_symbol=instr.symbol, lo_addend=addend)
            self._emit(opcode, dest, (0, _SCRATCH_ADDR),
                       lo_symbol=instr.symbol, lo_addend=addend)
        else:
            self._symbol_indexed_address(instr.symbol, instr.index, instr.scale)
            self._emit(opcode, dest, (0, _SCRATCH_ADDR))
        self._store_dest(dest, location)

    def _gen_storesym(self, instr: ir.StoreSym) -> None:
        opcode = _STORES[instr.size]
        src = self._fetch_store_source(instr.src)
        if instr.index is None or isinstance(instr.index, ir.Imm):
            addend = (
                0 if instr.index is None else instr.index.value * instr.scale
            )
            self._emit("addis", _SCRATCH_ADDR, 0, 0,
                       hi_symbol=instr.symbol, lo_addend=addend)
            self._emit(opcode, src, (0, _SCRATCH_ADDR),
                       lo_symbol=instr.symbol, lo_addend=addend)
        else:
            self._symbol_indexed_address(instr.symbol, instr.index, instr.scale)
            self._emit(opcode, src, (0, _SCRATCH_ADDR))

    def _fetch_store_source(self, src: ir.Operand) -> int:
        """Fetch a store's data operand into r0 (data-only scratch)."""
        if isinstance(src, ir.Imm):
            self._emit_li(_SCRATCH_DATA, src.value)
            return _SCRATCH_DATA
        location = self.alloc.loc(src)
        if location.kind == "reg":
            return location.index
        self._emit("lwz", _SCRATCH_DATA, (self._spill_offset(location.index), _SP))
        return _SCRATCH_DATA

    def _symbol_indexed_address(
        self, symbol: str, index: ir.Operand, scale: int
    ) -> None:
        """Compute ``symbol + index * scale`` into r11."""
        index_reg = self._fetch(index, _SCRATCH_2)
        if scale == 4:
            self._emit("rlwinm", _SCRATCH_2, index_reg, 2, 0, 29)
            index_reg = _SCRATCH_2
        self._emit("addis", _SCRATCH_ADDR, 0, 0, hi_symbol=symbol)
        self._emit("addi", _SCRATCH_ADDR, _SCRATCH_ADDR, 0, lo_symbol=symbol)
        self._emit("add", _SCRATCH_ADDR, _SCRATCH_ADDR, index_reg)

    def _gen_loadidx(self, instr: ir.LoadIdx) -> None:
        dest, location = self._dest_reg(instr.dest)
        opcode = _LOADS[instr.size]
        base = self._fetch(instr.base, _SCRATCH_ADDR)
        if isinstance(instr.index, ir.Imm):
            offset = instr.index.value * instr.scale
            if bitutils.fits_signed(offset, 16):
                self._emit(opcode, dest, (offset, base))
                self._store_dest(dest, location)
                return
        index_reg = self._fetch(instr.index, _SCRATCH_2)
        if instr.scale == 4:
            self._emit("rlwinm", _SCRATCH_2, index_reg, 2, 0, 29)
            index_reg = _SCRATCH_2
        self._emit("add", _SCRATCH_ADDR, base, index_reg)
        self._emit(opcode, dest, (0, _SCRATCH_ADDR))
        self._store_dest(dest, location)

    def _gen_storeidx(self, instr: ir.StoreIdx) -> None:
        opcode = _STORES[instr.size]
        src = self._fetch_store_source(instr.src)
        base = self._fetch(instr.base, _SCRATCH_ADDR)
        if isinstance(instr.index, ir.Imm):
            offset = instr.index.value * instr.scale
            if bitutils.fits_signed(offset, 16):
                self._emit(opcode, src, (offset, base))
                return
        index_reg = self._fetch(instr.index, _SCRATCH_2)
        if instr.scale == 4:
            self._emit("rlwinm", _SCRATCH_2, index_reg, 2, 0, 29)
            index_reg = _SCRATCH_2
        self._emit("add", _SCRATCH_ADDR, base, index_reg)
        self._emit(opcode, src, (0, _SCRATCH_ADDR))

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def _gen_call(self, instr: ir.Call) -> None:
        self._marshal_arguments(instr.args)
        self._emit("bl", 0, target=instr.name)
        if instr.dest is not None:
            location = self.alloc.loc(instr.dest)
            if location.kind == "reg":
                if location.index != _ARG_BASE:
                    self._emit("or", location.index, _ARG_BASE, _ARG_BASE)
            else:
                self._emit(
                    "stw", _ARG_BASE, (self._spill_offset(location.index), _SP)
                )

    def _marshal_arguments(self, args: list[ir.Operand]) -> None:
        """Move argument operands into r3, r4, … without clobbering.

        Reduces to a parallel-move problem among physical registers;
        cycles are broken by parking one source in r12.
        """
        # (dest_reg, source) where source is ('reg', n) | ('stack', s) | ('imm', v)
        moves: list[tuple[int, tuple[str, int]]] = []
        for position, arg in enumerate(args):
            dest = _ARG_BASE + position
            if isinstance(arg, ir.Imm):
                moves.append((dest, ("imm", arg.value)))
            else:
                location = self.alloc.loc(arg)
                moves.append((dest, (location.kind, location.index)))
        while moves:
            emitted = False
            pending_reg_sources = {
                src[1] for _, src in moves if src[0] == "reg"
            }
            for item in list(moves):
                dest, source = item
                if dest in pending_reg_sources and source != ("reg", dest):
                    continue  # writing dest would clobber a pending source
                self._emit_move_to_reg(dest, source)
                moves.remove(item)
                emitted = True
            if not emitted:
                # Pure register cycle: park one source in r12.
                dest, source = moves[0]
                assert source[0] == "reg"
                self._emit("or", _SCRATCH_2, source[1], source[1])
                moves = [
                    (d, ("reg", _SCRATCH_2) if s == source else s)
                    for d, s in moves
                ]

    def _emit_move_to_reg(self, dest: int, source: tuple[str, int]) -> None:
        kind, value = source
        if kind == "imm":
            self._emit_li(dest, value)
        elif kind == "reg":
            if value != dest:
                self._emit("or", dest, value, value)
        else:
            self._emit("lwz", dest, (self._spill_offset(value), _SP))

    def _emit_arg_move(self, dest: int, operand: ir.Operand) -> None:
        if isinstance(operand, ir.Imm):
            self._emit_li(dest, operand.value)
            return
        location = self.alloc.loc(operand)
        if location.kind == "reg":
            if location.index != dest:
                self._emit("or", dest, location.index, location.index)
        else:
            self._emit("lwz", dest, (self._spill_offset(location.index), _SP))

    def _shuffle_regs_to_locs(self, moves: list[tuple[Loc, int]]) -> None:
        """Entry-time parallel move: argument registers -> vreg homes."""
        remaining = list(moves)
        progress = True
        while remaining and progress:
            progress = False
            for item in list(remaining):
                location, source = item
                blocked = location.kind == "reg" and any(
                    src == location.index for loc2, src in remaining if loc2 != location
                )
                if blocked:
                    continue
                if location.kind == "reg":
                    if location.index != source:
                        self._emit("or", location.index, source, source)
                else:
                    self._emit(
                        "stw", source, (self._spill_offset(location.index), _SP)
                    )
                remaining.remove(item)
                progress = True
        if remaining:
            location, source = remaining[0]
            self._emit("or", _SCRATCH_2, source, source)
            rest = [
                (loc2, _SCRATCH_2 if src == source else src)
                for loc2, src in remaining[1:]
            ] + [(location, _SCRATCH_2)]
            self._shuffle_regs_to_locs(rest)

    # ------------------------------------------------------------------
    # Control and system templates
    # ------------------------------------------------------------------
    def _gen_ret(self, instr: ir.Ret) -> None:
        if instr.src is not None and self.fn.returns_value:
            self._emit_arg_move(_ARG_BASE, instr.src)
        self._emit("b", 0, target=_EPILOGUE_LABEL)

    def _gen_switch(self, instr: ir.Switch) -> None:
        cases = sorted(instr.cases)
        count = len(cases)
        span = cases[-1][0] - cases[0][0] + 1 if cases else 0
        dense = (
            count >= self.config.jump_table_min_cases
            and span <= self.config.jump_table_max_ratio * count
        )
        selector = self._fetch(instr.selector, _SCRATCH_ADDR)
        if not dense:
            for value, label in cases:
                if bitutils.fits_signed(value, 16):
                    self._emit("cmpwi", 0, selector, value)
                else:
                    self._emit_li(_SCRATCH_2, value)
                    self._emit("cmpw", 0, selector, _SCRATCH_2)
                self._emit("bc", 12, 2, 0, target=label)  # beq
            self._emit("b", 0, target=instr.default)
            return
        minimum = cases[0][0]
        table_symbol = f"__jt_{self.fn.name}_{self._jump_tables}"
        self._jump_tables += 1
        by_value = dict(cases)
        labels = [
            by_value.get(minimum + offset, instr.default) for offset in range(span)
        ]
        self.data_out.append(
            DataItem(
                symbol=table_symbol,
                size=4 * span,
                align=4,
                code_labels={
                    word: (self.fn.name, label) for word, label in enumerate(labels)
                },
            )
        )
        work = _SCRATCH_2
        if minimum != 0:
            self._emit("addi", work, selector, -minimum)
        else:
            if selector != work:
                self._emit("or", work, selector, selector)
        self._emit("cmplwi", 0, work, span - 1)
        self._emit("bc", 12, 1, 0, target=instr.default)  # bgt -> default
        self._emit("rlwinm", work, work, 2, 0, 29)  # scale by 4
        self._emit("addis", _SCRATCH_ADDR, 0, 0, hi_symbol=table_symbol)
        self._emit("addi", _SCRATCH_ADDR, _SCRATCH_ADDR, 0, lo_symbol=table_symbol)
        self._emit("add", _SCRATCH_ADDR, _SCRATCH_ADDR, work)
        self._emit("lwz", _SCRATCH_ADDR, (0, _SCRATCH_ADDR))
        self._emit("mtspr", 9, _SCRATCH_ADDR)  # mtctr
        self._emit("bcctr", 20, 0)  # bctr

    def _gen_out(self, instr: ir.Out) -> None:
        self._emit_arg_move(_ARG_BASE, instr.src)
        self._emit("addi", 0, 0, 1)  # li r0,1: put_int
        self._emit("sc")

    def _gen_outc(self, instr: ir.OutC) -> None:
        self._emit_arg_move(_ARG_BASE, instr.src)
        self._emit("addi", 0, 0, 2)  # li r0,2: put_char
        self._emit("sc")

    def _gen_halt(self, instr: ir.Halt) -> None:
        self._emit("addi", 0, 0, 0)  # li r0,0: exit
        self._emit("sc")

    # ------------------------------------------------------------------
    _local_labels = 0

    def _new_local_label(self) -> str:
        FunctionCodegen._local_labels += 1
        return f".Lcg{FunctionCodegen._local_labels}"


def generate_function(
    fn: ir.IRFunction,
    config: CodegenConfig | None = None,
    data_out: list[DataItem] | None = None,
) -> FunctionUnit:
    """Allocate registers and generate code for one IR function."""
    config = config or CodegenConfig()
    data_out = data_out if data_out is not None else []
    allocation = allocate(fn)
    return FunctionCodegen(fn, allocation, config, data_out).generate()
