"""Compilation driver: MiniC source -> linked Program.

``compile_and_link`` mirrors the paper's toolchain: compile the program
together with the runtime library (statically linked), optimize at the
"-O2 without inlining/unrolling" level, and lay everything out into one
executable image.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import observe
from repro.compiler import ast_nodes as ast
from repro.compiler.codegen import CodegenConfig, FunctionCodegen
from repro.compiler.lowering import FunctionLowerer
from repro.compiler.optimizer import optimize_function
from repro.compiler.parser import parse
from repro.compiler.regalloc import allocate
from repro.compiler.runtime import RUNTIME_FUNCTIONS, RUNTIME_SOURCE, make_start
from repro.compiler.semantics import check
from repro.errors import CompileError
from repro.linker.layout import link
from repro.linker.objfile import DataItem, ObjectModule
from repro.linker.program import Program


@dataclass
class CompileOptions:
    """Toolchain configuration."""

    opt_level: int = 2
    codegen: CodegenConfig = field(default_factory=CodegenConfig)
    include_runtime: bool = True


def _globals_to_data(unit: ast.TranslationUnit) -> list[DataItem]:
    items = []
    for var in unit.globals:
        initial = b""
        if var.init is not None:
            if var.type.element_size == 1:
                initial = bytes(v & 0xFF for v in var.init)
            else:
                initial = b"".join(
                    (v & 0xFFFFFFFF).to_bytes(4, "big") for v in var.init
                )
        items.append(
            DataItem(
                symbol=var.name,
                size=var.size_bytes,
                align=4 if var.type.element_size == 4 else 1,
                initial=initial,
            )
        )
    return items


def compile_source(
    source: str,
    module_name: str = "module",
    options: CompileOptions | None = None,
) -> ObjectModule:
    """Compile MiniC source (plus the runtime library) to an object module.

    Runtime functions are tagged ``is_library`` so size accounting can
    separate application from library code, as the paper's static
    linking discussion requires.
    """
    options = options or CompileOptions()
    unit = parse(source)
    if options.include_runtime:
        # Parse the runtime separately so user diagnostics keep the
        # user's line numbers, then merge the translation units.
        runtime_unit = parse(RUNTIME_SOURCE)
        unit = ast.TranslationUnit(
            globals=runtime_unit.globals + unit.globals,
            functions=runtime_unit.functions + unit.functions,
        )
    info = check(unit)

    module = ObjectModule(module_name)
    module.data.extend(_globals_to_data(unit))
    for fn in unit.functions:
        is_library = options.include_runtime and fn.name in RUNTIME_FUNCTIONS
        ir_fn = FunctionLowerer(fn, info, is_library).lower()
        optimize_function(ir_fn, level=options.opt_level)
        allocation = allocate(ir_fn)
        codegen = FunctionCodegen(ir_fn, allocation, options.codegen, module.data)
        module.functions.append(codegen.generate())
    return module


def compile_and_link(
    source: str,
    name: str = "a.out",
    options: CompileOptions | None = None,
) -> Program:
    """Compile MiniC source and statically link it into a Program.

    The program must define ``main``; the runtime's ``_start`` calls it
    and halts.
    """
    with observe.span("build", name=name):
        with observe.stage("compile"):
            module = compile_source(source, module_name=name, options=options)
        if not any(fn.name == "main" for fn in module.functions):
            raise CompileError(f"{name}: program defines no main()")
        start_module = ObjectModule("crt0", functions=[make_start()])
        with observe.stage("link"):
            return link([module, start_module], name=name)
