"""Three-address intermediate representation.

A function is a linear list of instructions with in-line labels;
control flow goes through :class:`Br`, :class:`CBr`, :class:`Switch`,
and :class:`Ret`.  Operands are virtual registers (:class:`VReg`) or
immediates (:class:`Imm`); instruction selection in codegen picks
immediate instruction forms (``addi``, ``cmpwi`` …) when an ``Imm``
fits its field.

Every instruction reports its ``defs()`` and ``uses()`` so the
optimizer and the register allocator share one dataflow view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

BIN_OPS = ("add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "sra")
UN_OPS = ("neg", "not")
CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")

# Negation map for branch inversion (if !cond goto else).
CMP_NEGATE = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "gt": "le", "le": "gt"}
# Swap map for operand commutation (a < b  <=>  b > a).
CMP_SWAP = {"eq": "eq", "ne": "ne", "lt": "gt", "gt": "lt", "le": "ge", "ge": "le"}


@dataclass(frozen=True)
class VReg:
    """A virtual register."""

    id: int

    def __repr__(self) -> str:
        return f"v{self.id}"


@dataclass(frozen=True)
class Imm:
    """An immediate operand."""

    value: int

    def __repr__(self) -> str:
        return f"#{self.value}"


Operand = VReg | Imm


class Instr:
    """Base class; subclasses are simple records."""

    def defs(self) -> tuple[VReg, ...]:
        dest = getattr(self, "dest", None)
        return (dest,) if isinstance(dest, VReg) else ()

    def uses(self) -> tuple[VReg, ...]:
        out: list[VReg] = []
        for name in getattr(self, "_use_fields", ()):
            value = getattr(self, name)
            if isinstance(value, VReg):
                out.append(value)
            elif isinstance(value, list):
                out.extend(v for v in value if isinstance(v, VReg))
        return tuple(out)

    def replace_uses(self, mapping: dict[VReg, Operand]) -> None:
        """Substitute used vregs per ``mapping`` (copy propagation)."""
        for name in getattr(self, "_use_fields", ()):
            value = getattr(self, name)
            if isinstance(value, VReg) and value in mapping:
                setattr(self, name, mapping[value])
            elif isinstance(value, list):
                setattr(
                    self,
                    name,
                    [mapping.get(v, v) if isinstance(v, VReg) else v for v in value],
                )

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Br, Ret, Switch))

    @property
    def has_side_effects(self) -> bool:
        return isinstance(
            self,
            (StoreSym, StoreIdx, Call, Ret, Br, CBr, Switch, Out, OutC, Halt, Label),
        )


@dataclass
class Label(Instr):
    name: str


@dataclass
class Copy(Instr):
    dest: VReg
    src: Operand
    _use_fields = ("src",)


@dataclass
class Bin(Instr):
    op: str
    dest: VReg
    a: Operand
    b: Operand
    _use_fields = ("a", "b")

    def __post_init__(self) -> None:
        assert self.op in BIN_OPS, self.op


@dataclass
class Un(Instr):
    op: str
    dest: VReg
    a: Operand
    _use_fields = ("a",)

    def __post_init__(self) -> None:
        assert self.op in UN_OPS, self.op


@dataclass
class CmpSet(Instr):
    """dest = (a <op> b) ? 1 : 0"""

    op: str
    dest: VReg
    a: Operand
    b: Operand
    _use_fields = ("a", "b")

    def __post_init__(self) -> None:
        assert self.op in CMP_OPS, self.op


@dataclass
class AddrOf(Instr):
    """dest = address of a global data symbol (for array arguments)."""

    dest: VReg
    symbol: str


@dataclass
class LoadSym(Instr):
    """dest = mem[symbol + index * scale], size 1 or 4 bytes."""

    dest: VReg
    symbol: str
    index: Operand | None
    scale: int
    size: int
    _use_fields = ("index",)


@dataclass
class StoreSym(Instr):
    """mem[symbol + index * scale] = src."""

    src: Operand
    symbol: str
    index: Operand | None
    scale: int
    size: int
    _use_fields = ("src", "index")


@dataclass
class LoadIdx(Instr):
    """dest = mem[base + index * scale] — array-parameter access."""

    dest: VReg
    base: VReg
    index: Operand
    scale: int
    size: int
    _use_fields = ("base", "index")


@dataclass
class StoreIdx(Instr):
    """mem[base + index * scale] = src."""

    src: Operand
    base: VReg
    index: Operand
    scale: int
    size: int
    _use_fields = ("src", "base", "index")


@dataclass
class Call(Instr):
    dest: VReg | None
    name: str
    args: list[Operand]
    _use_fields = ("args",)

    def defs(self) -> tuple[VReg, ...]:
        return (self.dest,) if self.dest is not None else ()


@dataclass
class Ret(Instr):
    src: Operand | None
    _use_fields = ("src",)


@dataclass
class Br(Instr):
    target: str


@dataclass
class CBr(Instr):
    """Branch to ``target`` when (a <op> b); otherwise fall through."""

    op: str
    a: Operand
    b: Operand
    target: str
    _use_fields = ("a", "b")

    def __post_init__(self) -> None:
        assert self.op in CMP_OPS, self.op


@dataclass
class Switch(Instr):
    selector: VReg
    cases: list[tuple[int, str]]
    default: str
    _use_fields = ("selector",)


@dataclass
class Out(Instr):
    src: Operand
    _use_fields = ("src",)


@dataclass
class OutC(Instr):
    src: Operand
    _use_fields = ("src",)


@dataclass
class Halt(Instr):
    pass


@dataclass
class IRFunction:
    """One function in IR form.

    Parameters occupy vregs ``0 .. nparams-1`` on entry (copied from the
    argument registers by codegen).  ``param_is_array[i]`` is True when
    parameter ``i`` carries an array base address.
    """

    name: str
    nparams: int
    param_is_array: tuple[bool, ...]
    returns_value: bool
    instrs: list[Instr] = field(default_factory=list)
    next_vreg: int = 0
    is_library: bool = False

    def new_vreg(self) -> VReg:
        reg = VReg(self.next_vreg)
        self.next_vreg += 1
        return reg

    def label_indices(self) -> dict[str, int]:
        """Map label name -> instruction index."""
        return {
            ins.name: i for i, ins in enumerate(self.instrs) if isinstance(ins, Label)
        }

    def branch_targets(self, ins: Instr) -> list[str]:
        if isinstance(ins, Br):
            return [ins.target]
        if isinstance(ins, CBr):
            return [ins.target]
        if isinstance(ins, Switch):
            return [label for _, label in ins.cases] + [ins.default]
        return []
