"""MiniC lexer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError

KEYWORDS = frozenset(
    {
        "int",
        "char",
        "void",
        "if",
        "else",
        "while",
        "for",
        "do",
        "return",
        "break",
        "continue",
        "switch",
        "case",
        "default",
    }
)

# Longest-match-first operator table.
OPERATORS = (
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ":",
    "?",
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'num' | 'string' | 'kw' | 'op' | 'eof'
    text: str
    value: int | None
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, line={self.line})"


_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


def tokenize(source: str) -> list[Token]:
    """Convert MiniC source text into tokens; raises CompileError."""
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isascii() and (ch.isalpha() or ch == "_"):
            j = i
            while j < n and source[j].isascii() and (
                source[j].isalnum() or source[j] == "_"
            ):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, None, line))
            i = j
            continue
        # ASCII digits only: str.isdigit() also accepts Unicode digits
        # (e.g. superscripts) that int() rejects.
        if ch in "0123456789":
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                if j == i + 2:
                    raise CompileError("hex literal has no digits", line)
                value = int(source[i:j], 16)
            else:
                while j < n and source[j] in "0123456789":
                    j += 1
                value = int(source[i:j])
            tokens.append(Token("num", source[i:j], value, line))
            i = j
            continue
        if ch == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                if j + 2 >= n or source[j + 2] != "'":
                    raise CompileError("bad character literal", line)
                esc = source[j + 1]
                if esc not in _ESCAPES:
                    raise CompileError(f"unknown escape \\{esc}", line)
                tokens.append(Token("num", source[i : j + 3], _ESCAPES[esc], line))
                i = j + 3
            else:
                if j + 1 >= n or source[j + 1] != "'":
                    raise CompileError("bad character literal", line)
                tokens.append(Token("num", source[i : j + 2], ord(source[j]), line))
                i = j + 2
            continue
        if ch == '"':
            j = i + 1
            chars: list[str] = []
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    if j + 1 >= n or source[j + 1] not in _ESCAPES:
                        raise CompileError("bad string escape", line)
                    chars.append(chr(_ESCAPES[source[j + 1]]))
                    j += 2
                elif source[j] == "\n":
                    raise CompileError("unterminated string literal", line)
                else:
                    chars.append(source[j])
                    j += 1
            if j >= n:
                raise CompileError("unterminated string literal", line)
            tokens.append(Token("string", "".join(chars), None, line))
            i = j + 1
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, None, line))
                i += len(op)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", None, line))
    return tokens
