"""AST -> IR lowering.

Implements the translation schemes the paper describes in section 1.1:
each syntactic construct maps onto a fixed template of IR operations,
and codegen later maps each IR operation onto a fixed template of
machine instructions.  Short-circuit logic and conditions lower to
compare-and-branch forms so codegen can fuse them into
``cmpwi``/``bc`` pairs.
"""

from __future__ import annotations

from repro.compiler import ast_nodes as ast
from repro.compiler import ir
from repro.compiler.semantics import BUILTINS, UnitInfo
from repro.errors import CompileError

_NEGATED = {"==": "ne", "!=": "eq", "<": "ge", "<=": "gt", ">": "le", ">=": "lt"}
_DIRECT = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
_BIN_IR = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shl",
    ">>": "sra",
}


class _Binding:
    """What a name means inside a function body."""

    __slots__ = ("kind", "vreg", "global_var")

    def __init__(self, kind: str, vreg: ir.VReg | None = None, global_var=None):
        self.kind = kind  # 'local' | 'array_param' | 'global'
        self.vreg = vreg
        self.global_var = global_var


class FunctionLowerer:
    """Lowers one function to :class:`~repro.compiler.ir.IRFunction`."""

    def __init__(self, fn: ast.Function, info: UnitInfo, is_library: bool) -> None:
        self.fn = fn
        self.info = info
        self.out = ir.IRFunction(
            name=fn.name,
            nparams=len(fn.params),
            param_is_array=tuple(p.type.is_array for p in fn.params),
            returns_value=fn.return_type.base != "void",
            is_library=is_library,
        )
        self._scopes: list[dict[str, _Binding]] = []
        self._labels = 0
        self._break_stack: list[str] = []
        self._continue_stack: list[str] = []

    # ------------------------------------------------------------------
    # Infrastructure
    # ------------------------------------------------------------------
    def _emit(self, instr: ir.Instr) -> None:
        self.out.instrs.append(instr)

    def _new_label(self) -> str:
        self._labels += 1
        return f".L{self._labels}"

    def _push_scope(self) -> None:
        self._scopes.append({})

    def _pop_scope(self) -> None:
        self._scopes.pop()

    def _declare(self, name: str, binding: _Binding) -> None:
        self._scopes[-1][name] = binding

    def _lookup(self, name: str, line: int) -> _Binding:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        if name in self.info.globals:
            return _Binding("global", global_var=self.info.globals[name])
        raise CompileError(f"use of undeclared variable {name!r}", line)

    def _as_vreg(self, operand: ir.Operand) -> ir.VReg:
        if isinstance(operand, ir.VReg):
            return operand
        dest = self.out.new_vreg()
        self._emit(ir.Copy(dest, operand))
        return dest

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def lower(self) -> ir.IRFunction:
        self._push_scope()
        for index, param in enumerate(self.fn.params):
            vreg = self.out.new_vreg()
            assert vreg.id == index, "parameters must occupy the first vregs"
            kind = "array_param" if param.type.is_array else "local"
            self._declare(param.name, _Binding(kind, vreg=vreg))
        self._lower_block(self.fn.body)
        # Implicit return for fall-off-the-end.
        self._emit(ir.Ret(ir.Imm(0) if self.out.returns_value else None))
        self._pop_scope()
        return self.out

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _lower_block(self, block: ast.Block) -> None:
        self._push_scope()
        for stmt in block.body:
            self._lower_stmt(stmt)
        self._pop_scope()

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.LocalDecl):
            vreg = self.out.new_vreg()
            if stmt.init is not None:
                value = self._lower_expr(stmt.init)
                self._emit(ir.Copy(vreg, value))
            else:
                self._emit(ir.Copy(vreg, ir.Imm(0)))
            self._declare(stmt.name, _Binding("local", vreg=vreg))
        elif isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            self._lower_expr(stmt.expr, value_needed=False)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._lower_switch(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._emit(ir.Ret(self._lower_expr(stmt.value)))
            else:
                self._emit(ir.Ret(None))
        elif isinstance(stmt, ast.Break):
            self._emit(ir.Br(self._break_stack[-1]))
        elif isinstance(stmt, ast.Continue):
            self._emit(ir.Br(self._continue_stack[-1]))
        else:  # pragma: no cover
            raise CompileError(f"cannot lower {type(stmt).__name__}", stmt.line)

    def _lower_if(self, stmt: ast.If) -> None:
        assert stmt.cond is not None and stmt.then is not None
        else_label = self._new_label()
        if stmt.otherwise is None:
            self._branch_if(stmt.cond, else_label, when=False)
            self._lower_stmt(stmt.then)
            self._emit(ir.Label(else_label))
        else:
            end_label = self._new_label()
            self._branch_if(stmt.cond, else_label, when=False)
            self._lower_stmt(stmt.then)
            self._emit(ir.Br(end_label))
            self._emit(ir.Label(else_label))
            self._lower_stmt(stmt.otherwise)
            self._emit(ir.Label(end_label))

    def _lower_while(self, stmt: ast.While) -> None:
        assert stmt.cond is not None and stmt.body is not None
        head = self._new_label()
        end = self._new_label()
        self._emit(ir.Label(head))
        self._branch_if(stmt.cond, end, when=False)
        self._break_stack.append(end)
        self._continue_stack.append(head)
        self._lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self._emit(ir.Br(head))
        self._emit(ir.Label(end))

    def _lower_do_while(self, stmt: ast.DoWhile) -> None:
        assert stmt.cond is not None and stmt.body is not None
        head = self._new_label()
        cond_label = self._new_label()
        end = self._new_label()
        self._emit(ir.Label(head))
        self._break_stack.append(end)
        self._continue_stack.append(cond_label)
        self._lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self._emit(ir.Label(cond_label))
        self._branch_if(stmt.cond, head, when=True)
        self._emit(ir.Label(end))

    def _lower_for(self, stmt: ast.For) -> None:
        assert stmt.body is not None
        self._push_scope()
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        head = self._new_label()
        step_label = self._new_label()
        end = self._new_label()
        self._emit(ir.Label(head))
        if stmt.cond is not None:
            self._branch_if(stmt.cond, end, when=False)
        self._break_stack.append(end)
        self._continue_stack.append(step_label)
        self._lower_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self._emit(ir.Label(step_label))
        if stmt.step is not None:
            self._lower_expr(stmt.step, value_needed=False)
        self._emit(ir.Br(head))
        self._emit(ir.Label(end))

    def _lower_switch(self, stmt: ast.Switch) -> None:
        assert stmt.selector is not None
        selector = self._as_vreg(self._lower_expr(stmt.selector))
        end = self._new_label()
        default_label = self._new_label()
        case_labels = [(case.value, self._new_label()) for case in stmt.cases]
        self._emit(
            ir.Switch(
                selector,
                [(value, label) for value, label in case_labels],
                default_label,
            )
        )
        self._break_stack.append(end)
        for case, (_, label) in zip(stmt.cases, case_labels):
            self._emit(ir.Label(label))
            for inner in case.body:
                self._lower_stmt(inner)
        self._emit(ir.Label(default_label))
        if stmt.default is not None:
            for inner in stmt.default:
                self._lower_stmt(inner)
        self._break_stack.pop()
        self._emit(ir.Label(end))

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def _branch_if(self, cond: ast.Expr, label: str, when: bool) -> None:
        """Branch to ``label`` iff truth(cond) == when; else fall through."""
        if isinstance(cond, ast.Unary) and cond.op == "!":
            assert cond.operand is not None
            self._branch_if(cond.operand, label, not when)
            return
        if isinstance(cond, ast.Logical):
            assert cond.left is not None and cond.right is not None
            if cond.op == "&&":
                if when:
                    skip = self._new_label()
                    self._branch_if(cond.left, skip, when=False)
                    self._branch_if(cond.right, label, when=True)
                    self._emit(ir.Label(skip))
                else:
                    self._branch_if(cond.left, label, when=False)
                    self._branch_if(cond.right, label, when=False)
            else:  # ||
                if when:
                    self._branch_if(cond.left, label, when=True)
                    self._branch_if(cond.right, label, when=True)
                else:
                    skip = self._new_label()
                    self._branch_if(cond.left, skip, when=True)
                    self._branch_if(cond.right, label, when=False)
                    self._emit(ir.Label(skip))
            return
        if isinstance(cond, ast.Binary) and cond.op in _DIRECT:
            assert cond.left is not None and cond.right is not None
            a = self._lower_expr(cond.left)
            b = self._lower_expr(cond.right)
            op = _DIRECT[cond.op] if when else _NEGATED[cond.op]
            a, b, op = self._orient_cmp(a, b, op)
            self._emit(ir.CBr(op, a, b, label))
            return
        if isinstance(cond, ast.Num):
            truthy = cond.value != 0
            if truthy == when:
                self._emit(ir.Br(label))
            return
        value = self._lower_expr(cond)
        op = "ne" if when else "eq"
        a, b, op = self._orient_cmp(value, ir.Imm(0), op)
        self._emit(ir.CBr(op, a, b, label))

    def _orient_cmp(
        self, a: ir.Operand, b: ir.Operand, op: str
    ) -> tuple[ir.Operand, ir.Operand, str]:
        """Put any immediate on the right so codegen can use cmpwi."""
        if isinstance(a, ir.Imm) and not isinstance(b, ir.Imm):
            return b, a, ir.CMP_SWAP[op]
        return a, b, op

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _lower_expr(self, expr: ast.Expr, value_needed: bool = True) -> ir.Operand:
        if isinstance(expr, ast.Num):
            return ir.Imm(expr.value)
        if isinstance(expr, ast.Var):
            binding = self._lookup(expr.name, expr.line)
            if binding.kind in ("local", "array_param"):
                assert binding.vreg is not None
                return binding.vreg
            if binding.global_var.type.is_array:
                dest = self.out.new_vreg()
                self._emit(ir.AddrOf(dest, expr.name))
                return dest
            dest = self.out.new_vreg()
            self._emit(ir.LoadSym(dest, expr.name, None, 1, 4))
            return dest
        if isinstance(expr, ast.ArrayRef):
            return self._lower_array_load(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr, value_needed)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Logical) or (
            isinstance(expr, ast.Unary) and expr.op == "!"
        ):
            return self._materialize_bool(expr)
        if isinstance(expr, ast.Conditional):
            return self._lower_conditional(expr)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr, value_needed)
        raise CompileError(f"cannot lower {type(expr).__name__}", expr.line)

    def _lower_array_load(self, expr: ast.ArrayRef) -> ir.Operand:
        assert expr.index is not None
        binding = self._lookup(expr.name, expr.line)
        index = self._lower_expr(expr.index)
        dest = self.out.new_vreg()
        if binding.kind == "array_param":
            assert binding.vreg is not None
            # Element size comes from the parameter declaration.
            size = self._param_elem_size(expr.name, expr.line)
            self._emit(ir.LoadIdx(dest, binding.vreg, index, size, size))
        else:
            var = binding.global_var
            size = var.type.element_size
            self._emit(ir.LoadSym(dest, expr.name, index, size, size))
        return dest

    def _param_elem_size(self, name: str, line: int) -> int:
        for param in self.fn.params:
            if param.name == name:
                return param.type.element_size
        raise CompileError(f"{name!r} is not a parameter", line)

    def _lower_call(self, expr: ast.Call, value_needed: bool) -> ir.Operand:
        if expr.name in BUILTINS:
            return self._lower_builtin(expr)
        sig = self.info.functions[expr.name]
        args: list[ir.Operand] = []
        for arg, want in zip(expr.args, sig.param_types):
            if want.is_array:
                assert isinstance(arg, ast.Var)
                binding = self._lookup(arg.name, arg.line)
                if binding.kind == "array_param":
                    assert binding.vreg is not None
                    args.append(binding.vreg)
                else:
                    dest = self.out.new_vreg()
                    self._emit(ir.AddrOf(dest, arg.name))
                    args.append(dest)
            else:
                args.append(self._lower_expr(arg))
        returns_value = sig.return_type.base != "void"
        dest = self.out.new_vreg() if returns_value else None
        self._emit(ir.Call(dest, expr.name, args))
        if dest is None:
            return ir.Imm(0)
        return dest

    def _lower_builtin(self, expr: ast.Call) -> ir.Operand:
        if expr.name == "__out":
            self._emit(ir.Out(self._lower_expr(expr.args[0])))
        elif expr.name == "__outc":
            self._emit(ir.OutC(self._lower_expr(expr.args[0])))
        elif expr.name == "__halt":
            self._emit(ir.Halt())
        else:  # pragma: no cover - BUILTINS is closed
            raise CompileError(f"unknown builtin {expr.name!r}", expr.line)
        return ir.Imm(0)

    def _lower_binary(self, expr: ast.Binary) -> ir.Operand:
        assert expr.left is not None and expr.right is not None
        if expr.op in _DIRECT:
            a = self._lower_expr(expr.left)
            b = self._lower_expr(expr.right)
            dest = self.out.new_vreg()
            a2, b2, op = self._orient_cmp(a, b, _DIRECT[expr.op])
            self._emit(ir.CmpSet(op, dest, a2, b2))
            return dest
        a = self._lower_expr(expr.left)
        b = self._lower_expr(expr.right)
        dest = self.out.new_vreg()
        ir_op = _BIN_IR[expr.op]
        # Keep immediates on the right for commutative ops.
        if ir_op in ("add", "mul", "and", "or", "xor") and isinstance(a, ir.Imm):
            a, b = b, a
        self._emit(ir.Bin(ir_op, dest, a, b))
        return dest

    def _lower_unary(self, expr: ast.Unary) -> ir.Operand:
        assert expr.operand is not None
        if expr.op == "!":
            return self._materialize_bool(expr)
        operand = self._lower_expr(expr.operand)
        dest = self.out.new_vreg()
        self._emit(ir.Un("neg" if expr.op == "-" else "not", dest, operand))
        return dest

    def _materialize_bool(self, expr: ast.Expr) -> ir.Operand:
        """Lower a logical expression used as a value into 0/1."""
        dest = self.out.new_vreg()
        true_label = self._new_label()
        end = self._new_label()
        self._branch_if(expr, true_label, when=True)
        self._emit(ir.Copy(dest, ir.Imm(0)))
        self._emit(ir.Br(end))
        self._emit(ir.Label(true_label))
        self._emit(ir.Copy(dest, ir.Imm(1)))
        self._emit(ir.Label(end))
        return dest

    def _lower_conditional(self, expr: ast.Conditional) -> ir.Operand:
        assert expr.cond is not None
        assert expr.then is not None and expr.otherwise is not None
        dest = self.out.new_vreg()
        else_label = self._new_label()
        end = self._new_label()
        self._branch_if(expr.cond, else_label, when=False)
        self._emit(ir.Copy(dest, self._lower_expr(expr.then)))
        self._emit(ir.Br(end))
        self._emit(ir.Label(else_label))
        self._emit(ir.Copy(dest, self._lower_expr(expr.otherwise)))
        self._emit(ir.Label(end))
        return dest

    def _lower_assign(self, expr: ast.Assign, value_needed: bool) -> ir.Operand:
        assert expr.target is not None and expr.value is not None
        if isinstance(expr.target, ast.Var):
            return self._assign_var(expr, value_needed)
        assert isinstance(expr.target, ast.ArrayRef)
        return self._assign_array(expr, value_needed)

    def _assign_var(self, expr: ast.Assign, value_needed: bool) -> ir.Operand:
        target = expr.target
        assert isinstance(target, ast.Var) and expr.value is not None
        binding = self._lookup(target.name, target.line)
        if binding.kind == "array_param":
            raise CompileError("cannot assign to an array parameter", expr.line)
        if expr.op is None:
            value = self._lower_expr(expr.value)
        else:
            old = self._lower_expr(target)
            rhs = self._lower_expr(expr.value)
            dest = self.out.new_vreg()
            self._emit(ir.Bin(_BIN_IR[expr.op], dest, old, rhs))
            value = dest
        if binding.kind == "local":
            assert binding.vreg is not None
            self._emit(ir.Copy(binding.vreg, value))
            return binding.vreg
        self._emit(ir.StoreSym(value, target.name, None, 1, 4))
        return value

    def _assign_array(self, expr: ast.Assign, value_needed: bool) -> ir.Operand:
        target = expr.target
        assert isinstance(target, ast.ArrayRef) and expr.value is not None
        assert target.index is not None
        binding = self._lookup(target.name, target.line)
        index = self._lower_expr(target.index)
        # Pin the index to a vreg so compound assignment reuses it.
        if expr.op is not None:
            index = self._as_vreg(index)
            old = self.out.new_vreg()
            if binding.kind == "array_param":
                size = self._param_elem_size(target.name, target.line)
                assert binding.vreg is not None
                self._emit(ir.LoadIdx(old, binding.vreg, index, size, size))
            else:
                size = binding.global_var.type.element_size
                self._emit(ir.LoadSym(old, target.name, index, size, size))
            rhs = self._lower_expr(expr.value)
            dest = self.out.new_vreg()
            self._emit(ir.Bin(_BIN_IR[expr.op], dest, old, rhs))
            value: ir.Operand = dest
        else:
            value = self._lower_expr(expr.value)
        if binding.kind == "array_param":
            size = self._param_elem_size(target.name, target.line)
            assert binding.vreg is not None
            self._emit(ir.StoreIdx(value, binding.vreg, index, size, size))
        else:
            size = binding.global_var.type.element_size
            self._emit(ir.StoreSym(value, target.name, index, size, size))
        return value


def lower_unit(
    unit: ast.TranslationUnit, info: UnitInfo, is_library: bool = False
) -> list[ir.IRFunction]:
    """Lower every function in a checked translation unit."""
    return [FunctionLowerer(fn, info, is_library).lower() for fn in unit.functions]
