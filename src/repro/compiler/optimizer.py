"""IR optimizer: the "-O2 without inlining or unrolling" pass set.

The paper compiled its benchmarks with GCC -O2, explicitly excluding
function inlining and loop unrolling "since these optimizations tend to
increase code size".  We implement the size-neutral scalar cleanups:

* constant folding (32-bit wrapping semantics, C division),
* algebraic simplification (x+0, x*1, x*2^k -> shift, …),
* block-local copy propagation,
* dead-code elimination,
* branch simplification (constant conditions, jumps-to-next).

All passes run to a fixpoint.
"""

from __future__ import annotations

from repro import bitutils
from repro.compiler import ir

_FOLD = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 31),
    "sra": lambda a, b: a >> (b & 31),
}

_CMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


def _fold_bin(op: str, a: int, b: int) -> int | None:
    """Evaluate a binary op on 32-bit signed values; None if undefined."""
    if op in ("div", "mod"):
        if b == 0:
            return None
        value = bitutils.cdiv(a, b) if op == "div" else bitutils.cmod(a, b)
    else:
        value = _FOLD[op](a, b)
    return bitutils.s32(value)


def optimize_function(fn: ir.IRFunction, level: int = 2) -> None:
    """Optimize ``fn`` in place.  ``level`` 0 disables everything."""
    if level <= 0:
        return
    changed = True
    iterations = 0
    while changed and iterations < 20:
        changed = False
        changed |= _fold_constants(fn)
        changed |= _copy_propagate(fn)
        changed |= _simplify_branches(fn)
        changed |= _dead_code(fn)
        iterations += 1


# ---------------------------------------------------------------------------
# Constant folding and algebraic simplification
# ---------------------------------------------------------------------------
def _fold_constants(fn: ir.IRFunction) -> bool:
    changed = False
    out: list[ir.Instr] = []
    for instr in fn.instrs:
        replacement = _fold_one(instr)
        if replacement is not None:
            out.append(replacement)
            changed = True
        else:
            out.append(instr)
    fn.instrs = out
    return changed


def _fold_one(instr: ir.Instr) -> ir.Instr | None:
    if isinstance(instr, ir.Bin):
        a, b = instr.a, instr.b
        if isinstance(a, ir.Imm) and isinstance(b, ir.Imm):
            value = _fold_bin(instr.op, a.value, b.value)
            if value is not None:
                return ir.Copy(instr.dest, ir.Imm(value))
            return None
        return _algebraic(instr)
    if isinstance(instr, ir.Un) and isinstance(instr.a, ir.Imm):
        value = -instr.a.value if instr.op == "neg" else ~instr.a.value
        return ir.Copy(instr.dest, ir.Imm(bitutils.s32(value)))
    if isinstance(instr, ir.CmpSet):
        if isinstance(instr.a, ir.Imm) and isinstance(instr.b, ir.Imm):
            result = _CMP[instr.op](instr.a.value, instr.b.value)
            return ir.Copy(instr.dest, ir.Imm(1 if result else 0))
    return None


def _algebraic(instr: ir.Bin) -> ir.Instr | None:
    a, b, op = instr.a, instr.b, instr.op
    if isinstance(b, ir.Imm):
        v = b.value
        if v == 0 and op in ("add", "sub", "or", "xor", "shl", "sra"):
            return ir.Copy(instr.dest, a)
        if v == 0 and op in ("mul", "and"):
            return ir.Copy(instr.dest, ir.Imm(0))
        if v == 1 and op in ("mul", "div"):
            return ir.Copy(instr.dest, a)
        if v == 1 and op == "mod":
            return ir.Copy(instr.dest, ir.Imm(0))
        if v == -1 and op == "and":
            return ir.Copy(instr.dest, a)
        if op == "mul" and v > 1 and (v & (v - 1)) == 0:
            return ir.Bin("shl", instr.dest, a, ir.Imm(v.bit_length() - 1))
    if isinstance(a, ir.Imm):
        v = a.value
        if v == 0 and op in ("add", "or", "xor"):
            return ir.Copy(instr.dest, b)
        if v == 0 and op in ("mul", "and"):
            return ir.Copy(instr.dest, ir.Imm(0))
        if op == "mul" and v > 1 and (v & (v - 1)) == 0:
            return ir.Bin("shl", instr.dest, b, ir.Imm(v.bit_length() - 1))
        if v == 0 and op == "sub":
            return ir.Un("neg", instr.dest, b)
    return None


# ---------------------------------------------------------------------------
# Copy propagation (block-local)
# ---------------------------------------------------------------------------
def _copy_propagate(fn: ir.IRFunction) -> bool:
    changed = False
    available: dict[ir.VReg, ir.Operand] = {}
    for instr in fn.instrs:
        if isinstance(instr, ir.Label) or instr.is_terminator or isinstance(
            instr, ir.CBr
        ):
            # Conservatively reset at block boundaries; CBr itself may
            # still use the map first.
            pass
        before = tuple(
            getattr(instr, name) for name in getattr(instr, "_use_fields", ())
        )
        mapping = {
            vreg: operand for vreg, operand in available.items() if operand != vreg
        }
        if mapping:
            instr.replace_uses(mapping)
            after = tuple(
                getattr(instr, name) for name in getattr(instr, "_use_fields", ())
            )
            if before != after:
                changed = True
        # Kill facts invalidated by this instruction's defs.
        for dest in instr.defs():
            available.pop(dest, None)
            stale = [k for k, v in available.items() if v == dest]
            for key in stale:
                del available[key]
        # Record new copy facts.
        if isinstance(instr, ir.Copy):
            if isinstance(instr.src, ir.Imm) or instr.src != instr.dest:
                available[instr.dest] = instr.src
        # Block boundary: labels and control transfers clear the map.
        if isinstance(instr, ir.Label) or instr.is_terminator or isinstance(
            instr, (ir.CBr, ir.Call)
        ):
            if not isinstance(instr, ir.Call):
                available.clear()
    return changed


# ---------------------------------------------------------------------------
# Branch simplification
# ---------------------------------------------------------------------------
def _simplify_branches(fn: ir.IRFunction) -> bool:
    changed = False
    out: list[ir.Instr] = []
    for instr in fn.instrs:
        if isinstance(instr, ir.CBr) and isinstance(instr.a, ir.Imm) and isinstance(
            instr.b, ir.Imm
        ):
            taken = _CMP[instr.op](instr.a.value, instr.b.value)
            if taken:
                out.append(ir.Br(instr.target))
            changed = True
            continue
        out.append(instr)
    fn.instrs = out

    # Remove branches to the immediately following label.
    out = []
    for index, instr in enumerate(fn.instrs):
        if isinstance(instr, (ir.Br, ir.CBr)):
            next_label = _next_label(fn.instrs, index + 1)
            if next_label is not None and next_label == instr.target:
                changed = True
                continue
        out.append(instr)
    fn.instrs = out

    # Drop unreachable straight-line code after unconditional terminators.
    out = []
    unreachable = False
    for instr in fn.instrs:
        if isinstance(instr, ir.Label):
            unreachable = False
        if unreachable:
            changed = True
            continue
        out.append(instr)
        if isinstance(instr, (ir.Br, ir.Ret, ir.Switch)) or isinstance(instr, ir.Halt):
            unreachable = True
    fn.instrs = out
    return changed


def _next_label(instrs: list[ir.Instr], start: int) -> str | None:
    for instr in instrs[start:]:
        if isinstance(instr, ir.Label):
            return instr.name
        return None
    return None


# ---------------------------------------------------------------------------
# Dead-code elimination
# ---------------------------------------------------------------------------
def _dead_code(fn: ir.IRFunction) -> bool:
    used: set[ir.VReg] = set()
    for instr in fn.instrs:
        used.update(instr.uses())
    out: list[ir.Instr] = []
    changed = False
    for instr in fn.instrs:
        defs = instr.defs()
        removable = (
            defs
            and not instr.has_side_effects
            and not isinstance(instr, (ir.Call, ir.LoadIdx, ir.LoadSym))
            and all(d not in used for d in defs)
        )
        if removable:
            changed = True
            continue
        out.append(instr)
    fn.instrs = out

    # Remove labels that nothing branches to (keeps codegen tidy).
    referenced: set[str] = set()
    for instr in fn.instrs:
        referenced.update(fn.branch_targets(instr))
    out = []
    for instr in fn.instrs:
        if isinstance(instr, ir.Label) and instr.name not in referenced:
            changed = True
            continue
        out.append(instr)
    fn.instrs = out
    return changed
