"""Recursive-descent parser for MiniC.

Grammar (C-like, pointer-free):

    unit       := (global | function)*
    global     := type ident ('[' num ']')? ('=' initializer)? ';'
    function   := type ident '(' params ')' block
    params     := (type ident ('[' ']')?) (',' ...)* | 'void' | empty
    block      := '{' (declaration | statement)* '}'

Expressions use standard C precedence; ``++``/``--`` are supported in
prefix and postfix positions (desugared to assignments); string
literals may only initialize ``char`` arrays.
"""

from __future__ import annotations

from repro.compiler import ast_nodes as ast
from repro.compiler.lexer import Token, tokenize
from repro.errors import CompileError

# Binary operator precedence, loosest first (ternary/logical handled apart).
_PRECEDENCE: list[tuple[str, ...]] = [
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]

_COMPOUND_OPS = {"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        self._pos += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._cur
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        if not self._check(kind, text):
            want = text or kind
            raise CompileError(
                f"expected {want!r}, found {self._cur.text!r}", self._cur.line
            )
        return self._advance()

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while not self._check("eof"):
            base = self._parse_type_name()
            name = self._expect("ident")
            if self._check("op", "("):
                unit.functions.append(self._parse_function(base, name))
            else:
                unit.globals.append(self._parse_global(base, name))
        return unit

    def _parse_type_name(self) -> str:
        token = self._cur
        if token.kind == "kw" and token.text in ("int", "char", "void"):
            self._advance()
            return token.text
        raise CompileError(f"expected type, found {token.text!r}", token.line)

    def _parse_global(self, base: str, name: Token) -> ast.GlobalVar:
        if base == "void":
            raise CompileError("void variable", name.line)
        array_size: int | None = None
        if self._accept("op", "["):
            size_tok = self._expect("num")
            assert size_tok.value is not None
            array_size = size_tok.value
            if array_size <= 0:
                raise CompileError("array size must be positive", size_tok.line)
            self._expect("op", "]")
        elif base == "char":
            raise CompileError("char variables must be arrays", name.line)
        init: list[int] | None = None
        if self._accept("op", "="):
            init = self._parse_initializer(base, array_size, name.line)
        self._expect("op", ";")
        var_type = ast.Type(base, is_array=array_size is not None)
        return ast.GlobalVar(name.text, var_type, array_size, init, name.line)

    def _parse_initializer(
        self, base: str, array_size: int | None, line: int
    ) -> list[int]:
        if self._check("string"):
            token = self._advance()
            if base != "char" or array_size is None:
                raise CompileError("string initializer needs a char array", line)
            values = [ord(c) & 0xFF for c in token.text] + [0]
            if len(values) > array_size:
                raise CompileError("string longer than array", line)
            return values
        if self._accept("op", "{"):
            values = []
            while not self._check("op", "}"):
                values.append(self._parse_const_expr())
                if not self._accept("op", ","):
                    break
            self._expect("op", "}")
            if array_size is None:
                raise CompileError("brace initializer needs an array", line)
            if len(values) > array_size:
                raise CompileError("too many initializer values", line)
            return values
        if array_size is not None:
            raise CompileError("array initializer must be braced or a string", line)
        return [self._parse_const_expr()]

    def _parse_const_expr(self) -> int:
        negative = bool(self._accept("op", "-"))
        token = self._expect("num")
        assert token.value is not None
        return -token.value if negative else token.value

    def _parse_function(self, base: str, name: Token) -> ast.Function:
        self._expect("op", "(")
        params: list[ast.Param] = []
        if self._accept("kw", "void"):
            self._expect("op", ")")
        elif self._accept("op", ")"):
            pass
        else:
            while True:
                p_base = self._parse_type_name()
                if p_base == "void":
                    raise CompileError("void parameter", self._cur.line)
                p_name = self._expect("ident")
                is_array = False
                if self._accept("op", "["):
                    self._expect("op", "]")
                    is_array = True
                if p_base == "char" and not is_array:
                    raise CompileError("char parameters must be arrays", p_name.line)
                params.append(
                    ast.Param(p_name.text, ast.Type(p_base, is_array), p_name.line)
                )
                if not self._accept("op", ","):
                    break
            self._expect("op", ")")
        if len(params) > 8:
            raise CompileError("more than 8 parameters", name.line)
        body = self._parse_block()
        return ast.Function(name.text, ast.Type(base), params, body, name.line)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_block(self) -> ast.Block:
        open_tok = self._expect("op", "{")
        body: list[ast.Stmt] = []
        while not self._check("op", "}"):
            if self._check("eof"):
                raise CompileError("unterminated block", open_tok.line)
            body.append(self._parse_block_item())
        self._expect("op", "}")
        return ast.Block(open_tok.line, body)

    def _parse_block_item(self) -> ast.Stmt:
        if self._check("kw", "int"):
            return self._parse_local_decl()
        return self._parse_statement()

    def _parse_local_decl(self) -> ast.Stmt:
        kw = self._expect("kw", "int")
        name = self._expect("ident")
        init = None
        if self._accept("op", "="):
            init = self._parse_expression()
        decl = ast.LocalDecl(kw.line, name.text, init)
        # `int a = 1, b = 2;` — desugar into a block of declarations.
        extra: list[ast.Stmt] = [decl]
        while self._accept("op", ","):
            name = self._expect("ident")
            init = None
            if self._accept("op", "="):
                init = self._parse_expression()
            extra.append(ast.LocalDecl(name.line, name.text, init))
        self._expect("op", ";")
        if len(extra) == 1:
            return decl
        return ast.Block(kw.line, extra)

    def _parse_statement(self) -> ast.Stmt:
        token = self._cur
        if token.kind == "op" and token.text == "{":
            return self._parse_block()
        if token.kind == "op" and token.text == ";":
            self._advance()
            return ast.Block(token.line, [])
        if token.kind == "kw":
            handler = {
                "if": self._parse_if,
                "while": self._parse_while,
                "do": self._parse_do_while,
                "for": self._parse_for,
                "switch": self._parse_switch,
                "return": self._parse_return,
                "break": self._parse_break,
                "continue": self._parse_continue,
            }.get(token.text)
            if handler is not None:
                return handler()
        expr = self._parse_expression()
        self._expect("op", ";")
        return ast.ExprStmt(token.line, expr)

    def _parse_if(self) -> ast.Stmt:
        kw = self._expect("kw", "if")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        then = self._parse_statement()
        otherwise = None
        if self._accept("kw", "else"):
            otherwise = self._parse_statement()
        return ast.If(kw.line, cond, then, otherwise)

    def _parse_while(self) -> ast.Stmt:
        kw = self._expect("kw", "while")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        body = self._parse_statement()
        return ast.While(kw.line, cond, body)

    def _parse_do_while(self) -> ast.Stmt:
        kw = self._expect("kw", "do")
        body = self._parse_statement()
        self._expect("kw", "while")
        self._expect("op", "(")
        cond = self._parse_expression()
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.DoWhile(kw.line, body, cond)

    def _parse_for(self) -> ast.Stmt:
        kw = self._expect("kw", "for")
        self._expect("op", "(")
        init: ast.Stmt | None = None
        if not self._check("op", ";"):
            if self._check("kw", "int"):
                init = self._parse_local_decl()
                # _parse_local_decl consumed the ';'
            else:
                init = ast.ExprStmt(self._cur.line, self._parse_expression())
                self._expect("op", ";")
        else:
            self._expect("op", ";")
        cond = None
        if not self._check("op", ";"):
            cond = self._parse_expression()
        self._expect("op", ";")
        step = None
        if not self._check("op", ")"):
            step = self._parse_expression()
        self._expect("op", ")")
        body = self._parse_statement()
        return ast.For(kw.line, init, cond, step, body)

    def _parse_switch(self) -> ast.Stmt:
        kw = self._expect("kw", "switch")
        self._expect("op", "(")
        selector = self._parse_expression()
        self._expect("op", ")")
        self._expect("op", "{")
        cases: list[ast.SwitchCase] = []
        default: list[ast.Stmt] | None = None
        current: list[ast.Stmt] | None = None
        while not self._check("op", "}"):
            if self._accept("kw", "case"):
                value = self._parse_const_expr()
                self._expect("op", ":")
                if any(c.value == value for c in cases):
                    raise CompileError(f"duplicate case {value}", kw.line)
                case = ast.SwitchCase(value, [])
                cases.append(case)
                current = case.body
            elif self._accept("kw", "default"):
                self._expect("op", ":")
                if default is not None:
                    raise CompileError("duplicate default", kw.line)
                default = []
                current = default
            else:
                if current is None:
                    raise CompileError("statement before first case", self._cur.line)
                current.append(self._parse_block_item())
        self._expect("op", "}")
        return ast.Switch(kw.line, selector, cases, default)

    def _parse_return(self) -> ast.Stmt:
        kw = self._expect("kw", "return")
        value = None
        if not self._check("op", ";"):
            value = self._parse_expression()
        self._expect("op", ";")
        return ast.Return(kw.line, value)

    def _parse_break(self) -> ast.Stmt:
        kw = self._expect("kw", "break")
        self._expect("op", ";")
        return ast.Break(kw.line)

    def _parse_continue(self) -> ast.Stmt:
        kw = self._expect("kw", "continue")
        self._expect("op", ";")
        return ast.Continue(kw.line)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_conditional()
        token = self._cur
        if token.kind == "op" and (token.text == "=" or token.text in _COMPOUND_OPS):
            self._advance()
            if not isinstance(left, (ast.Var, ast.ArrayRef)):
                raise CompileError("assignment target must be a variable", token.line)
            value = self._parse_assignment()
            op = None if token.text == "=" else token.text[:-1]
            return ast.Assign(token.line, left, value, op)
        return left

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_logical_or()
        if self._check("op", "?"):
            token = self._advance()
            then = self._parse_expression()
            self._expect("op", ":")
            otherwise = self._parse_conditional()
            return ast.Conditional(token.line, cond, then, otherwise)
        return cond

    def _parse_logical_or(self) -> ast.Expr:
        left = self._parse_logical_and()
        while self._check("op", "||"):
            token = self._advance()
            right = self._parse_logical_and()
            left = ast.Logical(token.line, "||", left, right)
        return left

    def _parse_logical_and(self) -> ast.Expr:
        left = self._parse_binary(0)
        while self._check("op", "&&"):
            token = self._advance()
            right = self._parse_binary(0)
            left = ast.Logical(token.line, "&&", left, right)
        return left

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while self._cur.kind == "op" and self._cur.text in _PRECEDENCE[level]:
            token = self._advance()
            right = self._parse_binary(level + 1)
            left = ast.Binary(token.line, token.text, left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._cur
        if token.kind == "op" and token.text in ("-", "~", "!"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(token.line, token.text, operand)
        if token.kind == "op" and token.text == "+":
            self._advance()
            return self._parse_unary()
        if token.kind == "op" and token.text in ("++", "--"):
            self._advance()
            target = self._parse_unary()
            if not isinstance(target, (ast.Var, ast.ArrayRef)):
                raise CompileError("++/-- target must be a variable", token.line)
            op = "+" if token.text == "++" else "-"
            return ast.Assign(token.line, target, ast.Num(token.line, 1), op)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._cur
            if token.kind == "op" and token.text == "[":
                if not isinstance(expr, ast.Var):
                    raise CompileError("only named arrays can be indexed", token.line)
                self._advance()
                index = self._parse_expression()
                self._expect("op", "]")
                expr = ast.ArrayRef(token.line, expr.name, index)
            elif token.kind == "op" and token.text in ("++", "--"):
                # Postfix inc/dec: allowed only where the value is unused
                # (statement context); lowering enforces this.
                self._advance()
                if not isinstance(expr, (ast.Var, ast.ArrayRef)):
                    raise CompileError("++/-- target must be a variable", token.line)
                op = "+" if token.text == "++" else "-"
                expr = ast.Assign(token.line, expr, ast.Num(token.line, 1), op)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._cur
        if token.kind == "num":
            self._advance()
            assert token.value is not None
            return ast.Num(token.line, token.value)
        if token.kind == "ident":
            self._advance()
            if self._check("op", "("):
                self._advance()
                args: list[ast.Expr] = []
                if not self._check("op", ")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self._accept("op", ","):
                            break
                self._expect("op", ")")
                if len(args) > 8:
                    raise CompileError("more than 8 call arguments", token.line)
                return ast.Call(token.line, token.text, args)
            return ast.Var(token.line, token.text)
        if token.kind == "op" and token.text == "(":
            self._advance()
            expr = self._parse_expression()
            self._expect("op", ")")
            return expr
        raise CompileError(f"unexpected token {token.text!r}", token.line)


def parse(source: str) -> ast.TranslationUnit:
    """Parse MiniC source text into a translation unit."""
    return Parser(tokenize(source)).parse_unit()
