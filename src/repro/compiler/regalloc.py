"""Liveness analysis and linear-scan register allocation.

Targets the PowerPC SysV convention the paper's GCC used:

* volatile (caller-saved) allocatable pool: r3–r10,
* non-volatile (callee-saved) pool: r31 down to r14, allocated from
  r31 downward so prologues save a contiguous high register range —
  the same pattern GCC emits, which matters for the prologue/epilogue
  redundancy measured in the paper's Table 3,
* r0, r11, r12 are codegen scratch; r1 is the stack pointer; r2/r13
  are reserved by the ABI and never touched.

Virtual registers whose live interval crosses a call must live in a
non-volatile register (or spill to the frame).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import ir

VOLATILE_POOL: tuple[int, ...] = tuple(range(3, 11))  # r3..r10
NONVOLATILE_POOL: tuple[int, ...] = tuple(range(31, 13, -1))  # r31..r14


@dataclass(frozen=True)
class Loc:
    """Where a vreg lives: a physical register or a frame spill slot."""

    kind: str  # 'reg' | 'stack'
    index: int

    def __repr__(self) -> str:
        return f"r{self.index}" if self.kind == "reg" else f"[slot{self.index}]"


def reg(n: int) -> Loc:
    return Loc("reg", n)


def slot(n: int) -> Loc:
    return Loc("stack", n)


@dataclass
class Allocation:
    """Result of register allocation for one function."""

    location: dict[ir.VReg, Loc] = field(default_factory=dict)
    used_nonvolatile: list[int] = field(default_factory=list)
    num_spill_slots: int = 0
    has_calls: bool = False

    def loc(self, vreg: ir.VReg) -> Loc:
        return self.location[vreg]


@dataclass
class _Interval:
    vreg: ir.VReg
    start: int
    end: int
    crosses_call: bool = False


# ---------------------------------------------------------------------------
# Basic blocks and liveness
# ---------------------------------------------------------------------------
@dataclass
class _Block:
    start: int  # index of first instruction
    end: int  # one past last
    succs: list[int] = field(default_factory=list)
    use: set = field(default_factory=set)
    defs: set = field(default_factory=set)
    live_in: set = field(default_factory=set)
    live_out: set = field(default_factory=set)


def _split_blocks(fn: ir.IRFunction) -> list[_Block]:
    leaders = {0}
    labels = fn.label_indices()
    for i, instr in enumerate(fn.instrs):
        if isinstance(instr, ir.Label):
            leaders.add(i)
        if isinstance(instr, (ir.Br, ir.CBr, ir.Switch, ir.Ret, ir.Halt)):
            leaders.add(i + 1)
    ordered = sorted(l for l in leaders if l < len(fn.instrs))
    blocks = []
    for bi, start in enumerate(ordered):
        end = ordered[bi + 1] if bi + 1 < len(ordered) else len(fn.instrs)
        blocks.append(_Block(start, end))
    index_of_block = {}
    for bi, block in enumerate(blocks):
        for i in range(block.start, block.end):
            index_of_block[i] = bi
    for bi, block in enumerate(blocks):
        if block.start == block.end:
            continue
        last = fn.instrs[block.end - 1]
        for target in fn.branch_targets(last):
            block.succs.append(index_of_block[labels[target]])
        falls_through = not isinstance(last, (ir.Br, ir.Ret, ir.Switch, ir.Halt))
        if falls_through and bi + 1 < len(blocks):
            block.succs.append(bi + 1)
    return blocks


def _compute_liveness(fn: ir.IRFunction, blocks: list[_Block]) -> None:
    for block in blocks:
        seen_defs: set = set()
        for i in range(block.start, block.end):
            instr = fn.instrs[i]
            for use in instr.uses():
                if use not in seen_defs:
                    block.use.add(use)
            for dest in instr.defs():
                seen_defs.add(dest)
        block.defs = seen_defs
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            live_out = set()
            for succ in block.succs:
                live_out |= blocks[succ].live_in
            live_in = block.use | (live_out - block.defs)
            if live_in != block.live_in or live_out != block.live_out:
                block.live_in = live_in
                block.live_out = live_out
                changed = True


def _build_intervals(fn: ir.IRFunction, blocks: list[_Block]) -> list[_Interval]:
    start: dict[ir.VReg, int] = {}
    end: dict[ir.VReg, int] = {}

    def touch(vreg: ir.VReg, pos: int) -> None:
        if vreg not in start:
            start[vreg] = pos
            end[vreg] = pos
        else:
            start[vreg] = min(start[vreg], pos)
            end[vreg] = max(end[vreg], pos)

    # Parameters are defined at position -1 (function entry).
    for pid in range(fn.nparams):
        touch(ir.VReg(pid), -1)
    for i, instr in enumerate(fn.instrs):
        for vreg in instr.uses():
            touch(vreg, i)
        for vreg in instr.defs():
            touch(vreg, i)
    for block in blocks:
        for vreg in block.live_in:
            touch(vreg, block.start)
        for vreg in block.live_out:
            touch(vreg, max(block.start, block.end - 1))

    # Out/OutC templates clobber the argument registers (they marshal
    # into r3 before ``sc``), so they constrain allocation like calls.
    call_positions = [
        i
        for i, instr in enumerate(fn.instrs)
        if isinstance(instr, (ir.Call, ir.Out, ir.OutC))
    ]
    intervals = []
    for vreg in start:
        interval = _Interval(vreg, start[vreg], end[vreg])
        interval.crosses_call = any(
            interval.start < pos < interval.end for pos in call_positions
        )
        intervals.append(interval)
    intervals.sort(key=lambda iv: (iv.start, iv.end, iv.vreg.id))
    return intervals


# ---------------------------------------------------------------------------
# Linear scan
# ---------------------------------------------------------------------------
def allocate(fn: ir.IRFunction) -> Allocation:
    """Run liveness + linear scan, returning vreg locations."""
    blocks = _split_blocks(fn)
    _compute_liveness(fn, blocks)
    intervals = _build_intervals(fn, blocks)

    allocation = Allocation()
    allocation.has_calls = any(
        isinstance(instr, ir.Call) for instr in fn.instrs
    )

    free_volatile = list(VOLATILE_POOL)
    free_nonvolatile = list(NONVOLATILE_POOL)
    active: list[tuple[_Interval, Loc]] = []
    next_slot = 0

    def expire(position: int) -> None:
        nonlocal active
        keep = []
        for interval, location in active:
            if interval.end < position:
                if location.kind == "reg":
                    if location.index in VOLATILE_POOL:
                        free_volatile.append(location.index)
                        free_volatile.sort()
                    else:
                        free_nonvolatile.append(location.index)
                        free_nonvolatile.sort(reverse=True)
            else:
                keep.append((interval, location))
        active = keep

    for interval in intervals:
        expire(interval.start)
        location = _take_register(interval, free_volatile, free_nonvolatile)
        if location is None:
            location = slot(next_slot)
            next_slot += 1
        if location.kind == "reg" and location.index in NONVOLATILE_POOL:
            if location.index not in allocation.used_nonvolatile:
                allocation.used_nonvolatile.append(location.index)
        allocation.location[interval.vreg] = location
        if location.kind == "reg":
            active.append((interval, location))

    allocation.num_spill_slots = next_slot
    allocation.used_nonvolatile.sort(reverse=True)
    return allocation


def _take_register(
    interval: _Interval, free_volatile: list[int], free_nonvolatile: list[int]
) -> Loc | None:
    if interval.crosses_call:
        if free_nonvolatile:
            return reg(free_nonvolatile.pop(0))
        return None
    if free_volatile:
        return reg(free_volatile.pop(0))
    if free_nonvolatile:
        return reg(free_nonvolatile.pop(0))
    return None
