"""The statically linked MiniC runtime library.

The paper's benchmarks were linked statically "so that the libraries
are included in the results"; every program we produce likewise links
this library.  Most of it is ordinary MiniC compiled through the same
pipeline as user code (so its instructions share the same SDTS
templates); ``_start`` alone is hand-written.

Syscall ABI (the ``sc`` instruction, dispatched on r0):

====  ==========  ===========================================
r0    name        effect
====  ==========  ===========================================
0     exit        stop the machine (r3 = exit code)
1     put_int     append the signed integer in r3 to output
2     put_char    append the character in r3 to output
====  ==========  ===========================================
"""

from __future__ import annotations

from repro.linker.objfile import AsmOp, FunctionUnit, InsnRole

RUNTIME_SOURCE = """
// --- repro runtime library (MiniC) ---------------------------------
int __lib_seed;

int abs(int x) {
    if (x < 0) { return -x; }
    return x;
}

int min(int a, int b) {
    if (a < b) { return a; }
    return b;
}

int max(int a, int b) {
    if (a > b) { return a; }
    return b;
}

int clamp(int x, int lo, int hi) {
    if (x < lo) { return lo; }
    if (x > hi) { return hi; }
    return x;
}

int gcd(int a, int b) {
    while (b != 0) {
        int t = a % b;
        a = b;
        b = t;
    }
    return a;
}

int ipow(int base, int exponent) {
    int result = 1;
    while (exponent > 0) {
        if (exponent & 1) { result = result * base; }
        base = base * base;
        exponent = exponent >> 1;
    }
    return result;
}

int ilog2(int x) {
    int n = 0;
    while (x > 1) {
        x = x >> 1;
        n = n + 1;
    }
    return n;
}

int popcount(int x) {
    int n = 0;
    int i;
    for (i = 0; i < 32; i = i + 1) {
        n = n + (x & 1);
        x = (x >> 1) & 0x7fffffff;
    }
    return n;
}

void srand(int s) {
    __lib_seed = s;
}

int rand() {
    __lib_seed = __lib_seed * 1103515245 + 12345;
    return (__lib_seed >> 16) & 32767;
}

void print_char(int c) {
    __outc(c);
}

void print_nl() {
    __outc(10);
}

void print_int(int x) {
    if (x < 0) {
        __outc(45);
        x = -x;
    }
    if (x >= 10) {
        print_int(x / 10);
    }
    __outc(48 + x % 10);
}

void print_str(char s[]) {
    int i = 0;
    while (s[i] != 0) {
        __outc(s[i]);
        i = i + 1;
    }
}

int strlen_c(char s[]) {
    int i = 0;
    while (s[i] != 0) {
        i = i + 1;
    }
    return i;
}

void memset_i(int a[], int n, int value) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        a[i] = value;
    }
}

void memcpy_i(int dst[], int src[], int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        dst[i] = src[i];
    }
}

int sum_i(int a[], int n) {
    int total = 0;
    int i;
    for (i = 0; i < n; i = i + 1) {
        total = total + a[i];
    }
    return total;
}

int index_of(int a[], int n, int value) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        if (a[i] == value) { return i; }
    }
    return -1;
}

void sort_i(int a[], int n) {
    int i;
    for (i = 1; i < n; i = i + 1) {
        int key = a[i];
        int j = i - 1;
        while (j >= 0 && a[j] > key) {
            a[j + 1] = a[j];
            j = j - 1;
        }
        a[j + 1] = key;
    }
}
"""

# Names defined by RUNTIME_SOURCE, used to flag library functions.
RUNTIME_FUNCTIONS = frozenset(
    {
        "abs",
        "min",
        "max",
        "clamp",
        "gcd",
        "ipow",
        "ilog2",
        "popcount",
        "srand",
        "rand",
        "print_char",
        "print_nl",
        "print_int",
        "print_str",
        "strlen_c",
        "memset_i",
        "memcpy_i",
        "sum_i",
        "index_of",
        "sort_i",
    }
)


def make_start() -> FunctionUnit:
    """Hand-written ``_start``: call main, then exit(r3)."""
    unit = FunctionUnit("_start", is_library=True)
    unit.add(AsmOp("bl", (0,), target="main", role=InsnRole.BODY))
    unit.add(AsmOp("addi", (0, 0, 0), role=InsnRole.BODY))  # li r0,0: exit
    unit.add(AsmOp("sc", (), role=InsnRole.BODY))
    return unit
