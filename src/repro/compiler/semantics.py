"""Semantic analysis for MiniC.

Validates the translation unit before lowering: symbol resolution,
arity/array-ness of calls, assignment targets, ``break``/``continue``
placement, and the pointer-free discipline (array values may only be
indexed or passed to array parameters).

Builtins (compiler intrinsics, lowered to syscalls):

* ``__out(x)``   — emit the integer ``x`` to the output channel
* ``__outc(c)``  — emit one character
* ``__halt()``   — stop the machine
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import ast_nodes as ast
from repro.errors import CompileError

BUILTINS: dict[str, tuple[ast.Type, tuple[ast.Type, ...]]] = {
    "__out": (ast.VOID, (ast.INT,)),
    "__outc": (ast.VOID, (ast.INT,)),
    "__halt": (ast.VOID, ()),
}


@dataclass(frozen=True)
class FunctionSig:
    name: str
    return_type: ast.Type
    param_types: tuple[ast.Type, ...]


@dataclass
class UnitInfo:
    """Resolved unit-level symbols handed to lowering."""

    globals: dict[str, ast.GlobalVar]
    functions: dict[str, FunctionSig]


class _Scope:
    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.names: dict[str, ast.Type] = {}

    def declare(self, name: str, type_: ast.Type, line: int) -> None:
        if name in self.names:
            raise CompileError(f"redefinition of {name!r}", line)
        self.names[name] = type_

    def lookup(self, name: str) -> ast.Type | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class Checker:
    """Validates one translation unit."""

    def __init__(self, unit: ast.TranslationUnit) -> None:
        self.unit = unit
        self.globals: dict[str, ast.GlobalVar] = {}
        self.functions: dict[str, FunctionSig] = {}
        self._loop_depth = 0
        self._switch_depth = 0
        self._current: ast.Function | None = None

    def check(self) -> UnitInfo:
        for var in self.unit.globals:
            if var.name in self.globals or var.name in BUILTINS:
                raise CompileError(f"redefinition of {var.name!r}", var.line)
            self.globals[var.name] = var
        for fn in self.unit.functions:
            if fn.name in self.functions or fn.name in self.globals or fn.name in BUILTINS:
                raise CompileError(f"redefinition of {fn.name!r}", fn.line)
            self.functions[fn.name] = FunctionSig(
                fn.name, fn.return_type, tuple(p.type for p in fn.params)
            )
        for fn in self.unit.functions:
            self._check_function(fn)
        return UnitInfo(self.globals, self.functions)

    # ------------------------------------------------------------------
    def _check_function(self, fn: ast.Function) -> None:
        self._current = fn
        scope = _Scope()
        for param in fn.params:
            scope.declare(param.name, param.type, param.line)
        self._check_block(fn.body, _Scope(scope))
        self._current = None

    def _check_block(self, block: ast.Block, scope: _Scope) -> None:
        for stmt in block.body:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, _Scope(scope))
        elif isinstance(stmt, ast.LocalDecl):
            if stmt.init is not None:
                self._check_value(stmt.init, scope)
            scope.declare(stmt.name, ast.INT, stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            self._check_expr(stmt.expr, scope, value_needed=False)
        elif isinstance(stmt, ast.If):
            self._check_value(stmt.cond, scope)
            assert stmt.then is not None
            self._check_stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, ast.While):
            self._check_value(stmt.cond, scope)
            self._loop_depth += 1
            assert stmt.body is not None
            self._check_stmt(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self._loop_depth += 1
            assert stmt.body is not None
            self._check_stmt(stmt.body, scope)
            self._loop_depth -= 1
            self._check_value(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_value(stmt.cond, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner, value_needed=False)
            self._loop_depth += 1
            assert stmt.body is not None
            self._check_stmt(stmt.body, inner)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.Switch):
            self._check_value(stmt.selector, scope)
            self._switch_depth += 1
            for case in stmt.cases:
                for inner_stmt in case.body:
                    self._check_stmt(inner_stmt, _Scope(scope))
            if stmt.default is not None:
                for inner_stmt in stmt.default:
                    self._check_stmt(inner_stmt, _Scope(scope))
            self._switch_depth -= 1
        elif isinstance(stmt, ast.Return):
            assert self._current is not None
            returns_value = self._current.return_type.base != "void"
            if returns_value and stmt.value is None:
                raise CompileError(
                    f"{self._current.name}: return needs a value", stmt.line
                )
            if not returns_value and stmt.value is not None:
                raise CompileError(
                    f"{self._current.name}: void function returns a value", stmt.line
                )
            if stmt.value is not None:
                self._check_value(stmt.value, scope)
        elif isinstance(stmt, ast.Break):
            if not self._loop_depth and not self._switch_depth:
                raise CompileError("break outside loop or switch", stmt.line)
        elif isinstance(stmt, ast.Continue):
            if not self._loop_depth:
                raise CompileError("continue outside loop", stmt.line)
        else:  # pragma: no cover - parser produces a closed set
            raise CompileError(f"unknown statement {type(stmt).__name__}", stmt.line)

    # ------------------------------------------------------------------
    def _check_value(self, expr: ast.Expr, scope: _Scope) -> None:
        """Check an expression whose (scalar) value is used."""
        type_ = self._check_expr(expr, scope, value_needed=True)
        if type_.is_array:
            raise CompileError("array used where a value is required", expr.line)

    def _check_expr(
        self, expr: ast.Expr, scope: _Scope, value_needed: bool
    ) -> ast.Type:
        if isinstance(expr, ast.Num):
            return ast.INT
        if isinstance(expr, ast.Var):
            type_ = self._lookup_var(expr.name, scope, expr.line)
            return type_
        if isinstance(expr, ast.ArrayRef):
            type_ = self._lookup_var(expr.name, scope, expr.line)
            if not type_.is_array:
                raise CompileError(f"{expr.name!r} is not an array", expr.line)
            assert expr.index is not None
            self._check_value(expr.index, scope)
            return ast.INT
        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope)
        if isinstance(expr, ast.Binary):
            assert expr.left is not None and expr.right is not None
            self._check_value(expr.left, scope)
            self._check_value(expr.right, scope)
            return ast.INT
        if isinstance(expr, ast.Unary):
            assert expr.operand is not None
            self._check_value(expr.operand, scope)
            return ast.INT
        if isinstance(expr, ast.Logical):
            assert expr.left is not None and expr.right is not None
            self._check_value(expr.left, scope)
            self._check_value(expr.right, scope)
            return ast.INT
        if isinstance(expr, ast.Conditional):
            assert expr.cond is not None
            self._check_value(expr.cond, scope)
            assert expr.then is not None and expr.otherwise is not None
            self._check_value(expr.then, scope)
            self._check_value(expr.otherwise, scope)
            return ast.INT
        if isinstance(expr, ast.Assign):
            assert expr.target is not None and expr.value is not None
            target_type = self._check_expr(expr.target, scope, value_needed=True)
            if isinstance(expr.target, ast.Var) and target_type.is_array:
                raise CompileError("cannot assign to an array variable", expr.line)
            self._check_value(expr.value, scope)
            return ast.INT
        raise CompileError(f"unknown expression {type(expr).__name__}", expr.line)

    def _check_call(self, call: ast.Call, scope: _Scope) -> ast.Type:
        if call.name in BUILTINS:
            ret, param_types = BUILTINS[call.name]
        elif call.name in self.functions:
            sig = self.functions[call.name]
            ret, param_types = sig.return_type, sig.param_types
        else:
            raise CompileError(f"call to undefined function {call.name!r}", call.line)
        if len(call.args) != len(param_types):
            raise CompileError(
                f"{call.name} expects {len(param_types)} arguments, "
                f"got {len(call.args)}",
                call.line,
            )
        for arg, want in zip(call.args, param_types):
            if want.is_array:
                if not isinstance(arg, ast.Var):
                    raise CompileError(
                        f"{call.name}: array argument must be an array name", call.line
                    )
                got = self._lookup_var(arg.name, scope, arg.line)
                if not got.is_array or got.base != want.base:
                    raise CompileError(
                        f"{call.name}: argument {arg.name!r} is not a "
                        f"{want.base} array",
                        call.line,
                    )
            else:
                self._check_value(arg, scope)
        return ret

    def _lookup_var(self, name: str, scope: _Scope, line: int) -> ast.Type:
        local = scope.lookup(name)
        if local is not None:
            return local
        if name in self.globals:
            var = self.globals[name]
            return var.type
        raise CompileError(f"use of undeclared variable {name!r}", line)


def check(unit: ast.TranslationUnit) -> UnitInfo:
    """Validate a translation unit, returning resolved unit symbols."""
    return Checker(unit).check()
