"""The paper's contribution: post-compilation dictionary compression.

Pipeline (paper section 3.1):

1. :mod:`basic_blocks` — segment .text at branch targets and branches.
2. :mod:`candidates` — enumerate repeated instruction sequences that
   are legal dictionary entries (within one basic block, no
   PC-relative branches, branch targets only at sequence starts).
3. :mod:`greedy` — the greedy dictionary builder: repeatedly pick the
   candidate with the largest immediate byte savings.
4. :mod:`encodings` — codeword spaces: the 2-byte baseline built from
   PowerPC's illegal opcodes, the 1-byte small-dictionary scheme, and
   the nibble-aligned variable-length scheme of Figure 10.
5. :mod:`replace` / :mod:`branch_patch` — build the token stream, lay
   it out at codeword granularity, re-patch every relative branch and
   jump-table slot, relaxing branches whose offsets no longer reach.
6. :mod:`compressor` — the orchestrator; :mod:`stats` — size
   accounting for the paper's figures.
"""

from repro.core.compressor import CompressedProgram, Compressor, compress
from repro.core.dictionary import Dictionary, DictionaryEntry
from repro.core.encodings import (
    BaselineEncoding,
    CustomNibbleEncoding,
    Encoding,
    NibbleEncoding,
    OneByteEncoding,
    make_encoding,
)
from repro.core.image import (
    CompressedImage,
    ImageCapacityError,
    ImageChecksumError,
    ImageEncodingError,
    ImageError,
    ImageFormatError,
)
from repro.core.profile import encoding_redundancy
from repro.core.stats import CompressionStats, collect_stats

__all__ = [
    "CompressedProgram",
    "Compressor",
    "compress",
    "Dictionary",
    "DictionaryEntry",
    "BaselineEncoding",
    "CustomNibbleEncoding",
    "Encoding",
    "NibbleEncoding",
    "OneByteEncoding",
    "make_encoding",
    "CompressedImage",
    "ImageCapacityError",
    "ImageChecksumError",
    "ImageEncodingError",
    "ImageError",
    "ImageFormatError",
    "encoding_redundancy",
    "CompressionStats",
    "collect_stats",
]
