"""Dictionary content analysis.

The paper discusses *which* code ends up in dictionaries (single
instructions dominate, address formation and prologue/epilogue
sequences recur).  This module classifies dictionary entries by the
kind of work their instructions do, so the ``ext_dict_content``
experiment can show what the compressor actually learned about a
program.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.dictionary import Dictionary
from repro.isa.instruction import decode

# Instruction classes, checked in order.
_CLASS_OF_MNEMONIC = {
    "lwz": "memory", "lwzu": "memory", "lbz": "memory", "lbzu": "memory",
    "lhz": "memory", "lha": "memory", "stw": "memory", "stwu": "memory",
    "stb": "memory", "stbu": "memory", "sth": "memory",
    "b": "branch", "bl": "branch", "bc": "branch", "bcl": "branch",
    "bclr": "return", "bcctr": "branch", "bcctrl": "branch", "sc": "system",
    "cmpwi": "compare", "cmplwi": "compare", "cmpw": "compare",
    "cmplw": "compare",
    "mfspr": "system", "mtspr": "system",
}


def classify_instruction(word: int) -> str:
    """One of: address, move, constant, memory, compare, branch,
    return, system, alu."""
    ins = decode(word)
    name = ins.mnemonic
    if name in _CLASS_OF_MNEMONIC:
        return _CLASS_OF_MNEMONIC[name]
    if name == "addis":
        # lis: high half of an address or constant.
        return "address" if ins.operand("rA") == 0 else "alu"
    if name == "addi":
        if ins.operand("rA") == 0:
            return "constant"  # li
        return "alu"
    if name == "or" and ins.operand("rS") == ins.operand("rB"):
        return "move"  # mr
    if name == "ori" and ins.values == (0, 0, 0):
        return "move"  # nop
    return "alu"


@dataclass(frozen=True)
class EntryClassification:
    """What one dictionary entry consists of."""

    words: tuple[int, ...]
    uses: int
    classes: tuple[str, ...]

    @property
    def dominant_class(self) -> str:
        counts = Counter(self.classes)
        # Address formation usually pairs with an alu add; call the
        # entry "address" when any address-class instruction appears.
        if "address" in counts:
            return "address"
        return counts.most_common(1)[0][0]


@dataclass(frozen=True)
class DictionaryContentReport:
    """Aggregate content mix of one dictionary."""

    name: str
    entries: tuple[EntryClassification, ...]

    def class_mix_by_savings(self) -> dict[str, float]:
        """Fraction of total (uses x length) attributable to each class."""
        weights: Counter[str] = Counter()
        total = 0
        for entry in self.entries:
            weight = entry.uses * len(entry.words)
            weights[entry.dominant_class] += weight
            total += weight
        if not total:
            return {}
        return {cls: count / total for cls, count in weights.items()}

    def top_entries(self, count: int = 10) -> list[EntryClassification]:
        return sorted(self.entries, key=lambda e: -e.uses)[:count]


def analyze_dictionary(name: str, dictionary: Dictionary) -> DictionaryContentReport:
    """Classify every entry of ``dictionary``."""
    entries = tuple(
        EntryClassification(
            words=entry.words,
            uses=entry.uses,
            classes=tuple(classify_instruction(word) for word in entry.words),
        )
        for entry in dictionary.entries
    )
    return DictionaryContentReport(name=name, entries=entries)
