"""Basic-block segmentation of a linked program.

A leader is: the entry point, any branch target (including jump-table
targets), any function start, and any instruction following a branch.
Dictionary entries must lie entirely within one basic block (paper
section 3.1.1), which also guarantees no branch lands *inside* an
encoded sequence (section 3.2 restriction).
"""

from __future__ import annotations

from repro.linker.program import Program


def leader_flags(program: Program) -> list[bool]:
    """``flags[i]`` is True when instruction ``i`` starts a basic block.

    Cached on the program (see ``Program._analysis_cache``): block
    structure is a pure function of the immutable text section, and
    experiment sweeps ask for it once per encoding configuration.
    """
    cached = program._analysis_cache.get("leader_flags")
    if cached is not None:
        return cached
    n = len(program.text)
    flags = [False] * n
    if n == 0:
        program._analysis_cache["leader_flags"] = flags
        return flags
    flags[0] = True
    flags[program.entry_index] = True
    for target in program.branch_target_indices():
        flags[target] = True
    previous_function = None
    for index, ti in enumerate(program.text):
        if ti.function != previous_function:
            flags[index] = True
            previous_function = ti.function
        if ti.instruction.spec.is_branch and index + 1 < n:
            flags[index + 1] = True
    program._analysis_cache["leader_flags"] = flags
    return flags


def block_ranges(program: Program) -> list[tuple[int, int]]:
    """Half-open [start, end) index ranges of the basic blocks."""
    cached = program._analysis_cache.get("block_ranges")
    if cached is not None:
        return cached
    flags = leader_flags(program)
    ranges = []
    start = 0
    for index in range(1, len(flags)):
        if flags[index]:
            ranges.append((start, index))
            start = index
    if flags:
        ranges.append((start, len(flags)))
    program._analysis_cache["block_ranges"] = ranges
    return ranges


def block_id_map(program: Program) -> list[int]:
    """``block_of[i]`` = id of the basic block containing instruction i
    (cached per program, like :func:`leader_flags`)."""
    cached = program._analysis_cache.get("block_id_map")
    if cached is not None:
        return cached
    block_of = [0] * len(program.text)
    for block_id, (start, end) in enumerate(block_ranges(program)):
        for index in range(start, end):
            block_of[index] = block_id
    program._analysis_cache["block_id_map"] = block_of
    return block_of
