"""Branch patching at codeword granularity (paper section 3.2).

Compression moves every instruction, so all PC-relative branch offsets
must be rewritten.  The paper's scheme (section 3.2.2): the processor
treats branch offsets as scaled to the *minimum codeword size* (16
bits for the baseline encoding, 4 bits for the nibble scheme), which
shrinks each branch's reach; branches that can no longer span their
distance are rewritten through a longer sequence.

We implement the rewrite as classic branch relaxation — the
conditional branch inverts over an unconditional ``b`` whose 24-bit
field always reaches — which has the same size cost as the paper's
jump-table fallback and keeps the stream self-contained.  A fixpoint
loop re-lays-out after each relaxation round.

This module also computes the paper's Table 1: how many branches lack
the spare offset bits for 2-byte / 1-byte / 4-bit target resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import bitutils
from repro.core.encodings import Encoding
from repro.core.replace import Token
from repro.errors import BranchRangeError
from repro.isa.fields import OperandKind
from repro.isa.instruction import Instruction
from repro.isa.opcodes import spec_for
from repro.linker.program import Program

_B_SPEC = spec_for("b")

# BO-field inversion for branch relaxation.
_INVERT_BO = {12: 4, 4: 12, 8: 0, 0: 8, 16: 18, 18: 16}


def _target_field_width(instruction: Instruction) -> int:
    for operand in instruction.spec.operands:
        if operand.kind is OperandKind.REL_TARGET:
            return operand.field.width
    raise BranchRangeError(f"{instruction.mnemonic} has no branch offset field")


def layout(tokens: list[Token], encoding: Encoding) -> dict[int, int]:
    """Assign unit addresses; return original-index -> unit address.

    Only the *first* original index of each token is addressable —
    branches may target codewords but never the middle of an encoded
    sequence (paper section 3.1.1).
    """
    index_to_unit: dict[int, int] = {}
    address = 0
    for token in tokens:
        token.address = address
        if token.kind == "cw":
            assert token.rank is not None
            token.size_units = encoding.codeword_units(token.rank)
        else:
            token.size_units = encoding.instruction_units()
        if token.orig_index is not None:
            index_to_unit[token.orig_index] = address
        address += token.size_units
    return index_to_unit


def _resolve_target_units(
    token: Token, tokens: list[Token], index_to_unit: dict[int, int]
) -> int:
    if token.token_target is not None:
        if token.token_target == len(tokens):
            # Relaxing the final token leaves the skip pointing one past
            # the stream's end — the fall-through address after the last
            # item.
            last = tokens[-1]
            return last.address + last.size_units
        return tokens[token.token_target].address
    assert token.target_index is not None
    if token.target_index not in index_to_unit:
        raise BranchRangeError(
            f"branch target (instruction {token.target_index}) is inside "
            "an encoded sequence"
        )
    return index_to_unit[token.target_index]


def _relax(tokens: list[Token], position: int) -> list[Token]:
    """Split an out-of-range conditional branch into bc-inverted + b."""
    token = tokens[position]
    assert token.instruction is not None
    if token.instruction.mnemonic not in ("bc", "bcl"):
        raise BranchRangeError(
            f"{token.instruction.mnemonic} at token {position} cannot be "
            "relaxed and its offset does not fit"
        )
    bo = token.instruction.operand("BO")
    if bo not in _INVERT_BO:
        raise BranchRangeError(f"cannot invert BO={bo} for relaxation")
    # Shift existing token-level targets past the insertion point first,
    # then insert with targets expressed in the new coordinates.
    for existing in tokens:
        if existing.token_target is not None and existing.token_target > position:
            existing.token_target += 1
    inverted = token.instruction.replace_operand("BO", _INVERT_BO[bo])
    skip = Token(
        kind="ins",
        instruction=inverted,
        orig_index=token.orig_index,
        token_target=position + 2,  # token right after the new 'b'
    )
    unconditional = Token(
        kind="ins",
        instruction=Instruction(_B_SPEC, (0,)),
        target_index=token.target_index,
    )
    return tokens[:position] + [skip, unconditional] + tokens[position + 1 :]


def patch_branches(
    tokens: list[Token], encoding: Encoding, max_rounds: int = 1000
) -> tuple[list[Token], dict[int, int], int]:
    """Lay out, patch offsets, relax as needed; returns the final
    (tokens, index_to_unit, relaxations) triple.

    On return every branch token's ``instruction`` holds its final
    unit-scaled offset.
    """
    relaxations = 0
    for _ in range(max_rounds):
        index_to_unit = layout(tokens, encoding)
        overflow_at: int | None = None
        for position, token in enumerate(tokens):
            if not token.is_branch_token:
                continue
            assert token.instruction is not None
            offset = (
                _resolve_target_units(token, tokens, index_to_unit) - token.address
            )
            if not bitutils.fits_signed(offset, _target_field_width(token.instruction)):
                overflow_at = position
                break
        if overflow_at is None:
            for token in tokens:
                if token.is_branch_token:
                    assert token.instruction is not None
                    offset = (
                        _resolve_target_units(token, tokens, index_to_unit)
                        - token.address
                    )
                    token.instruction = token.instruction.replace_operand(
                        "target", offset
                    )
            return tokens, index_to_unit, relaxations
        tokens = _relax(tokens, overflow_at)
        relaxations += 1
    raise BranchRangeError(f"branch relaxation did not converge in {max_rounds} rounds")


def patch_jump_tables(
    program: Program, index_to_unit: dict[int, int]
) -> bytearray:
    """Rewrite .data jump-table slots with compressed-space addresses.

    Compressed code addresses are ``text_base + unit_index`` (the
    paper's modified control unit counts in minimum-codeword units).
    """
    image = bytearray(program.data_image)
    for slot in program.jump_table_slots:
        if slot.target_index not in index_to_unit:
            raise BranchRangeError(
                f"jump table slot targets instruction {slot.target_index} "
                "inside an encoded sequence"
            )
        address = program.text_base + index_to_unit[slot.target_index]
        image[slot.data_offset : slot.data_offset + 4] = address.to_bytes(4, "big")
    return image


# ---------------------------------------------------------------------------
# Paper Table 1: branch offset field slack
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OffsetUsageRow:
    """One benchmark's row of the paper's Table 1."""

    name: str
    static_branches: int
    too_narrow_2byte: int
    too_narrow_1byte: int
    too_narrow_4bit: int

    def percent(self, count: int) -> float:
        return 100.0 * count / self.static_branches if self.static_branches else 0.0


def offset_usage(program: Program) -> OffsetUsageRow:
    """How many PC-relative branches lack spare offset bits when the
    offset is rescaled from 4-byte to 2-byte / 1-byte / 4-bit units."""
    total = 0
    narrow = {2: 0, 4: 0, 8: 0}  # scale factor -> count
    for index, ti in enumerate(program.text):
        if not ti.is_relative_branch:
            continue
        total += 1
        width = _target_field_width(ti.instruction)
        offset_words = ti.instruction.operand("target")
        for scale in (2, 4, 8):
            if not bitutils.fits_signed(offset_words * scale, width):
                narrow[scale] += 1
    return OffsetUsageRow(
        name=program.name,
        static_branches=total,
        too_narrow_2byte=narrow[2],
        too_narrow_1byte=narrow[4],
        too_narrow_4bit=narrow[8],
    )
