"""Candidate sequence enumeration (paper section 3.1.1).

A candidate dictionary entry is a run of instructions that

* lies entirely within one basic block,
* contains no PC-relative branch (those must stay patchable), and
* is no longer than ``max_entry_len`` instructions.

Branch targets are always basic-block leaders, so an occurrence can
only *start* at a branch target — branches into the middle of encoded
sequences cannot arise (section 3.2 restriction).

Two enumerators exist:

* :func:`enumerate_candidates_reference` — the original O(n·L)
  walk that materializes one words-tuple per (position, length) pair.
  It stays as the oracle for the fast path's golden-equivalence tests.
* :func:`enumerate_candidates` — the production path, backed by an
  interned :class:`CandidateStore`: sequences get small integer ids
  (sids) and are grown level by level, one instruction at a time, so a
  length-``L`` sequence is interned as ``(parent sid, next word)``
  instead of re-hashing an ``L``-tuple at every occurrence.  Only
  sequences with >= 2 occurrences are extended (a prefix that occurs
  once cannot have a repeated extension), which prunes the huge tail of
  unique sequences before their tuples ever exist.  Occurrence lists
  are kept as compact ``array('i')`` position arrays.

The store is cached on the program (``Program._analysis_cache``), so
experiment sweeps that compress the same program under many encodings
pay enumeration once.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

from repro import observe
from repro.core.basic_blocks import block_id_map
from repro.linker.program import Program


@dataclass
class Candidate:
    """A repeated sequence and every position where it occurs."""

    words: tuple[int, ...]
    positions: list[int] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.words)


def compressible_flags(program: Program) -> list[bool]:
    """True for instructions allowed inside dictionary entries."""
    return [not ti.is_relative_branch for ti in program.text]


# Byte-level equivalent of ``compressible_flags``: the PC-relative
# branches (b/bl primary opcode 18, bc/bcl primary opcode 16) are the
# only excluded instructions, and the primary opcode is the top 6 bits
# of the word — i.e. bits 7..2 of the first big-endian byte.  Mapping
# the first byte of each word through this table yields the flags at
# memchr speed instead of a Python attribute walk per instruction.
_ALLOWED_TABLE = bytes(0 if (byte >> 2) in (16, 18) else 1 for byte in range(256))


class CandidateStore:
    """Interned index of every repeated candidate sequence.

    Parallel per-sid arrays:

    * ``seq_words[sid]`` — the words tuple (built once, at interning);
    * ``occ[sid]`` — sorted start positions, as a compact ``array('i')``;
    * ``lengths[sid]`` — sequence length in instructions.

    sids are assigned level-major (all length-1 sequences first, then
    length-2, ...), and within one level in first-occurrence order.

    ``lex_rank[sid]`` is the sid's rank under lexicographic words-tuple
    order.  Sequences are unique, so the map is a strictly
    order-preserving bijection: comparing two lex_ranks is equivalent
    to comparing the words tuples themselves, which lets the greedy
    heap tie-break on a single int.
    """

    __slots__ = ("n", "max_entry_len", "seq_words", "occ", "lengths", "lex_rank")

    def __init__(self, program: Program, max_entry_len: int = 4) -> None:
        words = program.words()
        n = len(words)
        self.n = n
        self.max_entry_len = max_entry_len
        blocks = block_id_map(program)
        flags = program.text_bytes()[0::4].translate(_ALLOWED_TABLE)

        # run[i]: length of the maximal candidate-eligible run starting
        # at i (same block, no relative branch), computed right-to-left.
        run = [0] * n
        next_run = 0
        next_block = -1
        for i in range(n - 1, -1, -1):
            if flags[i]:
                block = blocks[i]
                length = next_run + 1 if block == next_block and next_run else 1
                run[i] = length
                next_run = length
                next_block = block
            else:
                next_run = 0
                next_block = -1

        seq_words: list[tuple[int, ...]] = []
        occ: list[list[int]] = []
        lengths: list[int] = []

        # Level 1: group eligible positions by word.
        groups: dict[int, list[int]] = {}
        for i in range(n):
            if flags[i]:
                word = words[i]
                try:
                    groups[word].append(i)
                except KeyError:
                    groups[word] = [i]
        level: list[tuple[int, list[int]]] = []
        for word, positions in groups.items():
            if len(positions) >= 2:
                sid = len(seq_words)
                seq_words.append((word,))
                occ.append(positions)
                lengths.append(1)
                level.append((sid, positions))

        # Level L: extend each surviving level-(L-1) sequence by the word
        # that follows it, keyed by the interned (sid, word) pair packed
        # into one int.  Positions stay sorted because each parent's list
        # is walked in order and dicts preserve insertion order.
        for entry_len in range(2, max_entry_len + 1):
            if not level:
                break
            offset = entry_len - 1
            extensions: dict[int, list[int]] = {}
            for sid, positions in level:
                base = sid << 32
                for p in positions:
                    if run[p] >= entry_len:
                        key = base | words[p + offset]
                        try:
                            extensions[key].append(p)
                        except KeyError:
                            extensions[key] = [p]
            level = []
            for key, positions in extensions.items():
                if len(positions) >= 2:
                    sid = len(seq_words)
                    parent = key >> 32
                    seq_words.append(
                        seq_words[parent] + (words[positions[0] + offset],)
                    )
                    occ.append(positions)
                    lengths.append(entry_len)
                    level.append((sid, positions))

        self.seq_words = seq_words
        self.occ = [array("i", positions) for positions in occ]
        self.lengths = lengths
        lex_rank = [0] * len(seq_words)
        for rank, sid in enumerate(
            sorted(range(len(seq_words)), key=seq_words.__getitem__)
        ):
            lex_rank[sid] = rank
        self.lex_rank = lex_rank

    def __len__(self) -> int:
        return len(self.seq_words)


def candidate_store(program: Program, max_entry_len: int = 4) -> CandidateStore:
    """The program's :class:`CandidateStore`, built once and cached."""
    cache = program._analysis_cache
    key = ("candidate_store", max_entry_len)
    store = cache.get(key)
    if store is None:
        with observe.stage("enumerate_candidates"):
            store = CandidateStore(program, max_entry_len)
        observe.metric("candidates.count", len(store))
        cache[key] = store
    return store


def enumerate_candidates(
    program: Program, max_entry_len: int = 4
) -> dict[tuple[int, ...], Candidate]:
    """Map sequence words -> candidate with all occurrence positions.

    Only sequences occurring at least twice are kept (a unique sequence
    can never save space: codeword + dictionary entry >= original).

    Backed by the interned :class:`CandidateStore`; insertion order
    matches :func:`enumerate_candidates_reference` exactly — sorted by
    (first occurrence position, length), which is the order the
    reference walk first sees each repeated sequence — so order-
    sensitive consumers (tie-breaks in ``ext_shared_dict`` and the
    optimal-selection pool) are unaffected.
    """
    store = candidate_store(program, max_entry_len)
    occ = store.occ
    lengths = store.lengths
    order = sorted(range(len(store)), key=lambda sid: (occ[sid][0], lengths[sid]))
    return {
        store.seq_words[sid]: Candidate(store.seq_words[sid], list(occ[sid]))
        for sid in order
    }


def enumerate_candidates_reference(
    program: Program, max_entry_len: int = 4
) -> dict[tuple[int, ...], Candidate]:
    """The original tuple-materializing enumerator (equivalence oracle)."""
    words = program.words()
    blocks = block_id_map(program)
    allowed = compressible_flags(program)
    n = len(words)

    candidates: dict[tuple[int, ...], Candidate] = {}
    for start in range(n):
        if not allowed[start]:
            continue
        block = blocks[start]
        limit = min(max_entry_len, n - start)
        sequence: list[int] = []
        for offset in range(limit):
            index = start + offset
            if blocks[index] != block or not allowed[index]:
                break
            sequence.append(words[index])
            key = tuple(sequence)
            candidate = candidates.get(key)
            if candidate is None:
                candidate = Candidate(key)
                candidates[key] = candidate
            candidate.positions.append(start)

    return {
        key: candidate
        for key, candidate in candidates.items()
        if len(candidate.positions) >= 2
    }
