"""Candidate sequence enumeration (paper section 3.1.1).

A candidate dictionary entry is a run of instructions that

* lies entirely within one basic block,
* contains no PC-relative branch (those must stay patchable), and
* is no longer than ``max_entry_len`` instructions.

Branch targets are always basic-block leaders, so an occurrence can
only *start* at a branch target — branches into the middle of encoded
sequences cannot arise (section 3.2 restriction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.basic_blocks import block_id_map
from repro.linker.program import Program


@dataclass
class Candidate:
    """A repeated sequence and every position where it occurs."""

    words: tuple[int, ...]
    positions: list[int] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.words)


def compressible_flags(program: Program) -> list[bool]:
    """True for instructions allowed inside dictionary entries."""
    return [not ti.is_relative_branch for ti in program.text]


def enumerate_candidates(
    program: Program, max_entry_len: int = 4
) -> dict[tuple[int, ...], Candidate]:
    """Map sequence words -> candidate with all occurrence positions.

    Only sequences occurring at least twice, plus single instructions
    occurring at least twice, are kept (a unique sequence can never
    save space: codeword + dictionary entry >= original).
    """
    words = program.words()
    blocks = block_id_map(program)
    allowed = compressible_flags(program)
    n = len(words)

    candidates: dict[tuple[int, ...], Candidate] = {}
    for start in range(n):
        if not allowed[start]:
            continue
        block = blocks[start]
        limit = min(max_entry_len, n - start)
        sequence: list[int] = []
        for offset in range(limit):
            index = start + offset
            if blocks[index] != block or not allowed[index]:
                break
            sequence.append(words[index])
            key = tuple(sequence)
            candidate = candidates.get(key)
            if candidate is None:
                candidate = Candidate(key)
                candidates[key] = candidate
            candidate.positions.append(start)

    return {
        key: candidate
        for key, candidate in candidates.items()
        if len(candidate.positions) >= 2
    }
