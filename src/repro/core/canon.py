"""Register-canonicalization analysis (paper section 5, future work).

The paper's first improvement proposal: "the compiler could attempt to
produce instructions with similar byte sequences … by allocating
registers so that common sequences of instructions use the same
registers."  This module measures the headroom of that idea: it
rewrites every candidate sequence into a *canonical* form where GPR
numbers are renamed in order of first appearance, then counts how many
additional matches appear that exact-bit matching misses.

The result is an upper bound — a real allocator could not realize every
canonical merge — which is exactly how the paper frames the proposal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.candidates import enumerate_candidates
from repro.core.encodings import Encoding
from repro.isa.fields import OperandKind
from repro.isa.instruction import Instruction, decode
from repro.linker.program import Program

# Canonical register numbers are assigned from this base so the result
# is still a plausible allocatable register.
_CANONICAL_BASE = 3


def canonical_words(words: tuple[int, ...]) -> tuple[int, ...]:
    """Rename GPRs by first-use order across the sequence.

    CR fields, SPRs, immediates and opcodes are untouched; both plain
    GPR operands and the base registers of memory operands rename.
    """
    mapping: dict[int, int] = {}

    def rename(register: int) -> int:
        # r0 and r1 have architectural meaning (literal zero in
        # addressing, stack pointer); leave them fixed.
        if register in (0, 1):
            return register
        if register not in mapping:
            mapping[register] = _CANONICAL_BASE + len(mapping)
        return mapping[register]

    out = []
    for word in words:
        ins = decode(word)
        values = []
        for operand, value in zip(ins.spec.operands, ins.values):
            if operand.kind is OperandKind.GPR:
                values.append(rename(value))
            elif operand.kind is OperandKind.DISP_GPR:
                disp, base = value
                values.append((disp, rename(base)))
            else:
                values.append(value)
        out.append(Instruction(ins.spec, tuple(values)).encode())
    return tuple(out)


@dataclass(frozen=True)
class CanonicalizationReport:
    """How much register renaming could improve sequence matching."""

    name: str
    distinct_exact: int
    distinct_canonical: int
    # Occurrences whose exact sequence is unique (uncompressible) but
    # whose canonical class repeats — the renaming opportunity.
    rescued_occurrences: int
    # Upper bound on extra stream savings (bytes) if every canonical
    # class shared a single dictionary entry, under ``encoding``'s
    # cheapest codeword.
    extra_savings_bound_bytes: float

    @property
    def merge_factor(self) -> float:
        """distinct_exact / distinct_canonical (1.0 = no headroom)."""
        if not self.distinct_canonical:
            return 1.0
        return self.distinct_exact / self.distinct_canonical


def analyze(
    program: Program, encoding: Encoding, max_entry_len: int = 4
) -> CanonicalizationReport:
    """Measure canonical-merge headroom for ``program``."""
    candidates = enumerate_candidates(program, max_entry_len=max_entry_len)
    # enumerate_candidates drops singletons; re-enumerate with the raw
    # sequence map to see unique sequences too.
    from repro.core.basic_blocks import block_id_map
    from repro.core.candidates import compressible_flags

    words = program.words()
    blocks = block_id_map(program)
    allowed = compressible_flags(program)
    exact_counts: dict[tuple[int, ...], int] = {}
    for start in range(len(words)):
        if not allowed[start]:
            continue
        block = blocks[start]
        sequence: list[int] = []
        for offset in range(min(max_entry_len, len(words) - start)):
            index = start + offset
            if blocks[index] != block or not allowed[index]:
                break
            sequence.append(words[index])
            key = tuple(sequence)
            exact_counts[key] = exact_counts.get(key, 0) + 1

    canonical_counts: dict[tuple[int, ...], int] = {}
    canonical_of: dict[tuple[int, ...], tuple[int, ...]] = {}
    for key, count in exact_counts.items():
        canon = canonical_words(key)
        canonical_of[key] = canon
        canonical_counts[canon] = canonical_counts.get(canon, 0) + count

    rescued = 0
    extra_bits = 0.0
    cheapest = encoding.codeword_bits(0)
    for key, count in exact_counts.items():
        if count > 1:
            continue
        canon = canonical_of[key]
        if canonical_counts[canon] > 1:
            rescued += 1
            # One previously uncompressible occurrence could become a
            # codeword: save (len * uncompressed - codeword) bits.
            extra_bits += len(key) * encoding.instruction_bits - cheapest

    return CanonicalizationReport(
        name=program.name,
        distinct_exact=len(exact_counts),
        distinct_canonical=len(canonical_counts),
        rescued_occurrences=rescued,
        extra_savings_bound_bytes=extra_bits / 8.0,
    )
