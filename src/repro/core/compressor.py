"""The compressor: orchestrates the full pipeline of section 3.1.

``compress(program, encoding)`` returns a :class:`CompressedProgram`
holding the dictionary, the patched token stream, the serialized
bit stream, the re-patched data image, and the address map — enough
both for size accounting (the paper's figures) and for execution on
the compressed-program processor model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import bitutils, observe
from repro.core.branch_patch import patch_branches, patch_jump_tables
from repro.core.dictionary import Dictionary
from repro.core.encodings import BaselineEncoding, Encoding
from repro.core.greedy import GreedyResult, build_dictionary
from repro.core.replace import Token, build_tokens
from repro.errors import CompressionError
from repro.linker.program import Program


@dataclass
class CompressedProgram:
    """A compressed executable image."""

    program: Program
    encoding: Encoding
    dictionary: Dictionary
    tokens: list[Token]
    index_to_unit: dict[int, int]
    stream: bytes
    data_image: bytearray
    relaxations: int
    greedy: GreedyResult = field(repr=False, default=None)  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # Size accounting (paper equation 1: ratio = compressed / original)
    # ------------------------------------------------------------------
    @property
    def original_bytes(self) -> int:
        return self.program.text_size

    @property
    def stream_bits(self) -> int:
        return sum(t.size_units for t in self.tokens) * self.encoding.alignment_bits

    @property
    def stream_bytes(self) -> int:
        """Compressed instruction stream, rounded up to whole bytes."""
        return (self.stream_bits + 7) // 8

    @property
    def dictionary_bytes(self) -> int:
        return self.dictionary.size_bytes

    @property
    def compressed_bytes(self) -> int:
        """Stream plus dictionary — the paper includes the dictionary."""
        return self.stream_bytes + self.dictionary_bytes

    @property
    def compression_ratio(self) -> float:
        return self.compressed_bytes / self.original_bytes

    # ------------------------------------------------------------------
    def total_units(self) -> int:
        return sum(token.size_units for token in self.tokens)

    def verify_stream(self) -> None:
        """Re-parse the serialized stream and check it matches the tokens.

        This is the bit-level proof that a hardware decoder could walk
        the stream: every item must round-trip through the encoding.
        """
        reader = bitutils.BitReader(self.stream)
        for token in self.tokens:
            kind, payload = self.encoding.read_item(reader)
            if token.kind == "cw":
                if kind != "cw" or payload != token.rank:
                    raise CompressionError(
                        f"stream mismatch at unit {token.address}: "
                        f"expected codeword {token.rank}, read {kind}:{payload}"
                    )
            else:
                assert token.instruction is not None
                expected = token.instruction.encode()
                if kind != "ins" or payload != expected:
                    raise CompressionError(
                        f"stream mismatch at unit {token.address}: "
                        f"expected instruction {expected:#010x}, read {kind}:{payload}"
                    )


class Compressor:
    """Configurable front end for :func:`compress`."""

    def __init__(
        self,
        encoding: Encoding | None = None,
        max_entry_len: int = 4,
        max_codewords: int | None = None,
        position_weights: list[int] | None = None,
        greedy_implementation: str = "fast",
    ) -> None:
        self.encoding = encoding or BaselineEncoding()
        self.max_entry_len = max_entry_len
        self.max_codewords = max_codewords
        self.position_weights = position_weights
        # "fast" or "reference" — both produce byte-identical images;
        # "reference" exists for golden-equivalence checks and benchmarks.
        self.greedy_implementation = greedy_implementation

    def compress(self, program: Program) -> CompressedProgram:
        with observe.span(
            "compress",
            program=program.name,
            encoding=self.encoding.name,
            instructions=len(program.text),
        ):
            return self._compress(program)

    def _compress(self, program: Program) -> CompressedProgram:
        encoding = self.encoding
        with observe.stage("dict_build"):
            greedy = build_dictionary(
                program,
                encoding,
                max_entry_len=self.max_entry_len,
                max_codewords=self.max_codewords,
                position_weights=self.position_weights,
                implementation=self.greedy_implementation,
            )
        with observe.stage("tokenize"):
            tokens = build_tokens(program, greedy, greedy.dictionary)
        with observe.stage("branch_patch"):
            tokens, index_to_unit, relaxations = patch_branches(tokens, encoding)
        with observe.stage("serialize"):
            stream = _serialize(tokens, encoding)
        with observe.stage("jump_tables"):
            data_image = patch_jump_tables(program, index_to_unit)
        compressed = CompressedProgram(
            program=program,
            encoding=encoding,
            dictionary=greedy.dictionary,
            tokens=tokens,
            index_to_unit=index_to_unit,
            stream=stream,
            data_image=data_image,
            relaxations=relaxations,
            greedy=greedy,
        )
        return compressed


def _serialize(tokens: list[Token], encoding: Encoding) -> bytes:
    writer = bitutils.BitWriter()
    for token in tokens:
        if token.kind == "cw":
            assert token.rank is not None
            encoding.write_codeword(writer, token.rank)
        else:
            assert token.instruction is not None
            encoding.write_instruction(writer, token.instruction.encode())
    return writer.getvalue()


def compress(
    program: Program,
    encoding: Encoding | None = None,
    max_entry_len: int = 4,
    max_codewords: int | None = None,
    position_weights: list[int] | None = None,
) -> CompressedProgram:
    """Compress ``program`` with the given encoding and limits.

    ``position_weights`` selects the profile-guided objective (see
    :func:`repro.core.greedy.build_dictionary`).
    """
    return Compressor(
        encoding=encoding,
        max_entry_len=max_entry_len,
        max_codewords=max_codewords,
        position_weights=position_weights,
    ).compress(program)
