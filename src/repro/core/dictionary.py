"""Dictionary model: entries of original instruction words.

Codeword *ranks* are assigned after greedy selection by static usage
count — most frequently used entry gets the shortest codeword (paper
section 3.1.3) — so the dictionary order here is rank order.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DictionaryEntry:
    """One dictionary entry: the original instruction words."""

    words: tuple[int, ...]
    uses: int  # static occurrence count in the compressed program

    @property
    def length(self) -> int:
        """Number of instructions in the entry."""
        return len(self.words)

    @property
    def size_bytes(self) -> int:
        return 4 * len(self.words)


@dataclass
class Dictionary:
    """Rank-ordered dictionary."""

    entries: list[DictionaryEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, rank: int) -> DictionaryEntry:
        return self.entries[rank]

    @property
    def size_bytes(self) -> int:
        """Total dictionary storage (the paper counts this as overhead)."""
        return sum(entry.size_bytes for entry in self.entries)

    def rank_of(self, words: tuple[int, ...]) -> int:
        for rank, entry in enumerate(self.entries):
            if entry.words == words:
                return rank
        raise KeyError(f"no dictionary entry for {words}")

    def length_histogram(self) -> dict[int, int]:
        """Entry-length -> number of entries (paper Figure 6)."""
        histogram: dict[int, int] = {}
        for entry in self.entries:
            histogram[entry.length] = histogram.get(entry.length, 0) + 1
        return histogram
