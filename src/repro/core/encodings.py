"""Codeword encodings (paper sections 4.1, 4.1.2, 4.1.3).

An :class:`Encoding` defines the codeword space:

* how many codewords exist and how many bits the *k*-th (rank-ordered)
  codeword occupies,
* the stream alignment unit ("all instructions, compressed and
  uncompressed, are aligned to the size of the smallest codeword"),
* how many bits an *uncompressed* instruction occupies in the stream
  (32, or 36 for the nibble scheme whose escape nibble precedes it),
* bit-level serialization of codewords and instructions.

Three concrete encodings reproduce the paper:

=================  =========  ==========  ===========================
encoding           codeword   alignment   capacity
=================  =========  ==========  ===========================
Baseline           16 bits    16 bits     32 escapes x 256 = 8192
OneByte            8 bits     8 bits      the 32 escape bytes
Nibble             4/8/12/16  4 bits      8 + 64 + 512 + 4096 = 4680
=================  =========  ==========  ===========================
"""

from __future__ import annotations

from repro import bitutils
from repro.errors import CompressionError, DecompressionError
from repro.isa.opcodes import ILLEGAL_PRIMARY_OPCODES, escape_bytes


class Encoding:
    """Interface for codeword spaces."""

    name: str = "abstract"
    alignment_bits: int = 8
    instruction_bits: int = 32  # stream cost of one uncompressed instruction

    @property
    def capacity(self) -> int:
        """Maximum number of codewords."""
        raise NotImplementedError

    def codeword_bits(self, rank: int) -> int:
        """Stream bits of the codeword with rank ``rank`` (0 = shortest)."""
        raise NotImplementedError

    def write_codeword(self, writer: bitutils.BitWriter, rank: int) -> None:
        raise NotImplementedError

    def write_instruction(self, writer: bitutils.BitWriter, word: int) -> None:
        raise NotImplementedError

    def read_item(self, reader: bitutils.BitReader) -> tuple[str, int]:
        """Read one stream item: ('cw', rank) or ('ins', word)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def units(self, bits: int) -> int:
        """Convert a bit count to alignment units (must divide evenly)."""
        if bits % self.alignment_bits:
            raise CompressionError(
                f"{self.name}: {bits} bits not aligned to {self.alignment_bits}"
            )
        return bits // self.alignment_bits

    def instruction_units(self) -> int:
        return self.units(self.instruction_bits)

    def codeword_units(self, rank: int) -> int:
        return self.units(self.codeword_bits(rank))

    # Escape overhead of one codeword, in bits (paper Figure 9 splits
    # codeword bytes into escape bytes and index bytes).
    def escape_bits(self, rank: int) -> int:
        raise NotImplementedError


class BaselineEncoding(Encoding):
    """2-byte codewords: illegal-opcode escape byte + index byte.

    PowerPC has 8 illegal 6-bit primary opcodes; with the remaining two
    bits of the byte free, 32 escape byte values exist, each followed
    by one index byte: up to 8192 codewords (paper section 4.1).
    Programs compressed this way remain supersets of valid PowerPC:
    a processor that knows the escapes can also run original binaries.
    """

    name = "baseline"
    alignment_bits = 16
    instruction_bits = 32

    def __init__(self, max_codewords: int = 8192) -> None:
        if not 1 <= max_codewords <= 8192:
            raise CompressionError("baseline supports 1..8192 codewords")
        self.max_codewords = max_codewords
        self._escapes = escape_bytes()

    @property
    def capacity(self) -> int:
        return self.max_codewords

    def codeword_bits(self, rank: int) -> int:
        if rank >= self.max_codewords:
            raise CompressionError(f"rank {rank} beyond capacity")
        return 16

    def escape_bits(self, rank: int) -> int:
        return 8

    def write_codeword(self, writer: bitutils.BitWriter, rank: int) -> None:
        escape = self._escapes[rank >> 8]
        writer.write(escape, 8)
        writer.write(rank & 0xFF, 8)

    def write_instruction(self, writer: bitutils.BitWriter, word: int) -> None:
        writer.write(word, 32)

    def read_item(self, reader: bitutils.BitReader) -> tuple[str, int]:
        first = reader.peek(8)
        if (first >> 2) in ILLEGAL_PRIMARY_OPCODES:
            escape = reader.read(8)
            index = reader.read(8)
            try:
                escape_rank = self._escapes.index(escape)
            except ValueError as exc:  # pragma: no cover - peek guarantees
                raise DecompressionError(f"bad escape byte {escape:#x}") from exc
            return ("cw", (escape_rank << 8) | index)
        return ("ins", reader.read(32))


class OneByteEncoding(Encoding):
    """1-byte codewords for small dictionaries (paper section 4.1.2).

    The 32 escape byte values themselves are the codewords, so at most
    32 dictionary entries exist — the paper evaluates 8, 16, and 32
    (128/256/512-byte dictionaries at 16 bytes per entry).
    """

    name = "onebyte"
    alignment_bits = 8
    instruction_bits = 32

    def __init__(self, max_codewords: int = 32) -> None:
        if not 1 <= max_codewords <= 32:
            raise CompressionError("one-byte encoding supports 1..32 codewords")
        self.max_codewords = max_codewords
        self._escapes = escape_bytes()

    @property
    def capacity(self) -> int:
        return self.max_codewords

    def codeword_bits(self, rank: int) -> int:
        if rank >= self.max_codewords:
            raise CompressionError(f"rank {rank} beyond capacity")
        return 8

    def escape_bits(self, rank: int) -> int:
        # The whole byte both escapes and indexes; count it as escape
        # overhead zero so Figure 9 style accounting sums correctly.
        return 0

    def write_codeword(self, writer: bitutils.BitWriter, rank: int) -> None:
        writer.write(self._escapes[rank], 8)

    def write_instruction(self, writer: bitutils.BitWriter, word: int) -> None:
        writer.write(word, 32)

    def read_item(self, reader: bitutils.BitReader) -> tuple[str, int]:
        first = reader.peek(8)
        if (first >> 2) in ILLEGAL_PRIMARY_OPCODES:
            return ("cw", self._escapes.index(reader.read(8)))
        return ("ins", reader.read(32))


class CustomNibbleEncoding(Encoding):
    """Nibble-aligned codewords with a configurable first-nibble split.

    ``allocation`` maps codeword length in nibbles (1..4) to how many of
    the 16 first-nibble values that band owns.  One value is always
    reserved as the escape prefix for uncompressed instructions, so the
    bands must sum to 15.  A band owning ``k`` first-nibble values of
    length ``n`` nibbles provides ``k * 16**(n-1)`` codewords.

    The paper presents one allocation ("the best encoding choice we
    have discovered") and notes other programs may prefer others; the
    ``ext_encoding_search`` experiment sweeps this space.
    """

    alignment_bits = 4
    instruction_bits = 36  # escape nibble + original word

    def __init__(
        self,
        allocation: dict[int, int],
        max_codewords: int | None = None,
        name: str = "nibble-custom",
    ) -> None:
        self.name = name
        self.allocation = dict(allocation)
        total_values = sum(self.allocation.get(n, 0) for n in (1, 2, 3, 4))
        if total_values != 15:
            raise CompressionError(
                f"first-nibble bands must sum to 15 (escape takes the 16th), "
                f"got {total_values}"
            )
        # Bands in increasing codeword size: (nibbles, first_value, count).
        self._bands: list[tuple[int, int, int]] = []
        first_value = 0
        capacity = 0
        for nibbles in (1, 2, 3, 4):
            values = self.allocation.get(nibbles, 0)
            if values:
                self._bands.append((nibbles, first_value, values * 16 ** (nibbles - 1)))
                first_value += values
                capacity += values * 16 ** (nibbles - 1)
        self._escape_value = 15
        self._full_capacity = capacity
        if max_codewords is None:
            max_codewords = capacity
        if not 1 <= max_codewords <= capacity:
            raise CompressionError(
                f"{name} supports 1..{capacity} codewords, got {max_codewords}"
            )
        self.max_codewords = max_codewords

    @property
    def capacity(self) -> int:
        return self.max_codewords

    def _band_of(self, rank: int) -> tuple[int, int, int, int]:
        """(nibbles, first_value, band_size, rank_base) for ``rank``."""
        base = 0
        for nibbles, first_value, size in self._bands:
            if rank < base + size:
                return nibbles, first_value, size, base
            base += size
        raise CompressionError(f"rank {rank} beyond capacity")

    def codeword_bits(self, rank: int) -> int:
        if rank >= self.max_codewords:
            raise CompressionError(f"rank {rank} beyond capacity")
        nibbles, _, _, _ = self._band_of(rank)
        return 4 * nibbles

    def escape_bits(self, rank: int) -> int:
        # The selector nibble is the escape overhead of each codeword.
        return 4

    def write_codeword(self, writer: bitutils.BitWriter, rank: int) -> None:
        nibbles, first_value, _, base = self._band_of(rank)
        offset = rank - base
        tail_bits = 4 * (nibbles - 1)
        writer.write(first_value + (offset >> tail_bits), 4)
        if tail_bits:
            writer.write(offset & bitutils.mask(tail_bits), tail_bits)

    def write_instruction(self, writer: bitutils.BitWriter, word: int) -> None:
        writer.write(self._escape_value, 4)
        writer.write(word, 32)

    def read_item(self, reader: bitutils.BitReader) -> tuple[str, int]:
        first = reader.read(4)
        if first == self._escape_value:
            return ("ins", reader.read(32))
        base = 0
        for nibbles, first_value, size in self._bands:
            values = size // 16 ** (nibbles - 1)
            if first < first_value + values:
                tail_bits = 4 * (nibbles - 1)
                offset = (first - first_value) << tail_bits
                if tail_bits:
                    offset |= reader.read(tail_bits)
                return ("cw", base + offset)
            base += size
        raise DecompressionError(f"first nibble {first} maps to no band")


# The paper's Figure 10 allocation: 8 one-nibble values, 4 two-nibble
# prefixes, 2 three-nibble, 1 four-nibble, 1 escape.
_FIGURE10_ALLOCATION = {1: 8, 2: 4, 3: 2, 4: 1}


class NibbleEncoding(CustomNibbleEncoding):
    """Nibble-aligned variable-length codewords (paper Figure 10).

    First-nibble dispatch:

    =========  ==================  ==========================
    nibble     item                codeword ranks
    =========  ==================  ==========================
    0-7        4-bit codeword      0..7
    8-11       8-bit codeword      8..71
    12-13      12-bit codeword     72..583
    14         16-bit codeword     584..4679
    15         escape + 32-bit     (uncompressed instruction)
    =========  ==================  ==========================

    Because the escape nibble redefines the whole encoding space, an
    unmodified PowerPC cannot run these programs (paper section 4.1.3)
    — the trade for the best compression ratio.
    """

    def __init__(self, max_codewords: int = 4680) -> None:
        super().__init__(
            _FIGURE10_ALLOCATION, max_codewords=max_codewords, name="nibble"
        )


def make_encoding(name: str, max_codewords: int | None = None) -> Encoding:
    """Factory by name: 'baseline', 'onebyte', or 'nibble'."""
    if name == "baseline":
        return BaselineEncoding(max_codewords or 8192)
    if name == "onebyte":
        return OneByteEncoding(max_codewords or 32)
    if name == "nibble":
        return NibbleEncoding(max_codewords or 4680)
    raise CompressionError(f"unknown encoding {name!r}")
