"""Greedy dictionary construction (paper section 3.1.1).

Optimal dictionary selection is NP-complete [Storer77]; like the paper
we run a greedy loop: on every iteration pick the candidate whose
replacement yields the largest immediate savings, replace all of its
(non-overlapping, still-intact) occurrences, and repeat until the
codeword space is exhausted or nothing saves bytes.

Savings model, in stream bits (section 3.1.3's cost accounting):

    savings(e) = uses * (L * U - C_k) - 32 * L

where ``L`` is the entry length in instructions, ``U`` the encoding's
per-instruction stream cost (32 bits, 36 for the nibble scheme),
``C_k`` the bit size of the next free codeword slot, and ``32 * L`` the
dictionary storage for the entry.

The loop uses a lazy max-heap: entry priorities only ever decrease
(occurrences get destroyed by other replacements; codeword slots only
grow), so a popped entry whose recomputed priority is unchanged is the
true maximum.

Two implementations produce byte-identical :class:`GreedyResult`\\ s:

* :func:`greedy_reference` — the original direct transcription, kept
  as the oracle;
* the fast path (default) — driven by the interned
  :class:`~repro.core.candidates.CandidateStore` with incremental
  bookkeeping.  See ``docs/performance.md`` for why each shortcut
  preserves the reference's exact pick sequence:

  - the initial heap uses the *upper bound* ``len(occurrences)`` as the
    weight instead of scanning for valid occurrences (nothing is
    covered yet, so only self-overlap can lower the true weight; a
    stored priority that is an over-estimate is exactly what a lazy
    max-heap tolerates, and acceptance still requires a recomputed
    priority to match the stored one);
  - coverage is a ``bytearray`` probed with C-speed ``find`` instead of
    a Python ``any`` over a slice;
  - occurrence lists are compacted lazily — positions destroyed by an
    accepted entry are dropped the next time that candidate is popped,
    so each destroyed occurrence is filtered once, not once per pop;
  - per-candidate (chosen, weight) results are memoized by *epoch* (the
    number of accepted entries): within one epoch coverage and rank are
    fixed, so a re-popped candidate reuses its cached selection instead
    of rescanning (this removes the duplicated ``_valid_occurrences``
    work the reference does on accept);
  - a candidate whose surviving occurrences were once verified
    non-self-overlapping can never overlap again (positions only get
    removed), so the overlap pass is skipped from then on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro import observe
from repro.core.candidates import (
    Candidate,
    candidate_store,
    enumerate_candidates_reference,
)
from repro.core.dictionary import Dictionary, DictionaryEntry
from repro.core.encodings import Encoding
from repro.linker.program import Program


@dataclass(slots=True)
class Replacement:
    """One chosen occurrence: ``length`` instructions at ``position``."""

    position: int
    entry_words: tuple[int, ...]

    @property
    def length(self) -> int:
        return len(self.entry_words)


@dataclass
class GreedyResult:
    """Output of dictionary construction."""

    dictionary: Dictionary
    replacements: list[Replacement] = field(default_factory=list)
    # Savings actually achieved per selection step, in stream bits —
    # used by the Figure 7 analysis.
    step_savings_bits: list[int] = field(default_factory=list)

    def covered_positions(self) -> set[int]:
        covered = set()
        for rep in self.replacements:
            covered.update(range(rep.position, rep.position + rep.length))
        return covered


def _valid_occurrences(candidate: Candidate, covered: list[bool]) -> list[int]:
    """Non-overlapping occurrences not destroyed by earlier picks."""
    chosen: list[int] = []
    last_end = -1
    length = candidate.length
    for position in candidate.positions:
        if position < last_end:
            continue  # overlaps a previous occurrence of the same entry
        if any(covered[position : position + length]):
            continue
        chosen.append(position)
        last_end = position + length
    return chosen


def build_dictionary(
    program: Program,
    encoding: Encoding,
    max_entry_len: int = 4,
    max_codewords: int | None = None,
    position_weights: list[int] | None = None,
    implementation: str = "fast",
) -> GreedyResult:
    """Run the greedy algorithm over ``program``.

    ``max_codewords`` defaults to the encoding's capacity.

    ``position_weights`` switches the objective from static size to
    weighted benefit: occurrence at position ``p`` counts
    ``position_weights[p]`` times (e.g. its dynamic execution count, to
    minimize fetch traffic instead of ROM size — the profile-guided
    variant explored by the ``ext_dynamic`` experiment).  The entry's
    dictionary storage still counts once.

    ``implementation`` selects ``"fast"`` (default) or ``"reference"``;
    both return byte-identical results (enforced by the
    golden-equivalence test suite).
    """
    if implementation == "reference":
        select = greedy_reference
    elif implementation == "fast":
        select = _build_dictionary_fast
    else:
        raise ValueError(f"unknown greedy implementation {implementation!r}")
    with observe.stage("build_dictionary"):
        return select(
            program,
            encoding,
            max_entry_len=max_entry_len,
            max_codewords=max_codewords,
            position_weights=position_weights,
        )


def _build_dictionary_fast(
    program: Program,
    encoding: Encoding,
    max_entry_len: int,
    max_codewords: int | None,
    position_weights: list[int] | None,
) -> GreedyResult:
    capacity = min(
        encoding.capacity, max_codewords if max_codewords is not None else 1 << 30
    )
    store = candidate_store(program, max_entry_len)
    covered = bytearray(store.n)
    find = covered.find
    unc = encoding.instruction_bits
    cwbits = [encoding.codeword_bits(0)]

    seq_words = store.seq_words
    lengths = store.lengths
    nsid = len(seq_words)
    store_occ = store.occ
    # Working occurrence lists, compacted lazily; None = still pristine
    # (read from the store, which is never mutated).
    occ: list[list[int] | None] = [None] * nsid
    cache_epoch = [-1] * nsid
    cache_chosen: list[list[int] | None] = [None] * nsid
    may_overlap = [True] * nsid
    pw = position_weights

    # Initial heap with upper-bound weights (see module docstring).
    # Tie-breaks use the store's precomputed lexicographic rank — an
    # order-preserving int stand-in for comparing the words tuples, so
    # the pop order is exactly the reference's (-priority, words) order.
    lex_rank = store.lex_rank
    heap = []
    c0 = cwbits[0]
    for sid in range(nsid):
        length = lengths[sid]
        if pw is None:
            bound = len(store_occ[sid])
        else:
            bound = 0
            for p in store_occ[sid]:
                w = pw[p]
                if w > 0:
                    bound += w
        priority = bound * (length * unc - c0) - 32 * length
        if priority > 0:
            heap.append((-priority, lex_rank[sid], sid))
    heapq.heapify(heap)

    chosen_entries: list[tuple[tuple[int, ...], int]] = []  # (words, uses)
    # Entry words by replacement start position; coverage guarantees at
    # most one replacement starts at any position, so this doubles as
    # the position-sorted replacement list.
    rep_at: list[tuple[int, ...] | None] = [None] * store.n
    step_savings: list[int] = []
    epoch = 0
    push = heapq.heappush
    pop = heapq.heappop
    marks = {length: b"\x01" * length for length in range(1, max_entry_len + 1)}

    rank = 0
    cw_rank = cwbits[0]
    while heap and rank < capacity:
        neg_priority, tie, sid = pop(heap)
        length = lengths[sid]
        if cache_epoch[sid] == epoch:
            # Same epoch => same coverage and same rank as when cached,
            # so the stored priority is exact.
            chosen = cache_chosen[sid]
            current = -neg_priority
        else:
            arr = occ[sid]
            if arr is None:
                arr = store_occ[sid]
            if length == 1:
                alive = [p for p in arr if not covered[p]]
                chosen = alive  # single instructions cannot self-overlap
            else:
                alive = [p for p in arr if find(1, p, p + length) < 0]
                if may_overlap[sid]:
                    chosen = []
                    chosen_append = chosen.append
                    last_end = -1
                    for p in alive:
                        if p >= last_end:
                            chosen_append(p)
                            last_end = p + length
                    if len(chosen) == len(alive):
                        may_overlap[sid] = False
                else:
                    chosen = alive
            occ[sid] = alive
            if pw is None:
                weight = len(chosen)
            else:
                weight = 0
                for p in chosen:
                    w = pw[p]
                    if w > 0:
                        weight += w
            cache_epoch[sid] = epoch
            cache_chosen[sid] = chosen
            current = weight * (length * unc - cw_rank) - 32 * length
        if current != -neg_priority:
            if current > 0:
                push(heap, (-current, tie, sid))
            continue
        if current <= 0:
            break
        # Accept: this is the true maximum.
        key = seq_words[sid]
        chosen_entries.append((key, len(chosen)))
        step_savings.append(current)
        mark = marks[length]
        for p in chosen:
            rep_at[p] = key
            covered[p : p + length] = mark
        epoch += 1
        rank += 1
        if rank < capacity:
            while rank >= len(cwbits):
                cwbits.append(encoding.codeword_bits(len(cwbits)))
            cw_rank = cwbits[rank]

    # Rank the dictionary by static usage so the most frequent entries
    # receive the shortest codewords (paper section 3.1.3).
    order = sorted(
        range(len(chosen_entries)),
        key=lambda i: (-chosen_entries[i][1], chosen_entries[i][0]),
    )
    dictionary = Dictionary(
        [
            DictionaryEntry(words=chosen_entries[i][0], uses=chosen_entries[i][1])
            for i in order
        ]
    )
    replacements = [
        Replacement(p, key) for p, key in enumerate(rep_at) if key is not None
    ]
    return GreedyResult(
        dictionary=dictionary,
        replacements=replacements,
        step_savings_bits=step_savings,
    )


def greedy_reference(
    program: Program,
    encoding: Encoding,
    max_entry_len: int = 4,
    max_codewords: int | None = None,
    position_weights: list[int] | None = None,
) -> GreedyResult:
    """The original greedy loop, preserved verbatim as the oracle.

    Uses :func:`enumerate_candidates_reference` and per-pop
    ``_valid_occurrences`` rescans; the fast path is required to match
    its output byte for byte.
    """
    capacity = min(
        encoding.capacity, max_codewords if max_codewords is not None else 1 << 30
    )
    candidates = enumerate_candidates_reference(program, max_entry_len=max_entry_len)
    covered = [False] * len(program.text)

    unc = encoding.instruction_bits

    def occurrence_weight(positions: list[int]) -> int:
        if position_weights is None:
            return len(positions)
        return sum(max(position_weights[p], 0) for p in positions)

    def savings_bits(candidate: Candidate, weight: int, rank: int) -> int:
        length = candidate.length
        return weight * (length * unc - encoding.codeword_bits(rank)) - 32 * length

    # Initial heap: priority computed with the cheapest (rank 0) slot.
    heap: list[tuple[int, tuple[int, ...]]] = []
    for key, candidate in candidates.items():
        weight = occurrence_weight(_valid_occurrences(candidate, covered))
        priority = savings_bits(candidate, weight, 0)
        if priority > 0:
            heap.append((-priority, key))
    heapq.heapify(heap)

    chosen_entries: list[tuple[tuple[int, ...], int]] = []  # (words, uses)
    replacements: list[Replacement] = []
    step_savings: list[int] = []

    while heap and len(chosen_entries) < capacity:
        rank = len(chosen_entries)
        neg_priority, key = heapq.heappop(heap)
        candidate = candidates[key]
        occurrences = _valid_occurrences(candidate, covered)
        current = savings_bits(candidate, occurrence_weight(occurrences), rank)
        if current != -neg_priority:
            if current > 0:
                heapq.heappush(heap, (-current, key))
            continue
        if current <= 0:
            break
        # Accept: this is the true maximum.
        chosen_entries.append((key, len(occurrences)))
        step_savings.append(current)
        for position in occurrences:
            replacements.append(Replacement(position, key))
            for index in range(position, position + candidate.length):
                covered[index] = True

    # Rank the dictionary by static usage so the most frequent entries
    # receive the shortest codewords (paper section 3.1.3).
    order = sorted(
        range(len(chosen_entries)),
        key=lambda i: (-chosen_entries[i][1], chosen_entries[i][0]),
    )
    dictionary = Dictionary(
        [
            DictionaryEntry(words=chosen_entries[i][0], uses=chosen_entries[i][1])
            for i in order
        ]
    )
    replacements.sort(key=lambda rep: rep.position)
    return GreedyResult(
        dictionary=dictionary,
        replacements=replacements,
        step_savings_bits=step_savings,
    )
