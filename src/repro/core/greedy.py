"""Greedy dictionary construction (paper section 3.1.1).

Optimal dictionary selection is NP-complete [Storer77]; like the paper
we run a greedy loop: on every iteration pick the candidate whose
replacement yields the largest immediate savings, replace all of its
(non-overlapping, still-intact) occurrences, and repeat until the
codeword space is exhausted or nothing saves bytes.

Savings model, in stream bits (section 3.1.3's cost accounting):

    savings(e) = uses * (L * U - C_k) - 32 * L

where ``L`` is the entry length in instructions, ``U`` the encoding's
per-instruction stream cost (32 bits, 36 for the nibble scheme),
``C_k`` the bit size of the next free codeword slot, and ``32 * L`` the
dictionary storage for the entry.

The loop uses a lazy max-heap: entry priorities only ever decrease
(occurrences get destroyed by other replacements; codeword slots only
grow), so a popped entry whose recomputed priority is unchanged is the
true maximum.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.core.candidates import Candidate, enumerate_candidates
from repro.core.dictionary import Dictionary, DictionaryEntry
from repro.core.encodings import Encoding
from repro.linker.program import Program


@dataclass
class Replacement:
    """One chosen occurrence: ``length`` instructions at ``position``."""

    position: int
    entry_words: tuple[int, ...]

    @property
    def length(self) -> int:
        return len(self.entry_words)


@dataclass
class GreedyResult:
    """Output of dictionary construction."""

    dictionary: Dictionary
    replacements: list[Replacement] = field(default_factory=list)
    # Savings actually achieved per selection step, in stream bits —
    # used by the Figure 7 analysis.
    step_savings_bits: list[int] = field(default_factory=list)

    def covered_positions(self) -> set[int]:
        covered = set()
        for rep in self.replacements:
            covered.update(range(rep.position, rep.position + rep.length))
        return covered


def _valid_occurrences(candidate: Candidate, covered: list[bool]) -> list[int]:
    """Non-overlapping occurrences not destroyed by earlier picks."""
    chosen: list[int] = []
    last_end = -1
    length = candidate.length
    for position in candidate.positions:
        if position < last_end:
            continue  # overlaps a previous occurrence of the same entry
        if any(covered[position : position + length]):
            continue
        chosen.append(position)
        last_end = position + length
    return chosen


def build_dictionary(
    program: Program,
    encoding: Encoding,
    max_entry_len: int = 4,
    max_codewords: int | None = None,
    position_weights: list[int] | None = None,
) -> GreedyResult:
    """Run the greedy algorithm over ``program``.

    ``max_codewords`` defaults to the encoding's capacity.

    ``position_weights`` switches the objective from static size to
    weighted benefit: occurrence at position ``p`` counts
    ``position_weights[p]`` times (e.g. its dynamic execution count, to
    minimize fetch traffic instead of ROM size — the profile-guided
    variant explored by the ``ext_dynamic`` experiment).  The entry's
    dictionary storage still counts once.
    """
    capacity = min(
        encoding.capacity, max_codewords if max_codewords is not None else 1 << 30
    )
    candidates = enumerate_candidates(program, max_entry_len=max_entry_len)
    covered = [False] * len(program.text)

    unc = encoding.instruction_bits

    def occurrence_weight(positions: list[int]) -> int:
        if position_weights is None:
            return len(positions)
        return sum(max(position_weights[p], 0) for p in positions)

    def savings_bits(candidate: Candidate, weight: int, rank: int) -> int:
        length = candidate.length
        return weight * (length * unc - encoding.codeword_bits(rank)) - 32 * length

    # Initial heap: priority computed with the cheapest (rank 0) slot.
    heap: list[tuple[int, tuple[int, ...]]] = []
    for key, candidate in candidates.items():
        weight = occurrence_weight(_valid_occurrences(candidate, covered))
        priority = savings_bits(candidate, weight, 0)
        if priority > 0:
            heap.append((-priority, key))
    heapq.heapify(heap)

    chosen_entries: list[tuple[tuple[int, ...], int]] = []  # (words, uses)
    replacements: list[Replacement] = []
    step_savings: list[int] = []

    while heap and len(chosen_entries) < capacity:
        rank = len(chosen_entries)
        neg_priority, key = heapq.heappop(heap)
        candidate = candidates[key]
        occurrences = _valid_occurrences(candidate, covered)
        current = savings_bits(candidate, occurrence_weight(occurrences), rank)
        if current != -neg_priority:
            if current > 0:
                heapq.heappush(heap, (-current, key))
            continue
        if current <= 0:
            break
        # Accept: this is the true maximum.
        chosen_entries.append((key, len(occurrences)))
        step_savings.append(current)
        for position in occurrences:
            replacements.append(Replacement(position, key))
            for index in range(position, position + candidate.length):
                covered[index] = True

    # Rank the dictionary by static usage so the most frequent entries
    # receive the shortest codewords (paper section 3.1.3).
    order = sorted(
        range(len(chosen_entries)),
        key=lambda i: (-chosen_entries[i][1], chosen_entries[i][0]),
    )
    dictionary = Dictionary(
        [
            DictionaryEntry(words=chosen_entries[i][0], uses=chosen_entries[i][1])
            for i in order
        ]
    )
    replacements.sort(key=lambda rep: rep.position)
    return GreedyResult(
        dictionary=dictionary,
        replacements=replacements,
        step_savings_bits=step_savings,
    )
