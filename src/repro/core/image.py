"""Persistent compressed-executable images.

A :class:`CompressedImage` is the self-contained artifact a compressed
program ROM would hold: the encoding identity, the dictionary, the
compressed instruction stream, the (jump-table-patched) data image, and
the entry point.  It can be serialized to bytes (``RCIM`` container),
reloaded, and executed by the compressed simulator with no access to
the original :class:`~repro.linker.program.Program` — which is exactly
the deployment story of the paper's section 3.3 processor.

Container layout (all integers big-endian):

=========  ======================================================
field      contents
=========  ======================================================
magic      ``b"RCIM"``
version    u8 (currently 2)
crc        u32 CRC-32 of every byte after this field
name       u8 length + utf-8 bytes
encoding   u8 length + utf-8 name ('baseline'/'onebyte'/'nibble')
maxcw      u32 encoding max_codewords
entry      u32 entry unit address
units      u32 total stream units
text_base  u32
dict       u16 entry count, then per entry: u8 length + u32 words
stream     u32 byte length + bytes
data       u32 byte length + bytes
=========  ======================================================

Deserialization failures are distinguished so callers (the CLI, the
service cache) can react per cause.  All are
:class:`~repro.errors.CompressionError` subclasses:

* :class:`ImageFormatError` — the container structure is wrong: bad
  magic, unsupported version, truncated field, or trailing bytes.
* :class:`ImageChecksumError` — the structure parses but the payload
  CRC does not match (a bit flip in the stream, dictionary, or data).
* :class:`ImageEncodingError` — the encoding id names no known
  codeword scheme.
* :class:`ImageCapacityError` — the dictionary holds more entries
  than the declared encoding can address.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.core.compressor import CompressedProgram
from repro.core.dictionary import Dictionary, DictionaryEntry
from repro.core.encodings import Encoding, make_encoding
from repro.errors import CompressionError

MAGIC = b"RCIM"
VERSION = 2


class ImageError(CompressionError):
    """Base class for ``.rcim`` container failures."""


class ImageFormatError(ImageError):
    """The container structure is malformed (magic/version/length)."""


class ImageChecksumError(ImageError):
    """The payload CRC does not match — the image bytes are corrupt."""


class ImageEncodingError(ImageError):
    """The image names an encoding this library does not provide."""


class ImageCapacityError(ImageError):
    """The dictionary exceeds the declared encoding's codeword space."""


@dataclass(frozen=True)
class CompressedImage:
    """A self-contained compressed executable."""

    name: str
    encoding_name: str
    max_codewords: int
    dictionary: Dictionary
    stream: bytes
    total_units: int
    entry_unit: int
    text_base: int
    data_image: bytes

    # ------------------------------------------------------------------
    def encoding(self) -> Encoding:
        return make_encoding(self.encoding_name, self.max_codewords)

    @property
    def stream_bytes(self) -> int:
        return len(self.stream)

    @property
    def dictionary_bytes(self) -> int:
        return self.dictionary.size_bytes

    @property
    def total_bytes(self) -> int:
        return self.stream_bytes + self.dictionary_bytes

    # ------------------------------------------------------------------
    @classmethod
    def from_compressed(cls, compressed: CompressedProgram) -> "CompressedImage":
        """Capture a compressor result as a standalone image."""
        program = compressed.program
        encoding = compressed.encoding
        return cls(
            name=program.name,
            encoding_name=encoding.name,
            max_codewords=encoding.capacity,
            dictionary=compressed.dictionary,
            stream=compressed.stream,
            total_units=compressed.total_units(),
            entry_unit=compressed.index_to_unit[program.entry_index],
            text_base=program.text_base,
            data_image=bytes(compressed.data_image),
        )

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        payload = bytearray()
        for text in (self.name, self.encoding_name):
            encoded = text.encode("utf-8")
            if len(encoded) > 255:
                raise CompressionError(f"name too long: {text!r}")
            payload += struct.pack(">B", len(encoded))
            payload += encoded
        payload += struct.pack(
            ">IIII",
            self.max_codewords,
            self.entry_unit,
            self.total_units,
            self.text_base,
        )
        payload += struct.pack(">H", len(self.dictionary))
        for entry in self.dictionary.entries:
            payload += struct.pack(">BI", len(entry.words), entry.uses)
            for word in entry.words:
                payload += struct.pack(">I", word)
        payload += struct.pack(">I", len(self.stream))
        payload += self.stream
        payload += struct.pack(">I", len(self.data_image))
        payload += self.data_image
        out = bytearray()
        out += MAGIC
        out += struct.pack(">B", VERSION)
        out += struct.pack(">I", zlib.crc32(payload))
        out += payload
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CompressedImage":
        view = _Cursor(blob)
        if view.take(4) != MAGIC:
            raise ImageFormatError("not a compressed image (bad magic)")
        version = view.u8()
        if version != VERSION:
            raise ImageFormatError(f"unsupported image version {version}")
        crc = view.u32()
        payload_start = view.position
        name = view.take(view.u8()).decode("utf-8", errors="replace")
        encoding_name = view.take(view.u8()).decode("utf-8", errors="replace")
        max_codewords, entry_unit, total_units, text_base = (
            view.u32(), view.u32(), view.u32(), view.u32(),
        )
        entries = []
        for _ in range(view.u16()):
            length = view.u8()
            uses = view.u32()
            words = tuple(view.u32() for _ in range(length))
            entries.append(DictionaryEntry(words=words, uses=uses))
        stream = view.take(view.u32())
        data_image = view.take(view.u32())
        if view.remaining():
            raise ImageFormatError("trailing bytes in image")
        if zlib.crc32(blob[payload_start:]) != crc:
            raise ImageChecksumError("image checksum mismatch (corrupt bytes)")
        try:
            encoding = make_encoding(encoding_name, max_codewords)
        except CompressionError as exc:
            raise ImageEncodingError(
                f"image names unknown encoding {encoding_name!r}"
            ) from exc
        if len(entries) > encoding.capacity:
            raise ImageCapacityError(
                f"dictionary has {len(entries)} entries but encoding "
                f"{encoding_name!r} addresses at most {encoding.capacity}"
            )
        return cls(
            name=name,
            encoding_name=encoding_name,
            max_codewords=max_codewords,
            dictionary=Dictionary(entries),
            stream=stream,
            total_units=total_units,
            entry_unit=entry_unit,
            text_base=text_base,
            data_image=data_image,
        )


class _Cursor:
    """Minimal big-endian deserialization cursor."""

    def __init__(self, blob: bytes) -> None:
        self._blob = blob
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    def take(self, count: int) -> bytes:
        if self._pos + count > len(self._blob):
            raise ImageFormatError("truncated image")
        chunk = self._blob[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack(">H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def remaining(self) -> int:
        return len(self._blob) - self._pos
