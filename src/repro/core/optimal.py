"""Optimal replacement and near-optimal dictionary search.

The paper (footnote 1, citing [Storer77]) notes that choosing the
dictionary for maximum compression is NP-complete and that "greedy
algorithms are often near-optimal in practice".  This module makes that
claim testable on small programs:

* :func:`optimal_replacement` — given a *fixed* dictionary, compute the
  minimum-size token stream by dynamic programming (the replacement
  subproblem is solvable exactly, unlike dictionary selection);
* :func:`exhaustive_dictionary` — brute-force the dictionary choice
  over the most promising candidates (exponential; only for tiny
  programs and small candidate pools).

The ``ext_greedy_gap`` experiment uses these to measure how far the
greedy heuristic lands from optimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.core.candidates import enumerate_candidates
from repro.core.encodings import Encoding
from repro.linker.program import Program


@dataclass(frozen=True)
class ReplacementPlan:
    """Outcome of exact replacement for one dictionary choice."""

    stream_bits: int
    dictionary_bits: int
    used_entries: tuple[tuple[int, ...], ...]

    @property
    def total_bits(self) -> int:
        return self.stream_bits + self.dictionary_bits


def optimal_replacement(
    program: Program,
    dictionary: list[tuple[int, ...]],
    encoding: Encoding,
    max_entry_len: int = 4,
) -> ReplacementPlan:
    """Minimum-stream-bits replacement for a fixed dictionary (DP).

    ``best[i]`` = minimal bits to encode instructions ``i..n``; at each
    position we either escape the instruction or apply any dictionary
    entry whose occurrence starts here.  Codeword sizes use each
    entry's rank in ``dictionary`` order (caller orders by frequency).
    Only entries actually used are charged dictionary storage.
    """
    candidates = enumerate_candidates(program, max_entry_len=max_entry_len)
    n = len(program.text)
    # occurrence_at[i] = list of (entry_index, length)
    occurrence_at: dict[int, list[tuple[int, int]]] = {}
    for entry_index, entry in enumerate(dictionary):
        candidate = candidates.get(entry)
        if candidate is None:
            continue
        for position in candidate.positions:
            occurrence_at.setdefault(position, []).append(
                (entry_index, len(entry))
            )

    unc = encoding.instruction_bits
    INF = float("inf")
    best: list[float] = [INF] * (n + 1)
    choice: list[tuple[int, int] | None] = [None] * (n + 1)
    best[n] = 0.0
    for i in range(n - 1, -1, -1):
        best[i] = best[i + 1] + unc
        choice[i] = None
        for entry_index, length in occurrence_at.get(i, ()):
            cost = encoding.codeword_bits(entry_index) + best[i + length]
            if cost < best[i]:
                best[i] = cost
                choice[i] = (entry_index, length)

    used: set[int] = set()
    i = 0
    while i < n:
        picked = choice[i]
        if picked is None:
            i += 1
        else:
            used.add(picked[0])
            i += picked[1]

    dictionary_bits = sum(32 * len(dictionary[j]) for j in used)
    return ReplacementPlan(
        stream_bits=int(best[0]),
        dictionary_bits=dictionary_bits,
        used_entries=tuple(dictionary[j] for j in sorted(used)),
    )


@dataclass(frozen=True)
class SearchResult:
    """Best dictionary found by exhaustive search."""

    plan: ReplacementPlan
    dictionary: tuple[tuple[int, ...], ...]
    subsets_tried: int


def exhaustive_dictionary(
    program: Program,
    encoding: Encoding,
    max_entry_len: int = 4,
    pool_size: int = 12,
    max_entries: int | None = None,
) -> SearchResult:
    """Try every subset of the ``pool_size`` most promising candidates.

    Candidates are pre-ranked by their standalone savings potential.
    Exponential in ``pool_size`` — intended for programs of at most a
    few hundred instructions.
    """
    candidates = enumerate_candidates(program, max_entry_len=max_entry_len)
    unc = encoding.instruction_bits
    cheapest = encoding.codeword_bits(0)

    def potential(candidate) -> int:
        return (
            len(candidate.positions) * (candidate.length * unc - cheapest)
            - 32 * candidate.length
        )

    pool = sorted(candidates.values(), key=potential, reverse=True)[:pool_size]
    pool_keys = [candidate.words for candidate in pool]

    best_plan: ReplacementPlan | None = None
    best_dictionary: tuple[tuple[int, ...], ...] = ()
    tried = 0
    limit = max_entries if max_entries is not None else len(pool_keys)
    for count in range(0, limit + 1):
        for subset in combinations(pool_keys, count):
            # Order by (descending) occurrence count so short codewords
            # go to frequent entries, as the encodings assume.
            ordered = sorted(
                subset, key=lambda key: -len(candidates[key].positions)
            )
            plan = optimal_replacement(
                program, list(ordered), encoding, max_entry_len
            )
            tried += 1
            if best_plan is None or plan.total_bits < best_plan.total_bits:
                best_plan = plan
                best_dictionary = tuple(ordered)
    assert best_plan is not None
    return SearchResult(best_plan, best_dictionary, tried)
