"""Static instruction-encoding redundancy analysis (paper Figure 1).

The motivation for the whole technique: compiled programs reuse a small
number of instruction bit patterns heavily.  ``encoding_redundancy``
measures, for one program, what fraction of all static instructions
have an encoding that appears exactly once vs. multiple times, plus the
coverage of the most frequent distinct encodings.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.linker.program import Program


@dataclass(frozen=True)
class RedundancyProfile:
    """Figure 1 metrics for one program."""

    name: str
    total_instructions: int
    distinct_encodings: int
    instructions_with_unique_encoding: int

    @property
    def unique_fraction(self) -> float:
        """Fraction of the program that is single-use encodings."""
        if not self.total_instructions:
            return 0.0
        return self.instructions_with_unique_encoding / self.total_instructions

    @property
    def repeated_fraction(self) -> float:
        """Fraction of the program whose encoding repeats elsewhere."""
        return 1.0 - self.unique_fraction


def encoding_redundancy(program: Program) -> RedundancyProfile:
    """Compute the Figure 1 metrics."""
    words = program.words()
    counts = Counter(words)
    unique = sum(1 for word in words if counts[word] == 1)
    return RedundancyProfile(
        name=program.name,
        total_instructions=len(words),
        distinct_encodings=len(counts),
        instructions_with_unique_encoding=unique,
    )


def coverage_of_top_fraction(program: Program, fraction: float) -> float:
    """What share of the program the most frequent ``fraction`` of
    distinct encodings accounts for (the paper's "1% of the most
    frequent instruction words account for 30% of the go benchmark")."""
    words = program.words()
    counts = Counter(words).most_common()
    take = max(1, int(len(counts) * fraction))
    covered = sum(count for _, count in counts[:take])
    return covered / len(words) if words else 0.0
