"""Token stream: the compressed program before serialization.

After greedy selection, .text becomes a sequence of tokens — codeword
references interspersed with uncompressed instructions (paper Figure
2).  Tokens carry enough provenance (original instruction index, branch
target) for the branch patcher to re-derive every offset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dictionary import Dictionary
from repro.core.greedy import GreedyResult
from repro.errors import CompressionError
from repro.isa.instruction import Instruction
from repro.linker.program import Program


@dataclass
class Token:
    """One item of the compressed instruction stream."""

    kind: str  # 'ins' | 'cw'
    instruction: Instruction | None = None  # for 'ins'
    orig_index: int | None = None  # first original index covered
    length: int = 1  # original instructions covered
    rank: int | None = None  # for 'cw'
    target_index: int | None = None  # branch target (original index)
    token_target: int | None = None  # branch target (token index; relaxation)
    address: int = -1  # alignment units, assigned by layout
    size_units: int = 0

    @property
    def is_branch_token(self) -> bool:
        return self.kind == "ins" and (
            self.target_index is not None or self.token_target is not None
        )


def build_tokens(
    program: Program, result: GreedyResult, dictionary: Dictionary
) -> list[Token]:
    """Interleave codeword references with uncompressed instructions."""
    rank_by_words = {entry.words: rank for rank, entry in enumerate(dictionary.entries)}
    starts = {rep.position: rep for rep in result.replacements}
    tokens: list[Token] = []
    index = 0
    n = len(program.text)
    while index < n:
        rep = starts.get(index)
        if rep is not None:
            tokens.append(
                Token(
                    kind="cw",
                    orig_index=index,
                    length=rep.length,
                    rank=rank_by_words[rep.entry_words],
                )
            )
            index += rep.length
            continue
        ti = program.text[index]
        tokens.append(
            Token(
                kind="ins",
                instruction=ti.instruction,
                orig_index=index,
                length=1,
                target_index=ti.target_index,
            )
        )
        index += 1
    covered = sum(token.length for token in tokens)
    if covered != n:
        raise CompressionError(f"token stream covers {covered} of {n} instructions")
    return tokens
