"""Size accounting for the paper's figures.

:class:`CompressionStats` decomposes a compressed program the way the
paper's evaluation does:

* Figure 9 — uncompressed-instruction bytes, codeword index bytes,
  codeword escape bytes, dictionary bytes;
* Figure 6 — dictionary composition by entry length;
* Figure 7 — bytes removed from the program, grouped by the length of
  the dictionary entry responsible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.compressor import CompressedProgram


@dataclass(frozen=True)
class CompressionStats:
    """Decomposed sizes, all in bytes (bit-exact sums kept in bits)."""

    name: str
    original_bytes: int
    stream_bytes: int
    dictionary_bytes: int
    uncompressed_ins_bits: int
    codeword_index_bits: int
    codeword_escape_bits: int
    codeword_count_static: int  # codeword tokens in the stream
    dictionary_entries: int
    entry_length_histogram: dict[int, int] = field(hash=False, default_factory=dict)
    bytes_saved_by_length: dict[int, float] = field(hash=False, default_factory=dict)

    @property
    def compressed_bytes(self) -> int:
        return self.stream_bytes + self.dictionary_bytes

    @property
    def compression_ratio(self) -> float:
        """Paper equation 1: compressed size / original size."""
        return self.compressed_bytes / self.original_bytes

    # Figure 9 fractions (of the final compressed program size).
    def composition_fractions(self) -> dict[str, float]:
        total_bits = 8 * self.compressed_bytes
        return {
            "uncompressed_instructions": self.uncompressed_ins_bits / total_bits,
            "codeword_index": self.codeword_index_bits / total_bits,
            "codeword_escape": self.codeword_escape_bits / total_bits,
            "dictionary": 8 * self.dictionary_bytes / total_bits,
        }

    def savings_fraction_by_length(self) -> dict[int, float]:
        """Figure 7: program bytes removed, as fraction of original."""
        return {
            length: saved / self.original_bytes
            for length, saved in sorted(self.bytes_saved_by_length.items())
        }


def collect_stats(compressed: CompressedProgram) -> CompressionStats:
    """Measure a compressed program."""
    encoding = compressed.encoding
    uncompressed_bits = 0
    index_bits = 0
    escape_bits = 0
    codeword_tokens = 0
    for token in compressed.tokens:
        if token.kind == "cw":
            assert token.rank is not None
            codeword_tokens += 1
            total = encoding.codeword_bits(token.rank)
            escape = encoding.escape_bits(token.rank)
            escape_bits += escape
            index_bits += total - escape
        else:
            uncompressed_bits += encoding.instruction_bits

    saved_by_length: dict[int, float] = {}
    dictionary = compressed.dictionary
    for token in compressed.tokens:
        if token.kind != "cw":
            continue
        assert token.rank is not None
        entry = dictionary[token.rank]
        saved_bits = entry.length * encoding.instruction_bits - encoding.codeword_bits(
            token.rank
        )
        saved_by_length[entry.length] = (
            saved_by_length.get(entry.length, 0.0) + saved_bits / 8.0
        )
    # Charge each entry's dictionary storage against its length class.
    for entry in dictionary.entries:
        saved_by_length[entry.length] = (
            saved_by_length.get(entry.length, 0.0) - entry.size_bytes
        )

    return CompressionStats(
        name=compressed.program.name,
        original_bytes=compressed.original_bytes,
        stream_bytes=compressed.stream_bytes,
        dictionary_bytes=compressed.dictionary_bytes,
        uncompressed_ins_bits=uncompressed_bits,
        codeword_index_bits=index_bits,
        codeword_escape_bits=escape_bits,
        codeword_count_static=codeword_tokens,
        dictionary_entries=len(dictionary),
        entry_length_histogram=dictionary.length_histogram(),
        bytes_saved_by_length=saved_by_length,
    )
