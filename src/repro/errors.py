"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without masking programming errors (``TypeError``,
``KeyError`` from their own code, and so on).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class EncodingError(ReproError):
    """An instruction could not be encoded (bad field value, unknown form)."""


class DecodingError(ReproError):
    """A 32-bit word does not decode to a known instruction."""


class AssemblerError(ReproError):
    """Assembly text could not be parsed or resolved."""


class CompileError(ReproError):
    """MiniC source failed to compile."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LinkError(ReproError):
    """Object files could not be linked into a program."""


class CompressionError(ReproError):
    """The compressor was misconfigured or hit an internal inconsistency."""


class BranchRangeError(CompressionError):
    """A branch offset could not be patched and no spill strategy applied."""


class ServiceError(ReproError):
    """The batch compression service failed (bad job spec, pool failure)."""


class SimulationError(ReproError):
    """The machine simulator hit an illegal state (bad PC, unknown opcode)."""


class DecompressionError(SimulationError):
    """The compressed-fetch engine saw an invalid codeword or stream."""
