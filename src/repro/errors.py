"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without masking programming errors (``TypeError``,
``KeyError`` from their own code, and so on).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class EncodingError(ReproError):
    """An instruction could not be encoded (bad field value, unknown form)."""


class DecodingError(ReproError):
    """A 32-bit word does not decode to a known instruction."""


class AssemblerError(ReproError):
    """Assembly text could not be parsed or resolved."""


class CompileError(ReproError):
    """MiniC source failed to compile."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LinkError(ReproError):
    """Object files could not be linked into a program."""


class CompressionError(ReproError):
    """The compressor was misconfigured or hit an internal inconsistency."""


class BranchRangeError(CompressionError):
    """A branch offset could not be patched and no spill strategy applied."""


class ServiceError(ReproError):
    """The batch compression service failed (bad job spec, pool failure)."""


class TransientError(ServiceError):
    """A failure that is expected to succeed on retry.

    Raised for worker deaths, injected chaos faults, and dropped
    connections — conditions where the *work* is fine but the attempt
    died.  The server's job loop and :class:`repro.client.ReproClient`
    both key their retry decisions on this type.
    """


class VerificationError(ReproError):
    """Differential or invariant verification found a real divergence."""


class SimulationError(ReproError):
    """The machine simulator hit an illegal state (bad PC, unknown opcode).

    Mid-stream failures carry structured location fields so callers
    (the ``repro.verify`` classifiers, the CLIs) can report *where* the
    machine died, not just why:

    * ``unit_address`` — compressed-stream alignment-unit address of
      the failing item, when the compressed fetch engine was active;
    * ``orig_pc`` — byte address in the original uncompressed program,
      when the simulator can map the failure back;
    * ``step`` — committed instruction count at the time of failure.

    The location is also appended to the message, so plain ``str(exc)``
    (what ``repro-compress``/``repro-serve`` print) includes it.
    """

    def __init__(
        self,
        message: str,
        *,
        unit_address: int | None = None,
        orig_pc: int | None = None,
        step: int | None = None,
    ) -> None:
        self.unit_address = unit_address
        self.orig_pc = orig_pc
        self.step = step
        location = self.location()
        super().__init__(f"{message} [{location}]" if location else message)

    def location(self) -> str:
        """Human-readable "unit N, orig PC 0x..., step M" fragment."""
        parts = []
        if self.unit_address is not None:
            parts.append(f"unit {self.unit_address}")
        if self.orig_pc is not None:
            parts.append(f"orig PC {self.orig_pc:#x}")
        if self.step is not None:
            parts.append(f"step {self.step}")
        return ", ".join(parts)


class DecompressionError(SimulationError):
    """The compressed-fetch engine saw an invalid codeword or stream."""
