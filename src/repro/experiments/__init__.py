"""Experiment harness: one module per table/figure in the paper.

Every module exposes ``run(scale)`` returning structured rows and
``render(rows)`` returning the text table.  :data:`REGISTRY` maps
experiment ids to their implementations; ``repro-experiments`` (see
:mod:`cli`) runs them from the command line, and each has a matching
pytest-benchmark target under ``benchmarks/``.
"""

from repro.experiments.registry import REGISTRY, run_experiment

__all__ = ["REGISTRY", "run_experiment"]
