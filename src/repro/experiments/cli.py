"""Command-line entry point: ``repro-experiments [ids...] [--scale X]``.

Runs the requested experiments (default: all of them, in paper order)
and prints their tables, regenerating the paper's evaluation section.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import REGISTRY

_PAPER_ORDER = [
    "fig1", "table1", "fig4", "fig5", "table2", "fig6", "fig7", "fig8",
    "fig9", "fig11", "table3", "ext_baselines", "ext_prologue", "ext_fetch",
    "ext_icache", "ext_canon", "ext_greedy_gap", "ext_optlevel",
    "ext_dynamic", "ext_encoding_search", "ext_thumb", "ext_speed",
    "ext_ccrp", "ext_shared_dict", "ext_dict_content",
]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        default=[],
        help=f"experiment ids (default: all). Known: {', '.join(_PAPER_ORDER)}",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (1.0 = ~1/8 of SPEC CINT95 sizes)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in _PAPER_ORDER:
            print(f"{experiment_id:15s} {REGISTRY[experiment_id].title}")
        return 0

    ids = args.ids or _PAPER_ORDER
    for experiment_id in ids:
        if experiment_id not in REGISTRY:
            print(f"unknown experiment {experiment_id!r}", file=sys.stderr)
            return 2
        start = time.time()
        print(REGISTRY[experiment_id].run_and_render(args.scale))
        print(f"[{experiment_id} took {time.time() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
