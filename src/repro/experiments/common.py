"""Shared helpers for experiment modules."""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence

from repro.linker.program import Program
from repro.workloads import BENCHMARK_NAMES, build_benchmark


def default_scale() -> float:
    """Suite scale, overridable via REPRO_SCALE (tests use small scales)."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def suite_programs(scale: float | None = None) -> dict[str, Program]:
    """The eight benchmarks at the requested scale (cached upstream)."""
    if scale is None:
        scale = default_scale()
    return {name: build_benchmark(name, scale) for name in BENCHMARK_NAMES}


_SERVICE_CACHE = None


def service_cache():
    """The experiments' shared artifact cache, or ``None`` when disabled.

    Set ``REPRO_CACHE_DIR`` to a directory to make repeated experiment
    and batch runs reuse compressed artifacts across processes.  The
    cache is process-memoized so every caller shares the LRU front.
    """
    global _SERVICE_CACHE
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    if not cache_dir:
        return None
    if _SERVICE_CACHE is None or str(_SERVICE_CACHE.root) != cache_dir:
        from repro.service import ArtifactCache

        _SERVICE_CACHE = ArtifactCache(cache_dir)
    return _SERVICE_CACHE


def suite_batch(
    encodings: Sequence[str],
    scale: float | None = None,
    *,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    processes: int = 0,
    cache=None,
    metrics=None,
):
    """Compress the suite through the service layer (cache-aware).

    Returns the :class:`repro.service.JobResult` list in
    ``benchmarks × encodings`` order.  When ``cache`` is omitted the
    ``REPRO_CACHE_DIR`` cache (if configured) is used, so repeated
    sweeps over the same suite hit warm artifacts instead of
    recompiling and recompressing from scratch.
    """
    from repro.service import CompressionJob, run_batch

    if scale is None:
        scale = default_scale()
    jobs = [
        CompressionJob(benchmark=name, scale=scale, encoding=encoding)
        for name in benchmarks
        for encoding in encodings
    ]
    return run_batch(
        jobs,
        cache=cache if cache is not None else service_cache(),
        processes=processes,
        metrics=metrics,
    )


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table in the style of the paper's tables."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in materialized:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def pct(value: float) -> str:
    return f"{100.0 * value:.1f}%"
