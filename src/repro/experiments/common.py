"""Shared helpers for experiment modules."""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence

from repro.linker.program import Program
from repro.workloads import BENCHMARK_NAMES, build_benchmark


def default_scale() -> float:
    """Suite scale, overridable via REPRO_SCALE (tests use small scales)."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def suite_programs(scale: float | None = None) -> dict[str, Program]:
    """The eight benchmarks at the requested scale (cached upstream)."""
    if scale is None:
        scale = default_scale()
    return {name: build_benchmark(name, scale) for name in BENCHMARK_NAMES}


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table in the style of the paper's tables."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in materialized:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def pct(value: float) -> str:
    return f"{100.0 * value:.1f}%"
