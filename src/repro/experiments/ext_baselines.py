"""Extension: head-to-head against the related-work schemes.

Places the paper's encodings alongside reimplementations of the
comparison points from sections 2.3 and 2.4: CCRP-style Huffman over
bytes (with line-refill + LAT overhead), Liao's call-dictionary with
1- and 2-word codewords, and the software mini-subroutine transform.
Expected ordering: nibble < baseline <= Liao-1 < mini-subroutine, and
CCRP's whole-text Huffman sits near the baseline while its line-mode
padding + LAT costs push it well above.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import ccrp_compress, huffman_compress_bytes, liao_compress, minisub_compress
from repro.core import BaselineEncoding, NibbleEncoding, compress
from repro.experiments.common import pct, render_table, suite_programs

TITLE = "Extension: dictionary compression vs related-work schemes"


@dataclass(frozen=True)
class Row:
    name: str
    nibble: float
    baseline: float
    liao1: float
    liao2: float
    minisub: float
    huffman: float
    ccrp_line: float


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, program in suite_programs(scale).items():
        text = program.text_bytes()
        rows.append(
            Row(
                name=name,
                nibble=compress(program, NibbleEncoding()).compression_ratio,
                baseline=compress(program, BaselineEncoding()).compression_ratio,
                liao1=liao_compress(program, 1).compression_ratio,
                liao2=liao_compress(program, 2).compression_ratio,
                minisub=minisub_compress(program).compression_ratio,
                huffman=huffman_compress_bytes(text).compressed_bytes / len(text),
                ccrp_line=ccrp_compress(text).compressed_bytes / len(text),
            )
        )
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench", "nibble", "baseline", "liao-1", "liao-2", "minisub",
         "huffman", "ccrp-line"],
        [
            (row.name, pct(row.nibble), pct(row.baseline), pct(row.liao1),
             pct(row.liao2), pct(row.minisub), pct(row.huffman),
             pct(row.ccrp_line))
            for row in rows
        ],
        title=TITLE,
    )
