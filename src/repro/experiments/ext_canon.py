"""Extension: register-canonicalization headroom (paper section 5).

For each benchmark: how many distinct instruction sequences collapse
together if register numbers are renamed canonically — the upper bound
on the paper's "allocate registers so that common sequences use the
same registers" proposal.
"""

from __future__ import annotations

from repro.core.canon import CanonicalizationReport, analyze
from repro.core.encodings import BaselineEncoding
from repro.experiments.common import render_table, suite_programs

TITLE = "Extension: register canonicalization headroom (entries <= 4)"


def run(scale: float | None = None) -> list[CanonicalizationReport]:
    encoding = BaselineEncoding()
    return [
        analyze(program, encoding)
        for program in suite_programs(scale).values()
    ]


def render(rows: list[CanonicalizationReport]) -> str:
    return render_table(
        ["bench", "distinct exact", "distinct canonical", "merge factor",
         "rescued occurrences", "extra savings bound"],
        [
            (
                row.name,
                row.distinct_exact,
                row.distinct_canonical,
                f"{row.merge_factor:.2f}x",
                row.rescued_occurrences,
                f"{row.extra_savings_bound_bytes:.0f}B",
            )
            for row in rows
        ],
        title=TITLE,
    )
