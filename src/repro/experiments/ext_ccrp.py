"""Extension: CCRP measured end to end (paper section 2.3).

Runs the actual CCRP codec (line-granular Huffman + LAT) against the
dictionary method on both axes the paper argues about:

* **size** — CCRP pays per-line padding and a LAT; the dictionary
  method pays its dictionary but no LAT (branches are re-patched);
* **decode work** — on every refill CCRP's decoder walks Huffman bits
  serially, while a codeword is "a constant time table lookup"; we
  count CCRP's decoded bits per 1k instructions next to the dictionary
  machine's codeword expansions per 1k instructions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.ccrp_codec import ccrp_decode_all, ccrp_encode, ccrp_fetch_stats
from repro.core import NibbleEncoding, compress
from repro.experiments.common import pct, render_table, suite_programs
from repro.machine.compressed_sim import CompressedSimulator

TITLE = "Extension: CCRP (line Huffman + LAT) vs dictionary, size and decode work"
CACHE_SIZE = 1024
LINE_BYTES = 32


@dataclass(frozen=True)
class Row:
    name: str
    nibble_ratio: float
    ccrp_ratio: float
    ccrp_decode_bits_per_ki: float
    dict_expansions_per_ki: float


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, program in suite_programs(scale).items():
        text = program.text_bytes()
        image = ccrp_encode(text, LINE_BYTES)
        if ccrp_decode_all(image) != text:  # pragma: no cover - codec check
            raise AssertionError(f"{name}: CCRP codec round-trip failed")
        stats = ccrp_fetch_stats(program, CACHE_SIZE, LINE_BYTES)

        compressed = compress(program, NibbleEncoding())
        simulator = CompressedSimulator(compressed)
        simulator.run()
        expansions_per_ki = (
            1000.0
            * simulator.stats.codeword_expansions
            / max(simulator.stats.instructions_issued, 1)
        )
        rows.append(
            Row(
                name=name,
                nibble_ratio=compressed.compression_ratio,
                ccrp_ratio=image.compression_ratio,
                ccrp_decode_bits_per_ki=stats.decode_bits_per_kilo_instruction,
                dict_expansions_per_ki=expansions_per_ki,
            )
        )
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench", "nibble ratio", "ccrp ratio", "ccrp bits/1k insn",
         "dict expansions/1k insn"],
        [
            (
                row.name,
                pct(row.nibble_ratio),
                pct(row.ccrp_ratio),
                f"{row.ccrp_decode_bits_per_ki:.1f}",
                f"{row.dict_expansions_per_ki:.1f}",
            )
            for row in rows
        ],
        title=TITLE,
    )
