"""Extension: what the dictionary actually contains.

The paper's Figures 6/7 count entries by *length*; this experiment
classifies them by the *kind of work* their instructions do — address
formation, register moves, constants, memory access, compares, returns,
ALU — weighted by each entry's contribution (uses × length).  It makes
the section 1.1 story concrete: the compressible fabric of compiled
code is the SDTS boilerplate around the computation, not the
computation itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import NibbleEncoding, compress
from repro.core.analysis import analyze_dictionary
from repro.experiments.common import pct, render_table, suite_programs

TITLE = "Extension: dictionary content mix (nibble, weighted by uses x length)"
CLASSES = (
    "address", "move", "constant", "memory", "compare", "alu",
    "return", "branch", "system",
)


@dataclass(frozen=True)
class Row:
    name: str
    mix: dict[str, float]


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, program in suite_programs(scale).items():
        compressed = compress(program, NibbleEncoding())
        report = analyze_dictionary(name, compressed.dictionary)
        rows.append(Row(name, report.class_mix_by_savings()))
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench"] + list(CLASSES),
        [
            tuple([row.name] + [pct(row.mix.get(cls, 0.0)) for cls in CLASSES])
            for row in rows
        ],
        title=TITLE,
    )
