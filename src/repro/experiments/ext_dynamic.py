"""Extension: profile-guided dictionary selection.

The paper optimizes *static* size; its future work asks about
performance.  When the fetch path is the concern, the greedy objective
can weight each occurrence by its dynamic execution count instead of
counting it once.  This experiment compares, per benchmark:

* the **size-optimized** dictionary (the paper's objective), and
* the **traffic-optimized** dictionary (occurrences weighted by an
  execution profile),

on both axes: static compression ratio and bytes fetched per run.
Expected Pareto trade: the traffic dictionary fetches less but the
image is a little larger.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import NibbleEncoding, compress
from repro.experiments.common import pct, render_table, suite_programs
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.simulator import profile_program

TITLE = "Extension: size-optimized vs profile-guided dictionaries (nibble)"


@dataclass(frozen=True)
class Row:
    name: str
    size_ratio: float
    traffic_ratio_static: float  # static ratio of the traffic-optimized build
    size_fetch_bytes: float
    traffic_fetch_bytes: float

    @property
    def fetch_improvement(self) -> float:
        """Fetch bytes saved by profiling, relative to size-optimized."""
        if not self.size_fetch_bytes:
            return 0.0
        return 1.0 - self.traffic_fetch_bytes / self.size_fetch_bytes


def _fetch_bytes(compressed) -> float:
    simulator = CompressedSimulator(compressed)
    simulator.run()
    return simulator.stats.bytes_fetched(compressed.encoding.alignment_bits)


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, program in suite_programs(scale).items():
        profile = profile_program(program)
        size_optimized = compress(program, NibbleEncoding())
        traffic_optimized = compress(
            program, NibbleEncoding(), position_weights=profile
        )
        rows.append(
            Row(
                name=name,
                size_ratio=size_optimized.compression_ratio,
                traffic_ratio_static=traffic_optimized.compression_ratio,
                size_fetch_bytes=_fetch_bytes(size_optimized),
                traffic_fetch_bytes=_fetch_bytes(traffic_optimized),
            )
        )
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench", "size-opt ratio", "traffic-opt ratio", "size-opt fetch",
         "traffic-opt fetch", "fetch saved"],
        [
            (
                row.name,
                pct(row.size_ratio),
                pct(row.traffic_ratio_static),
                f"{row.size_fetch_bytes:.0f}",
                f"{row.traffic_fetch_bytes:.0f}",
                pct(row.fetch_improvement),
            )
            for row in rows
        ],
        title=TITLE,
    )
