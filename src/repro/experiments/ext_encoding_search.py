"""Extension: searching the nibble-allocation design space.

The paper presents one first-nibble allocation (Figure 10) as "the best
encoding choice we have discovered" and notes that "other programs may
benefit from different encodings".  This experiment makes that search
concrete: with the dictionary fixed (from a standard nibble run), it
re-costs the stream under **every** feasible split of the 15 available
first-nibble values among 1/2/3/4-nibble codeword bands and reports the
best allocation per benchmark.

Fixing the dictionary makes each allocation a cheap arithmetic
re-costing (the greedy selection is not repeated), so the reported
gains are a slight *underestimate* of a full per-allocation rerun.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.core import NibbleEncoding, compress
from repro.experiments.common import pct, render_table, suite_programs

TITLE = "Extension: nibble first-nibble allocation search (fixed dictionary)"

FIGURE10 = (8, 4, 2, 1)  # one/two/three/four-nibble first-value counts


def _all_allocations():
    """Every (n1, n2, n3, n4) with n1+n2+n3+n4 = 15."""
    for n1, n2, n3 in product(range(16), repeat=3):
        n4 = 15 - n1 - n2 - n3
        if n4 >= 0:
            yield (n1, n2, n3, n4)


def _capacity(allocation) -> int:
    n1, n2, n3, n4 = allocation
    return n1 + 16 * n2 + 256 * n3 + 4096 * n4


def _band_bits(allocation):
    """rank -> bits lookup data: list of (band_size, bits)."""
    n1, n2, n3, n4 = allocation
    return [
        (n1, 4), (16 * n2, 8), (256 * n3, 12), (4096 * n4, 16),
    ]


def _stream_bits(allocation, rank_uses, rank_lengths, escaped_instructions):
    """Total bits for the fixed token stream under ``allocation``.

    Entries whose rank exceeds the allocation's capacity revert to
    escaped instructions (their dictionary storage is refunded).
    """
    bands = _band_bits(allocation)
    bits = 36 * escaped_instructions
    base = 0
    band_index = 0
    remaining_in_band = bands[0][0]
    for rank, uses in enumerate(rank_uses):
        while band_index < len(bands) and remaining_in_band == 0:
            band_index += 1
            remaining_in_band = bands[band_index][0] if band_index < len(bands) else 0
        if band_index >= len(bands):
            # Out of codeword space: occurrences revert to escapes.
            bits += uses * 36 * rank_lengths[rank]
            continue
        bits += uses * bands[band_index][1]
        bits += 32 * rank_lengths[rank]  # dictionary storage
        remaining_in_band -= 1
    return bits


@dataclass(frozen=True)
class Row:
    name: str
    figure10_ratio: float
    best_ratio: float
    best_allocation: tuple[int, int, int, int]
    allocations_tried: int

    @property
    def improvement_points(self) -> float:
        return 100.0 * (self.figure10_ratio - self.best_ratio)


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, program in suite_programs(scale).items():
        compressed = compress(program, NibbleEncoding())
        # Token statistics with ranks in dictionary order.
        rank_uses = [0] * len(compressed.dictionary)
        escaped = 0
        for token in compressed.tokens:
            if token.kind == "cw":
                rank_uses[token.rank] += 1
            else:
                escaped += 1
        rank_lengths = [entry.length for entry in compressed.dictionary.entries]
        original_bits = 8.0 * program.text_size

        best_ratio = None
        best_allocation = FIGURE10
        tried = 0
        for allocation in _all_allocations():
            tried += 1
            bits = _stream_bits(allocation, rank_uses, rank_lengths, escaped)
            ratio = bits / original_bits
            if best_ratio is None or ratio < best_ratio:
                best_ratio = ratio
                best_allocation = allocation
        figure10_bits = _stream_bits(FIGURE10, rank_uses, rank_lengths, escaped)
        rows.append(
            Row(
                name=name,
                figure10_ratio=figure10_bits / original_bits,
                best_ratio=best_ratio,
                best_allocation=best_allocation,
                allocations_tried=tried,
            )
        )
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench", "Fig10 ratio", "best ratio", "best (n1,n2,n3,n4)",
         "gain (pts)", "tried"],
        [
            (
                row.name,
                pct(row.figure10_ratio),
                pct(row.best_ratio),
                str(row.best_allocation),
                f"{row.improvement_points:.2f}",
                row.allocations_tried,
            )
            for row in rows
        ],
        title=TITLE,
    )
