"""Extension: fetch-path traffic of the compressed processor.

The paper's section 5 plans to "explore the performance aspects" of
compression; [Chen97b] argues smaller programs reduce instruction-fetch
bandwidth.  This experiment runs each benchmark on both simulators and
compares bytes fetched from program memory per instruction issued.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import NibbleEncoding, compress
from repro.experiments.common import render_table, suite_programs
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.simulator import run_program

TITLE = "Extension: fetch traffic, uncompressed vs compressed (nibble)"


@dataclass(frozen=True)
class Row:
    name: str
    instructions_issued: int
    uncompressed_fetch_bytes: int
    compressed_fetch_bytes: float
    codeword_expansions: int

    @property
    def traffic_ratio(self) -> float:
        return self.compressed_fetch_bytes / self.uncompressed_fetch_bytes


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, program in suite_programs(scale).items():
        reference = run_program(program)
        compressed = compress(program, NibbleEncoding())
        simulator = CompressedSimulator(compressed)
        result = simulator.run()
        if result.output_text != reference.output_text:
            raise AssertionError(f"{name}: compressed run diverged")
        rows.append(
            Row(
                name=name,
                instructions_issued=simulator.stats.instructions_issued,
                uncompressed_fetch_bytes=4 * reference.steps,
                compressed_fetch_bytes=simulator.stats.bytes_fetched(
                    compressed.encoding.alignment_bits
                ),
                codeword_expansions=simulator.stats.codeword_expansions,
            )
        )
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench", "issued", "fetch bytes (uncomp)", "fetch bytes (comp)",
         "traffic ratio", "cw expansions"],
        [
            (
                row.name,
                row.instructions_issued,
                row.uncompressed_fetch_bytes,
                f"{row.compressed_fetch_bytes:.0f}",
                f"{row.traffic_ratio:.2f}",
                row.codeword_expansions,
            )
            for row in rows
        ],
        title=TITLE,
    )
