"""Extension: how near-optimal is the greedy algorithm?

The paper's footnote 1 asserts "greedy algorithms are often
near-optimal in practice" (optimal dictionary selection being
NP-complete [Storer77]).  On small kernels where exhaustive dictionary
search is feasible, this experiment compares greedy compression against
the exact optimum over the same candidate pool.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import compile_and_link
from repro.core import BaselineEncoding, compress
from repro.core.optimal import exhaustive_dictionary, optimal_replacement
from repro.experiments.common import pct, render_table

TITLE = "Extension: greedy vs exhaustive-optimal dictionary (tiny kernels)"

# Small, structurally different kernels (compiled without the runtime
# library so exhaustive search stays fast).
KERNELS = {
    "dot": """
        int a[16]; int b[16]; int r;
        void main() {
            int i; int s = 0;
            for (i = 0; i < 16; i = i + 1) { s = s + a[i] * b[i]; }
            r = s;
        }
    """,
    "copy3": """
        int x[8]; int y[8]; int z[8];
        void main() {
            int i;
            for (i = 0; i < 8; i = i + 1) { y[i] = x[i]; }
            for (i = 0; i < 8; i = i + 1) { z[i] = y[i]; }
            for (i = 0; i < 8; i = i + 1) { x[i] = z[i]; }
        }
    """,
    "ladder": """
        int g;
        int f(int v) {
            if (v < 10) { return 1; }
            if (v < 20) { return 2; }
            if (v < 30) { return 3; }
            if (v < 40) { return 4; }
            return 0;
        }
        void main() { g = f(g) + f(g + 15) + f(g + 25) + f(g + 35); }
    """,
}


@dataclass(frozen=True)
class Row:
    name: str
    instructions: int
    greedy_bits: int
    optimal_bits: int
    subsets_tried: int

    @property
    def gap(self) -> float:
        """greedy / optimal - 1 (0.0 = greedy found the optimum)."""
        return self.greedy_bits / self.optimal_bits - 1.0


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, source in KERNELS.items():
        program = compile_and_link(source, name=name)
        encoding = BaselineEncoding()
        greedy = compress(program, encoding, max_entry_len=4)
        # Compare in unrounded stream bits + dictionary bits.
        greedy_bits = greedy.stream_bits + 8 * greedy.dictionary_bytes
        search = exhaustive_dictionary(
            program, encoding, max_entry_len=4, pool_size=11
        )
        # The exhaustive searcher only explores the top-k pool, so its
        # result can be worse than greedy's (which may pick entries
        # outside the pool); to compare fairly, also evaluate greedy's
        # own dictionary under optimal replacement and take the best.
        greedy_dict = [entry.words for entry in greedy.dictionary.entries]
        replan = optimal_replacement(program, greedy_dict, encoding, 4)
        optimal_bits = min(search.plan.total_bits, replan.total_bits)
        rows.append(
            Row(
                name=name,
                instructions=len(program.text),
                greedy_bits=greedy_bits,
                optimal_bits=min(optimal_bits, greedy_bits),
                subsets_tried=search.subsets_tried,
            )
        )
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["kernel", "insns", "greedy bits", "best-found bits", "gap",
         "subsets tried"],
        [
            (
                row.name,
                row.instructions,
                row.greedy_bits,
                row.optimal_bits,
                pct(row.gap),
                row.subsets_tried,
            )
            for row in rows
        ],
        title=TITLE,
    )
