"""Extension: I-cache miss rates, uncompressed vs compressed.

The paper's introduction argues compression also helps high-performance
systems by reducing instruction-cache misses ([Perl96]'s bandwidth-
limited SQL server, [Chen97b]).  This experiment runs each benchmark's
dynamic instruction stream through identical set-associative caches —
once fetching 4-byte instructions at their uncompressed addresses, once
fetching codewords at their compressed addresses — and compares miss
rates across cache sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import NibbleEncoding, compress
from repro.experiments.common import render_table, suite_programs
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.icache import InstructionCache, attach_to_simulator
from repro.machine.simulator import Simulator

TITLE = "Extension: I-cache miss rate, uncompressed vs compressed (nibble)"
CACHE_SIZES = (256, 512, 1024, 2048)
LINE_BYTES = 16
ASSOC = 2


@dataclass(frozen=True)
class Row:
    name: str
    miss_rates: dict[int, tuple[float, float]]  # size -> (uncomp, comp)


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, program in suite_programs(scale).items():
        compressed = compress(program, NibbleEncoding())
        rates: dict[int, tuple[float, float]] = {}
        for size in CACHE_SIZES:
            plain = Simulator(program)
            plain_cache = attach_to_simulator(
                plain, InstructionCache(size, LINE_BYTES, ASSOC), 32
            )
            plain.run()

            packed = CompressedSimulator(compressed)
            packed_cache = attach_to_simulator(
                packed,
                InstructionCache(size, LINE_BYTES, ASSOC),
                compressed.encoding.alignment_bits,
            )
            packed.run()
            rates[size] = (
                plain_cache.stats.miss_rate,
                packed_cache.stats.miss_rate,
            )
        rows.append(Row(name, rates))
    return rows


def render(rows: list[Row]) -> str:
    headers = ["bench"]
    for size in CACHE_SIZES:
        headers += [f"{size}B unc", f"{size}B cmp"]
    table = []
    for row in rows:
        cells = [row.name]
        for size in CACHE_SIZES:
            uncompressed, compressed = row.miss_rates[size]
            cells += [f"{100 * uncompressed:.2f}%", f"{100 * compressed:.2f}%"]
        table.append(tuple(cells))
    return render_table(headers, table, title=TITLE)
