"""Extension: interaction of compiler optimization and compression.

The paper compiled at -O2 without inlining/unrolling because those
"tend to increase code size".  This experiment asks the complementary
question: how does *disabling* optimization interact with compression?
Unoptimized code is bigger but more stereotyped, so it compresses
harder — does compression close the O0/O2 size gap?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import compile_and_link
from repro.compiler.driver import CompileOptions
from repro.core import NibbleEncoding, compress
from repro.experiments.common import default_scale, pct, render_table
from repro.workloads import BENCHMARK_NAMES, benchmark_source

TITLE = "Extension: optimization level vs compression (nibble encoding)"


@dataclass(frozen=True)
class Row:
    name: str
    o2_text: int
    o0_text: int
    o2_compressed: int
    o0_compressed: int

    @property
    def text_inflation(self) -> float:
        return self.o0_text / self.o2_text

    @property
    def compressed_inflation(self) -> float:
        return self.o0_compressed / self.o2_compressed

    @property
    def o0_ratio(self) -> float:
        return self.o0_compressed / self.o0_text

    @property
    def o2_ratio(self) -> float:
        return self.o2_compressed / self.o2_text


def run(scale: float | None = None) -> list[Row]:
    if scale is None:
        scale = default_scale()
    rows = []
    for name in BENCHMARK_NAMES:
        source = benchmark_source(name, scale)
        o2 = compile_and_link(source, name=name)
        o0 = compile_and_link(
            source, name=name, options=CompileOptions(opt_level=0)
        )
        rows.append(
            Row(
                name=name,
                o2_text=o2.text_size,
                o0_text=o0.text_size,
                o2_compressed=compress(o2, NibbleEncoding()).compressed_bytes,
                o0_compressed=compress(o0, NibbleEncoding()).compressed_bytes,
            )
        )
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench", "O2 text", "O0 text", "O0/O2 text", "O2 ratio", "O0 ratio",
         "O0/O2 compressed"],
        [
            (
                row.name,
                row.o2_text,
                row.o0_text,
                f"{row.text_inflation:.2f}x",
                pct(row.o2_ratio),
                pct(row.o0_ratio),
                f"{row.compressed_inflation:.2f}x",
            )
            for row in rows
        ],
        title=TITLE,
    )
