"""Extension: standardized prologue/epilogue ablation (paper section 5).

The paper proposes that the compiler could standardize the function
prologue (always save all callee-saved registers) so that every
prologue compresses to a single codeword, trading pre-compression size
for compressibility.  This experiment compiles each benchmark both
ways and compares post-compression sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import NibbleEncoding, compress
from repro.experiments.common import default_scale, pct, render_table
from repro.workloads import BENCHMARK_NAMES, build_benchmark

TITLE = "Extension: standardized prologue/epilogue ablation (nibble encoding)"


@dataclass(frozen=True)
class Row:
    name: str
    normal_text_bytes: int
    standard_text_bytes: int
    normal_compressed: int
    standard_compressed: int

    @property
    def normal_ratio(self) -> float:
        return self.normal_compressed / self.normal_text_bytes

    @property
    def standard_ratio(self) -> float:
        # Ratio against the *normal* original size: did the trade pay
        # off end to end?
        return self.standard_compressed / self.normal_text_bytes


def run(scale: float | None = None) -> list[Row]:
    if scale is None:
        scale = default_scale()
    rows = []
    for name in BENCHMARK_NAMES:
        normal = build_benchmark(name, scale)
        standard = build_benchmark(name, scale, standardize_prologue=True)
        rows.append(
            Row(
                name=name,
                normal_text_bytes=normal.text_size,
                standard_text_bytes=standard.text_size,
                normal_compressed=compress(normal, NibbleEncoding()).compressed_bytes,
                standard_compressed=compress(
                    standard, NibbleEncoding()
                ).compressed_bytes,
            )
        )
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench", "text (normal)", "text (std)", "compressed (normal)",
         "compressed (std)", "ratio normal", "ratio std"],
        [
            (
                row.name,
                row.normal_text_bytes,
                row.standard_text_bytes,
                row.normal_compressed,
                row.standard_compressed,
                pct(row.normal_ratio),
                pct(row.standard_ratio),
            )
            for row in rows
        ],
        title=TITLE,
    )
