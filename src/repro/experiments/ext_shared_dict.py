"""Extension: per-program vs shared dictionaries.

The paper's key argument against Thumb/MIPS16 (section 2.2): "we derive
our codewords and dictionary from the specific characteristics of the
program under execution", where the fixed ISAs bake one compromise
subset into silicon.  This experiment quantifies the value of that
adaptivity: build one *shared* dictionary from the whole suite's
candidate statistics, apply it to each benchmark with exact
(DP-optimal) replacement, and compare against each benchmark's own
dictionary of the same size.

Per-program dictionaries should win on every benchmark — that gap *is*
the paper's adaptivity argument, measured.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core import BaselineEncoding, compress
from repro.core.candidates import enumerate_candidates
from repro.core.optimal import optimal_replacement
from repro.experiments.common import pct, render_table, suite_programs

TITLE = "Extension: per-program vs suite-shared dictionary (baseline, 256 codewords)"
DICT_SIZE = 256
MAX_ENTRY_LEN = 4


@dataclass(frozen=True)
class Row:
    name: str
    own_ratio: float
    shared_ratio: float

    @property
    def adaptivity_points(self) -> float:
        return 100.0 * (self.shared_ratio - self.own_ratio)


def _shared_dictionary(programs, encoding) -> list[tuple[int, ...]]:
    """Top sequences by total savings potential across the suite."""
    totals: Counter[tuple[int, ...]] = Counter()
    for program in programs:
        for key, candidate in enumerate_candidates(
            program, max_entry_len=MAX_ENTRY_LEN
        ).items():
            length = len(key)
            gain = len(candidate.positions) * (
                length * encoding.instruction_bits - encoding.codeword_bits(0)
            )
            totals[key] += gain
    ranked = [key for key, _ in totals.most_common(DICT_SIZE)]
    return ranked


def run(scale: float | None = None) -> list[Row]:
    programs = suite_programs(scale)
    encoding = BaselineEncoding(DICT_SIZE)
    shared = _shared_dictionary(programs.values(), encoding)
    rows = []
    for name, program in programs.items():
        own = compress(
            program, BaselineEncoding(DICT_SIZE), max_entry_len=MAX_ENTRY_LEN
        )
        plan = optimal_replacement(program, shared, encoding, MAX_ENTRY_LEN)
        shared_bytes = (plan.stream_bits + 7) // 8 + plan.dictionary_bits // 8
        rows.append(
            Row(
                name=name,
                own_ratio=own.compression_ratio,
                shared_ratio=shared_bytes / program.text_size,
            )
        )
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench", "own dict", "shared dict", "adaptivity gain (pts)"],
        [
            (row.name, pct(row.own_ratio), pct(row.shared_ratio),
             f"{row.adaptivity_points:+.1f}")
            for row in rows
        ],
        title=TITLE,
    )
