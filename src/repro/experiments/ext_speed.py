"""Extension: execution-time cost of compression vs bus width.

The paper: compression targets systems "where execution speed can be
traded for compression", and section 5 plans to explore the
performance aspects.  Using the timing model of
:mod:`repro.machine.timing`, this experiment estimates cycles for the
same dynamic instruction stream on both processors across instruction
bus widths of 1, 2, and 4 bytes/cycle.

Expected crossover: with a narrow (1-byte) bus the compressed machine
is *faster* (it moves far fewer bytes); with a 4-byte bus it pays the
dictionary-expansion latency and runs a few percent slower — the trade
the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import NibbleEncoding, compress
from repro.experiments.common import render_table, suite_programs
from repro.machine.timing import TimingParameters, time_compressed, time_uncompressed

TITLE = "Extension: cycle estimate vs instruction-bus width (nibble encoding)"
BUS_WIDTHS = (1, 2, 4)


@dataclass(frozen=True)
class Row:
    name: str
    # bus width -> (uncompressed cycles, compressed cycles)
    cycles: dict[int, tuple[float, float]]

    def speedup(self, bus: int) -> float:
        uncompressed, compressed = self.cycles[bus]
        return uncompressed / compressed


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, program in suite_programs(scale).items():
        compressed = compress(program, NibbleEncoding())
        per_bus = {}
        for bus in BUS_WIDTHS:
            params = TimingParameters(bus_bytes=bus, expand_latency=1)
            plain = time_uncompressed(program, params)
            packed = time_compressed(compressed, params)
            per_bus[bus] = (plain.cycles, packed.cycles)
        rows.append(Row(name, per_bus))
    return rows


def render(rows: list[Row]) -> str:
    headers = ["bench"]
    for bus in BUS_WIDTHS:
        headers += [f"{bus}B unc", f"{bus}B cmp", f"{bus}B speedup"]
    table = []
    for row in rows:
        cells = [row.name]
        for bus in BUS_WIDTHS:
            uncompressed, compressed = row.cycles[bus]
            cells += [
                f"{uncompressed:.0f}",
                f"{compressed:.0f}",
                f"{row.speedup(bus):.2f}x",
            ]
        table.append(tuple(cells))
    return render_table(headers, table, title=TITLE)
