"""Extension: dictionary compression vs Thumb/MIPS16-style re-encoding.

The paper (sections 2.2, 5) positions its result against Thumb ("30%
smaller") and MIPS16 ("40% smaller"): "Our compression ratio is similar
to that achieved by Thumb and MIPS16. While Thumb and MIPS16 designed a
completely new instruction set, compiler, and instruction decoder, we
achieved our results only by processing compiled object code."

This experiment quantifies that comparison on our suite with the
:mod:`repro.baselines.thumb16` model in both of its modes:

* *re-encode* — rewrite the existing binary (register subset fixed by
  static usage), which is all a post-compilation tool could do;
* *recompiled* — waive the register constraint, modelling a compiler
  that targets the dense set (how Thumb/MIPS16 really operate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.thumb16 import thumb16_model
from repro.core import NibbleEncoding, compress
from repro.experiments.common import pct, render_table, suite_programs

TITLE = "Extension: dictionary compression vs Thumb/MIPS16-style re-encoding"


@dataclass(frozen=True)
class Row:
    name: str
    nibble_ratio: float
    thumb_reencode_ratio: float
    thumb_recompiled_ratio: float
    dense_fraction: float


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, program in suite_programs(scale).items():
        reencode = thumb16_model(program)
        recompiled = thumb16_model(program, assume_recompiled=True)
        rows.append(
            Row(
                name=name,
                nibble_ratio=compress(program, NibbleEncoding()).compression_ratio,
                thumb_reencode_ratio=reencode.compression_ratio,
                thumb_recompiled_ratio=recompiled.compression_ratio,
                dense_fraction=recompiled.dense_fraction,
            )
        )
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench", "nibble (ours)", "thumb re-encode", "thumb recompiled",
         "16-bit insns"],
        [
            (
                row.name,
                pct(row.nibble_ratio),
                pct(row.thumb_reencode_ratio),
                pct(row.thumb_recompiled_ratio),
                pct(row.dense_fraction),
            )
            for row in rows
        ],
        title=TITLE,
    )
