"""Figure 11: nibble-aligned compression vs Unix compress.

The paper's headline result: the nibble-aligned scheme reduces SPEC
CINT95 programs by 30%–50%, and although Unix compress (adaptive LZW +
coded output, unconstrained by random access or execution) compresses
better, the gap stays within about 5 percentage points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.lzw import unix_compress_size
from repro.core import NibbleEncoding, compress
from repro.experiments.common import pct, render_table, suite_programs

TITLE = "Figure 11: nibble-aligned compression vs Unix compress"


@dataclass(frozen=True)
class Row:
    name: str
    nibble_ratio: float
    compress_ratio: float

    @property
    def gap_points(self) -> float:
        """Percentage-point gap (positive: compress wins)."""
        return 100.0 * (self.nibble_ratio - self.compress_ratio)


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, program in suite_programs(scale).items():
        compressed = compress(program, NibbleEncoding(), max_entry_len=4)
        lzw_bytes = unix_compress_size(program.text_bytes())
        rows.append(
            Row(
                name=name,
                nibble_ratio=compressed.compression_ratio,
                compress_ratio=lzw_bytes / program.text_size,
            )
        )
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench", "nibble ratio", "unix compress", "gap (pts)"],
        [
            (row.name, pct(row.nibble_ratio), pct(row.compress_ratio),
             f"{row.gap_points:+.1f}")
            for row in rows
        ],
        title=TITLE,
    )
