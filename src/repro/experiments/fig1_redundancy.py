"""Figure 1: distinct instruction encodings as a share of the program.

Paper claim: on average less than 20% of a program's instructions have
a bit-pattern encoding used exactly once; a small number of encodings
are highly reused (for go, the top 1% of distinct words cover ~30% of
the program and the top 10% cover ~66%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profile import coverage_of_top_fraction, encoding_redundancy
from repro.experiments.common import pct, render_table, suite_programs

TITLE = "Figure 1: distinct instruction encodings as % of program"


@dataclass(frozen=True)
class Row:
    name: str
    instructions: int
    distinct_multi_pct: float  # distinct encodings used >1x, as % of program
    distinct_once_pct: float  # distinct encodings used exactly 1x
    unique_instruction_pct: float  # instructions whose encoding is unique
    top1_coverage: float
    top10_coverage: float


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, program in suite_programs(scale).items():
        profile = encoding_redundancy(program)
        once = profile.instructions_with_unique_encoding
        multi = profile.distinct_encodings - once
        total = profile.total_instructions
        rows.append(
            Row(
                name=name,
                instructions=total,
                distinct_multi_pct=multi / total,
                distinct_once_pct=once / total,
                unique_instruction_pct=profile.unique_fraction,
                top1_coverage=coverage_of_top_fraction(program, 0.01),
                top10_coverage=coverage_of_top_fraction(program, 0.10),
            )
        )
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench", "insns", "distinct>1 %", "distinct=1 %", "unique-insn %",
         "top1% cover", "top10% cover"],
        [
            (
                row.name,
                row.instructions,
                pct(row.distinct_multi_pct),
                pct(row.distinct_once_pct),
                pct(row.unique_instruction_pct),
                pct(row.top1_coverage),
                pct(row.top10_coverage),
            )
            for row in rows
        ],
        title=TITLE,
    )
