"""Figure 4: effect of maximum dictionary entry length on compression.

Baseline 2-byte codewords, unlimited codeword budget (8192), sweeping
the maximum entry length over 1, 2, 4, 8 instructions.  Paper claims:
ratio improves from 1 to 4; at 8 the greedy algorithm's long picks
destroy overlapping short sequences and compression stops improving or
degrades slightly; sizes above 4 add nothing noticeable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import BaselineEncoding, compress
from repro.experiments.common import pct, render_table, suite_programs

TITLE = "Figure 4: compression ratio vs max dictionary entry length (baseline)"
ENTRY_LENGTHS = (1, 2, 4, 8)


@dataclass(frozen=True)
class Row:
    name: str
    ratios: dict[int, float]  # entry length -> compression ratio


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, program in suite_programs(scale).items():
        ratios = {}
        for length in ENTRY_LENGTHS:
            compressed = compress(
                program, BaselineEncoding(), max_entry_len=length
            )
            ratios[length] = compressed.compression_ratio
        rows.append(Row(name, ratios))
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench"] + [f"len<={n}" for n in ENTRY_LENGTHS],
        [
            tuple([row.name] + [pct(row.ratios[n]) for n in ENTRY_LENGTHS])
            for row in rows
        ],
        title=TITLE,
    )
