"""Figure 5: effect of the number of codewords on compression.

Baseline encoding, entries up to 4 instructions, sweeping the codeword
budget.  Paper claims: the ratio improves monotonically with dictionary
size until the maximum useful codeword count is reached; dictionary
size is the single most important parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import BaselineEncoding, compress
from repro.experiments.common import pct, render_table, suite_programs

TITLE = "Figure 5: compression ratio vs number of codewords (baseline)"
CODEWORD_BUDGETS = (16, 64, 256, 1024, 2048, 4096, 8192)


@dataclass(frozen=True)
class Row:
    name: str
    ratios: dict[int, float]


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, program in suite_programs(scale).items():
        ratios = {}
        for budget in CODEWORD_BUDGETS:
            compressed = compress(
                program,
                BaselineEncoding(),
                max_entry_len=4,
                max_codewords=budget,
            )
            ratios[budget] = compressed.compression_ratio
        rows.append(Row(name, ratios))
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench"] + [str(n) for n in CODEWORD_BUDGETS],
        [
            tuple([row.name] + [pct(row.ratios[n]) for n in CODEWORD_BUDGETS])
            for row in rows
        ],
        title=TITLE,
    )
