"""Figure 6: composition of the dictionary by entry length (ijpeg).

Baseline compression extended to entries of up to 8 instructions,
sweeping dictionary size.  Paper claims: 48%–80% of dictionary entries
hold a single instruction, and the proportion of short entries grows
with dictionary size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import BaselineEncoding, compress
from repro.experiments.common import pct, render_table, suite_programs

TITLE = "Figure 6: dictionary composition by entry length (ijpeg, entries <= 8)"
DICT_SIZES = (16, 64, 256, 1024, 4096)
BENCH = "ijpeg"


@dataclass(frozen=True)
class Row:
    dict_size: int
    entries: int
    length_fractions: dict[int, float]  # entry length -> fraction of entries


def run(scale: float | None = None) -> list[Row]:
    program = suite_programs(scale)[BENCH]
    rows = []
    for size in DICT_SIZES:
        compressed = compress(
            program, BaselineEncoding(), max_entry_len=8, max_codewords=size
        )
        histogram = compressed.dictionary.length_histogram()
        total = max(1, len(compressed.dictionary))
        rows.append(
            Row(
                dict_size=size,
                entries=len(compressed.dictionary),
                length_fractions={
                    length: count / total for length, count in histogram.items()
                },
            )
        )
    return rows


def render(rows: list[Row]) -> str:
    lengths = sorted({length for row in rows for length in row.length_fractions})
    return render_table(
        ["dict size", "entries"] + [f"len {n}" for n in lengths],
        [
            tuple(
                [row.dict_size, row.entries]
                + [pct(row.length_fractions.get(n, 0.0)) for n in lengths]
            )
            for row in rows
        ],
        title=TITLE,
    )
