"""Figure 7: program bytes removed, by dictionary entry length (ijpeg).

Paper claims: single-instruction entries achieve roughly half of the
compression savings (48%–60%), and their share grows with dictionary
size — the reason schemes that cannot compress single instructions
(Liao's whole-word codewords) leave so much on the table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import BaselineEncoding, compress
from repro.core.stats import collect_stats
from repro.experiments.common import pct, render_table, suite_programs

TITLE = "Figure 7: bytes saved by dictionary entry length (ijpeg, entries <= 8)"
DICT_SIZES = (16, 64, 256, 1024, 4096)
BENCH = "ijpeg"


@dataclass(frozen=True)
class Row:
    dict_size: int
    total_saved_fraction: float  # of original program bytes
    saved_fraction_by_length: dict[int, float]


def run(scale: float | None = None) -> list[Row]:
    program = suite_programs(scale)[BENCH]
    rows = []
    for size in DICT_SIZES:
        compressed = compress(
            program, BaselineEncoding(), max_entry_len=8, max_codewords=size
        )
        stats = collect_stats(compressed)
        by_length = stats.savings_fraction_by_length()
        rows.append(
            Row(
                dict_size=size,
                total_saved_fraction=sum(by_length.values()),
                saved_fraction_by_length=by_length,
            )
        )
    return rows


def render(rows: list[Row]) -> str:
    lengths = sorted(
        {length for row in rows for length in row.saved_fraction_by_length}
    )
    return render_table(
        ["dict size", "total saved"] + [f"len {n}" for n in lengths],
        [
            tuple(
                [row.dict_size, pct(row.total_saved_fraction)]
                + [pct(row.saved_fraction_by_length.get(n, 0.0)) for n in lengths]
            )
            for row in rows
        ],
        title=TITLE,
    )
