"""Figure 8: 1-byte codewords with very small dictionaries.

Dictionaries of 8, 16, and 32 entries (128/256/512 bytes at 16 bytes
per entry), entries up to 4 instructions, codewords drawn from the 32
escape-byte values.  Paper claim: even a 512-byte dictionary buys a
useful (~15%) size reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import OneByteEncoding, compress
from repro.experiments.common import pct, render_table, suite_programs

TITLE = "Figure 8: compression ratio, 1-byte codewords, small dictionaries"
DICT_SIZES = (8, 16, 32)


@dataclass(frozen=True)
class Row:
    name: str
    ratios: dict[int, float]
    dictionary_bytes: dict[int, int]


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, program in suite_programs(scale).items():
        ratios = {}
        dict_bytes = {}
        for size in DICT_SIZES:
            compressed = compress(
                program, OneByteEncoding(size), max_entry_len=4
            )
            ratios[size] = compressed.compression_ratio
            dict_bytes[size] = compressed.dictionary_bytes
        rows.append(Row(name, ratios, dict_bytes))
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench"] + [f"{n} entries" for n in DICT_SIZES],
        [
            tuple([row.name] + [pct(row.ratios[n]) for n in DICT_SIZES])
            for row in rows
        ],
        title=TITLE,
    )
