"""Figure 9: composition of the compressed program.

Baseline, 8192 codewords, entries up to 4 instructions: the compressed
program decomposed into uncompressed instruction bytes, codeword index
bytes, codeword escape bytes, and dictionary bytes.  Paper claim: with
8192 codewords ~40% of the compressed program bytes are codewords, so
~20% of the final size is pure escape-byte overhead — the observation
that motivates the nibble-aligned encoding.
"""

from __future__ import annotations

from repro.core import BaselineEncoding, compress
from repro.core.stats import CompressionStats, collect_stats
from repro.experiments.common import pct, render_table, suite_programs

TITLE = "Figure 9: composition of compressed program (baseline, 8192 codewords)"


def run(scale: float | None = None) -> list[CompressionStats]:
    rows = []
    for name, program in suite_programs(scale).items():
        compressed = compress(program, BaselineEncoding(8192), max_entry_len=4)
        rows.append(collect_stats(compressed))
    return rows


def render(rows: list[CompressionStats]) -> str:
    table_rows = []
    for stats in rows:
        fractions = stats.composition_fractions()
        table_rows.append(
            (
                stats.name,
                pct(stats.compression_ratio),
                pct(fractions["uncompressed_instructions"]),
                pct(fractions["codeword_index"]),
                pct(fractions["codeword_escape"]),
                pct(fractions["dictionary"]),
            )
        )
    return render_table(
        ["bench", "ratio", "uncompressed", "cw index", "cw escape", "dictionary"],
        table_rows,
        title=TITLE,
    )
