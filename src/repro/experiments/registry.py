"""Registry of all experiments, keyed by table/figure id."""

from __future__ import annotations

from dataclasses import dataclass
from types import ModuleType

from repro.experiments import (
    ext_baselines,
    ext_canon,
    ext_ccrp,
    ext_dict_content,
    ext_dynamic,
    ext_encoding_search,
    ext_fetch_traffic,
    ext_greedy_gap,
    ext_icache,
    ext_optlevel,
    ext_prologue,
    ext_shared_dict,
    ext_speed,
    ext_thumb,
    fig1_redundancy,
    fig4_entry_size,
    fig5_num_codewords,
    fig6_dict_composition,
    fig7_bytes_saved,
    fig8_small_dicts,
    fig9_composition,
    fig11_vs_compress,
    table1_branch_offsets,
    table2_max_codewords,
    table3_prologue,
)


@dataclass(frozen=True)
class Experiment:
    id: str
    module: ModuleType

    @property
    def title(self) -> str:
        return self.module.TITLE

    def run(self, scale: float | None = None):
        return self.module.run(scale)

    def render(self, rows) -> str:
        return self.module.render(rows)

    def run_and_render(self, scale: float | None = None) -> str:
        return self.render(self.run(scale))


REGISTRY: dict[str, Experiment] = {
    exp.id: exp
    for exp in (
        Experiment("fig1", fig1_redundancy),
        Experiment("table1", table1_branch_offsets),
        Experiment("fig4", fig4_entry_size),
        Experiment("fig5", fig5_num_codewords),
        Experiment("table2", table2_max_codewords),
        Experiment("fig6", fig6_dict_composition),
        Experiment("fig7", fig7_bytes_saved),
        Experiment("fig8", fig8_small_dicts),
        Experiment("fig9", fig9_composition),
        Experiment("fig11", fig11_vs_compress),
        Experiment("table3", table3_prologue),
        Experiment("ext_baselines", ext_baselines),
        Experiment("ext_prologue", ext_prologue),
        Experiment("ext_fetch", ext_fetch_traffic),
        Experiment("ext_icache", ext_icache),
        Experiment("ext_canon", ext_canon),
        Experiment("ext_greedy_gap", ext_greedy_gap),
        Experiment("ext_optlevel", ext_optlevel),
        Experiment("ext_dynamic", ext_dynamic),
        Experiment("ext_encoding_search", ext_encoding_search),
        Experiment("ext_thumb", ext_thumb),
        Experiment("ext_speed", ext_speed),
        Experiment("ext_ccrp", ext_ccrp),
        Experiment("ext_shared_dict", ext_shared_dict),
        Experiment("ext_dict_content", ext_dict_content),
    )
}


def run_experiment(experiment_id: str, scale: float | None = None) -> str:
    """Run one experiment by id and return its rendered table."""
    if experiment_id not in REGISTRY:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return REGISTRY[experiment_id].run_and_render(scale)
