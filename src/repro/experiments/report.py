"""Full-report renderer: every experiment into one document.

``repro-experiments --output report.txt`` (or
``python -m repro.experiments.report``) regenerates the complete
evaluation — the measured side of EXPERIMENTS.md — in one run.
"""

from __future__ import annotations

import time

from repro.experiments.registry import REGISTRY

PAPER_ORDER = [
    "fig1", "table1", "fig4", "fig5", "table2", "fig6", "fig7", "fig8",
    "fig9", "fig11", "table3",
]
EXTENSION_ORDER = [
    "ext_baselines", "ext_prologue", "ext_fetch", "ext_icache", "ext_canon",
    "ext_greedy_gap", "ext_optlevel", "ext_dynamic", "ext_encoding_search",
    "ext_thumb", "ext_speed", "ext_ccrp", "ext_shared_dict",
    "ext_dict_content",
]


def generate_report(scale: float = 1.0, ids: list[str] | None = None) -> str:
    """Run experiments and return the full text report."""
    selected = ids if ids is not None else PAPER_ORDER + EXTENSION_ORDER
    sections = [
        "repro — measured results "
        f"(scale {scale}; {len(selected)} experiments)",
        "=" * 64,
        "",
    ]
    for experiment_id in selected:
        experiment = REGISTRY[experiment_id]
        start = time.time()
        sections.append(experiment.run_and_render(scale))
        sections.append(f"[{experiment_id}: {time.time() - start:.1f}s]")
        sections.append("")
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--output", default=None)
    args = parser.parse_args(argv)
    report = generate_report(args.scale)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
