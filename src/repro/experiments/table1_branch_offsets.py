"""Table 1: usage of bits in branch offset fields.

For each benchmark: the static number of PC-relative branches and how
many of them lack the spare offset-field bits to address targets at
2-byte, 1-byte, and 4-bit resolution.  Paper claim: most branches do
not use the full range of their offset field, so re-scaling offsets to
codeword granularity rarely overflows.
"""

from __future__ import annotations

from repro.core.branch_patch import OffsetUsageRow, offset_usage
from repro.experiments.common import render_table, suite_programs

TITLE = "Table 1: usage of bits in branch offset field"


def run(scale: float | None = None) -> list[OffsetUsageRow]:
    return [offset_usage(program) for program in suite_programs(scale).values()]


def render(rows: list[OffsetUsageRow]) -> str:
    return render_table(
        ["bench", "PC-rel branches", "no 2B res", "%", "no 1B res", "%",
         "no 4b res", "%"],
        [
            (
                row.name,
                row.static_branches,
                row.too_narrow_2byte,
                f"{row.percent(row.too_narrow_2byte):.2f}",
                row.too_narrow_1byte,
                f"{row.percent(row.too_narrow_1byte):.2f}",
                row.too_narrow_4bit,
                f"{row.percent(row.too_narrow_4bit):.2f}",
            )
            for row in rows
        ],
        title=TITLE,
    )
