"""Table 2: maximum number of codewords used per benchmark.

Baseline compression with entries up to 4 instructions and the full
8192-codeword space: how many dictionary entries the greedy algorithm
actually selects before savings run out — the upper bound on useful
dictionary size.  Paper: a few thousand codewords suffice (gcc 7927,
compress 647, …), tracking program size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import BaselineEncoding, compress
from repro.experiments.common import render_table, suite_programs

TITLE = "Table 2: maximum number of codewords used (baseline, entries <= 4)"


@dataclass(frozen=True)
class Row:
    name: str
    instructions: int
    max_codewords_used: int


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, program in suite_programs(scale).items():
        compressed = compress(program, BaselineEncoding(), max_entry_len=4)
        rows.append(Row(name, len(program.text), len(compressed.dictionary)))
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench", "instructions", "max codewords used"],
        [(row.name, row.instructions, row.max_codewords_used) for row in rows],
        title=TITLE,
    )
