"""Table 3: prologue and epilogue code in the benchmarks.

Static prologue/epilogue instructions as a percentage of the program.
Paper: the two together typically account for ~12% of program size,
motivating the standardized-prologue compiler cooperation idea of
section 5 (see the ext_prologue experiment for that ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import pct, render_table, suite_programs
from repro.linker.objfile import InsnRole

TITLE = "Table 3: prologue and epilogue code (static instructions)"


@dataclass(frozen=True)
class Row:
    name: str
    instructions: int
    prologue_fraction: float
    epilogue_fraction: float


def run(scale: float | None = None) -> list[Row]:
    rows = []
    for name, program in suite_programs(scale).items():
        total = len(program.text)
        prologue = sum(1 for ti in program.text if ti.role is InsnRole.PROLOGUE)
        epilogue = sum(1 for ti in program.text if ti.role is InsnRole.EPILOGUE)
        rows.append(
            Row(
                name=name,
                instructions=total,
                prologue_fraction=prologue / total,
                epilogue_fraction=epilogue / total,
            )
        )
    return rows


def render(rows: list[Row]) -> str:
    return render_table(
        ["bench", "instructions", "prologue %", "epilogue %"],
        [
            (row.name, row.instructions, pct(row.prologue_fraction),
             pct(row.epilogue_fraction))
            for row in rows
        ],
        title=TITLE,
    )
