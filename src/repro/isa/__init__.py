"""PowerPC instruction-set substrate.

This package implements a bit-accurate subset of the 32-bit PowerPC
architecture: instruction forms, encoding and decoding, an assembler and
a disassembler.  The compression experiments in :mod:`repro.core` operate
on the 32-bit instruction words produced here, and rely on
:data:`repro.isa.opcodes.ILLEGAL_PRIMARY_OPCODES` for their escape-byte
space (paper section 4.1).
"""

from repro.isa.assembler import Assembler, assemble_line, assemble_source
from repro.isa.disassembler import disassemble, disassemble_words
from repro.isa.instruction import Instruction, decode, encode
from repro.isa.opcodes import (
    ILLEGAL_PRIMARY_OPCODES,
    INSTRUCTION_SPECS,
    escape_bytes,
    is_illegal_word,
    spec_for,
)
from repro.isa.registers import CR_FIELDS, GPR_COUNT, LR, CTR, reg_name

__all__ = [
    "Assembler",
    "assemble_line",
    "assemble_source",
    "disassemble",
    "disassemble_words",
    "Instruction",
    "decode",
    "encode",
    "ILLEGAL_PRIMARY_OPCODES",
    "INSTRUCTION_SPECS",
    "escape_bytes",
    "is_illegal_word",
    "spec_for",
    "CR_FIELDS",
    "GPR_COUNT",
    "LR",
    "CTR",
    "reg_name",
]
