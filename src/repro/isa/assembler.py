"""Two-pass text assembler for the PowerPC subset.

Supports labels, canonical mnemonics from :mod:`repro.isa.opcodes`, and
the usual extended mnemonics (``li``, ``mr``, ``blr``, ``beq`` …) that
GCC-era PowerPC assembly uses.  Branch targets may be labels or literal
instruction-granularity offsets.

The compiler does not go through text — it builds
:class:`~repro.isa.instruction.Instruction` objects directly — but the
assembler makes tests and examples readable and provides the inverse of
the disassembler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssemblerError
from repro.isa import registers
from repro.isa.fields import OperandKind
from repro.isa.instruction import Instruction, make
from repro.isa.opcodes import SPEC_BY_MNEMONIC

# CR bit indices within a field, used by conditional extended mnemonics.
_LT, _GT, _EQ = 0, 1, 2

# name -> (BO, cr_bit, branch_if_true)
_COND_BRANCHES = {
    "blt": (12, _LT),
    "bgt": (12, _GT),
    "beq": (12, _EQ),
    "bge": (4, _LT),
    "ble": (4, _GT),
    "bne": (4, _EQ),
}


@dataclass
class _PendingBranch:
    """A branch whose target label is resolved in pass two."""

    index: int
    mnemonic: str
    values: list
    target_slot: int
    label: str


@dataclass(frozen=True)
class AssembledUnit:
    """Result of assembling a source text."""

    instructions: tuple[Instruction, ...]
    labels: dict[str, int]  # label -> instruction index

    @property
    def words(self) -> tuple[int, ...]:
        return tuple(ins.encode() for ins in self.instructions)


def _parse_int(token: str) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(f"bad integer operand: {token!r}") from exc


def _parse_operands(text: str) -> list[str]:
    """Split an operand list on commas, keeping ``D(rA)`` intact."""
    out = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            out.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        out.append(current.strip())
    return out


class Assembler:
    """Accumulates source lines; ``finish`` resolves labels and encodes."""

    def __init__(self) -> None:
        self._instructions: list[Instruction | None] = []
        self._labels: dict[str, int] = {}
        self._pending: list[_PendingBranch] = []

    def add_line(self, line: str) -> None:
        """Process one line: optional ``label:`` prefix, then an instruction."""
        line = line.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            return
        while ":" in line:
            label, _, rest = line.partition(":")
            label = label.strip()
            if not label.isidentifier() and not label.startswith("."):
                raise AssemblerError(f"bad label: {label!r}")
            if label in self._labels:
                raise AssemblerError(f"duplicate label: {label!r}")
            self._labels[label] = len(self._instructions)
            line = rest.strip()
        if not line:
            return
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        self._emit(mnemonic, _parse_operands(operand_text))

    def _emit(self, mnemonic: str, tokens: list[str]) -> None:
        mnemonic, tokens = _expand_extended(mnemonic, tokens)
        spec = SPEC_BY_MNEMONIC.get(mnemonic)
        if spec is None:
            raise AssemblerError(f"unknown mnemonic: {mnemonic!r}")
        if len(tokens) != len(spec.operands):
            raise AssemblerError(
                f"{mnemonic} expects {len(spec.operands)} operands, got {len(tokens)}"
            )
        values: list = []
        pending_label: tuple[int, str] | None = None
        try:
            values, pending_label = self._parse_operand_values(spec, tokens)
        except ValueError as exc:
            raise AssemblerError(str(exc)) from exc
        index = len(self._instructions)
        if pending_label is None:
            self._instructions.append(make(mnemonic, *values))
        else:
            slot, label = pending_label
            self._instructions.append(None)
            self._pending.append(_PendingBranch(index, mnemonic, values, slot, label))

    def _parse_operand_values(self, spec, tokens):
        values: list = []
        pending_label: tuple[int, str] | None = None
        for slot, (op, token) in enumerate(zip(spec.operands, tokens)):
            if op.kind is OperandKind.GPR:
                values.append(registers.parse_reg(token))
            elif op.kind is OperandKind.CRF:
                values.append(registers.parse_crf(token))
            elif op.kind in (OperandKind.SIMM, OperandKind.UIMM, OperandKind.UINT):
                values.append(_parse_int(token))
            elif op.kind is OperandKind.SPR:
                values.append(_parse_spr(token))
            elif op.kind is OperandKind.DISP_GPR:
                if not token.endswith(")") or "(" not in token:
                    raise AssemblerError(f"bad memory operand: {token!r}")
                disp_text, _, base_text = token[:-1].partition("(")
                values.append((_parse_int(disp_text), registers.parse_reg(base_text)))
            elif op.kind is OperandKind.REL_TARGET:
                stripped = token.lstrip("+-")
                if stripped and (stripped.isdigit() or stripped.lower().startswith("0x")):
                    values.append(_parse_int(token))
                else:
                    values.append(0)
                    pending_label = (slot, token)
            else:  # pragma: no cover - spec table is closed
                raise AssemblerError(f"unhandled operand kind {op.kind}")
        return values, pending_label

    def finish(self) -> AssembledUnit:
        """Resolve labels and return the encoded unit."""
        for branch in self._pending:
            if branch.label not in self._labels:
                raise AssemblerError(f"undefined label: {branch.label!r}")
            offset = self._labels[branch.label] - branch.index
            branch.values[branch.target_slot] = offset
            self._instructions[branch.index] = make(branch.mnemonic, *branch.values)
        instructions = []
        for ins in self._instructions:
            assert ins is not None
            instructions.append(ins)
        return AssembledUnit(tuple(instructions), dict(self._labels))


def _parse_spr(token: str) -> int:
    token = token.strip().lower()
    named = {"xer": registers.XER, "lr": registers.LR, "ctr": registers.CTR}
    if token in named:
        return named[token]
    return _parse_int(token)


def _expand_extended(mnemonic: str, tokens: list[str]) -> tuple[str, list[str]]:
    """Rewrite an extended mnemonic into its canonical form."""
    if mnemonic == "li":
        return "addi", [tokens[0], "r0", tokens[1]]
    if mnemonic == "lis":
        return "addis", [tokens[0], "r0", tokens[1]]
    if mnemonic == "la":
        return "addi", tokens
    if mnemonic == "mr":
        return "or", [tokens[0], tokens[1], tokens[1]]
    if mnemonic == "not":
        return "nor", [tokens[0], tokens[1], tokens[1]]
    if mnemonic == "nop":
        return "ori", ["r0", "r0", "0"]
    if mnemonic == "blr":
        return "bclr", ["20", "0"]
    if mnemonic == "bctr":
        return "bcctr", ["20", "0"]
    if mnemonic == "bctrl":
        return "bcctrl", ["20", "0"]
    if mnemonic == "mflr":
        return "mfspr", [tokens[0], "lr"]
    if mnemonic == "mtlr":
        return "mtspr", ["lr", tokens[0]]
    if mnemonic == "mfctr":
        return "mfspr", [tokens[0], "ctr"]
    if mnemonic == "mtctr":
        return "mtspr", ["ctr", tokens[0]]
    if mnemonic == "slwi":
        # slwi rA,rS,n == rlwinm rA,rS,n,0,31-n
        n = _parse_int(tokens[2])
        return "rlwinm", [tokens[0], tokens[1], str(n), "0", str(31 - n)]
    if mnemonic == "srwi":
        # srwi rA,rS,n == rlwinm rA,rS,32-n,n,31
        n = _parse_int(tokens[2])
        return "rlwinm", [tokens[0], tokens[1], str((32 - n) % 32), str(n), "31"]
    if mnemonic == "clrlwi":
        # clrlwi rA,rS,n == rlwinm rA,rS,0,n,31
        return "rlwinm", [tokens[0], tokens[1], "0", tokens[2], "31"]
    if mnemonic == "bdnz":
        # Decrement CTR, branch if CTR != 0.
        return "bc", ["16", "0", tokens[0]]
    if mnemonic in _COND_BRANCHES:
        bo, bit = _COND_BRANCHES[mnemonic]
        if len(tokens) == 2:
            crf = registers.parse_crf(tokens[0])
            target = tokens[1]
        else:
            crf = 0
            target = tokens[0]
        return "bc", [str(bo), str(crf * 4 + bit), target]
    if mnemonic in ("cmpwi", "cmplwi") and len(tokens) == 2:
        return mnemonic, ["cr0"] + tokens
    if mnemonic in ("cmpw", "cmplw") and len(tokens) == 2:
        return mnemonic, ["cr0"] + tokens
    return mnemonic, tokens


def assemble_line(line: str) -> Instruction:
    """Assemble a single label-free instruction line."""
    asm = Assembler()
    asm.add_line(line)
    unit = asm.finish()
    if len(unit.instructions) != 1:
        raise AssemblerError(f"expected exactly one instruction in {line!r}")
    return unit.instructions[0]


def assemble_source(source: str) -> AssembledUnit:
    """Assemble a multi-line source text with labels."""
    asm = Assembler()
    for line in source.splitlines():
        asm.add_line(line)
    return asm.finish()
