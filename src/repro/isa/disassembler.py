"""Disassembler: 32-bit words back to readable assembly text.

Produces the same extended mnemonics the assembler accepts (``li``,
``mr``, ``blr``, ``beq`` …) so that ``assemble(disassemble(w)) == w``
round-trips — a property the test suite checks exhaustively with
hypothesis.
"""

from __future__ import annotations

from repro.errors import DecodingError
from repro.isa import registers
from repro.isa.fields import OperandKind
from repro.isa.instruction import Instruction, decode

_COND_NAMES = {
    (12, 0): "blt",
    (12, 1): "bgt",
    (12, 2): "beq",
    (4, 0): "bge",
    (4, 1): "ble",
    (4, 2): "bne",
}

_SPR_NAMES = {registers.XER: "xer", registers.LR: "lr", registers.CTR: "ctr"}


def _format_target(raw_offset: int, index: int | None, base: int = 0) -> str:
    """Format a branch target: absolute index when known, else raw offset."""
    if index is not None:
        return f"{(index + raw_offset) * 4 + base:#x}"
    return f"{raw_offset:+d}" if raw_offset else "+0"


def format_instruction(
    ins: Instruction, index: int | None = None, base_address: int = 0
) -> str:
    """Render one instruction.  ``index`` (instruction position) lets
    branch targets print as absolute byte addresses like the paper's
    Figure 2 listing; ``base_address`` offsets them (e.g. a text base)."""
    extended = _extended_form(ins, index, base_address)
    if extended is not None:
        return extended
    parts = []
    for op, value in zip(ins.spec.operands, ins.values):
        if op.kind is OperandKind.GPR:
            parts.append(registers.reg_name(value))
        elif op.kind is OperandKind.CRF:
            parts.append(registers.crf_name(value))
        elif op.kind is OperandKind.DISP_GPR:
            disp, base = value
            parts.append(f"{disp}({registers.reg_name(base)})")
        elif op.kind is OperandKind.REL_TARGET:
            parts.append(_format_target(value, index, base_address))
        elif op.kind is OperandKind.SPR:
            parts.append(_SPR_NAMES.get(value, str(value)))
        else:
            parts.append(str(value))
    if parts:
        return f"{ins.mnemonic} {','.join(parts)}"
    return ins.mnemonic


def _extended_form(
    ins: Instruction, index: int | None, base_address: int = 0
) -> str | None:
    """Return an extended-mnemonic rendering when one applies."""
    name = ins.mnemonic
    if name == "addi" and ins.operand("rA") == 0:
        return f"li {registers.reg_name(ins.operand('rT'))},{ins.operand('SI')}"
    if name == "addis" and ins.operand("rA") == 0:
        return f"lis {registers.reg_name(ins.operand('rT'))},{ins.operand('SI')}"
    if name == "or" and ins.operand("rS") == ins.operand("rB"):
        ra, rs = ins.operand("rA"), ins.operand("rS")
        if ra == rs == 0:
            return None  # leave `or r0,r0,r0` alone; nop is ori
        return f"mr {registers.reg_name(ra)},{registers.reg_name(rs)}"
    if name == "ori" and ins.values == (0, 0, 0):
        return "nop"
    if name == "bclr" and ins.values == (20, 0):
        return "blr"
    if name == "bcctr" and ins.values == (20, 0):
        return "bctr"
    if name == "bcctrl" and ins.values == (20, 0):
        return "bctrl"
    if name == "mfspr":
        spr = ins.operand("SPR")
        if spr == registers.LR:
            return f"mflr {registers.reg_name(ins.operand('rT'))}"
        if spr == registers.CTR:
            return f"mfctr {registers.reg_name(ins.operand('rT'))}"
    if name == "mtspr":
        spr = ins.operand("SPR")
        if spr == registers.LR:
            return f"mtlr {registers.reg_name(ins.operand('rS'))}"
        if spr == registers.CTR:
            return f"mtctr {registers.reg_name(ins.operand('rS'))}"
    if name == "rlwinm":
        ra = registers.reg_name(ins.operand("rA"))
        rs = registers.reg_name(ins.operand("rS"))
        sh, mb, me = ins.operand("SH"), ins.operand("MB"), ins.operand("ME")
        if sh == 0 and me == 31 and mb > 0:
            return f"clrlwi {ra},{rs},{mb}"
        if me == 31 - sh and mb == 0 and sh > 0:
            return f"slwi {ra},{rs},{sh}"
        if sh > 0 and mb == 32 - sh and me == 31:
            return f"srwi {ra},{rs},{32 - sh}"
        return None
    if name == "bc" and ins.operand("BO") == 16 and ins.operand("BI") == 0:
        return f"bdnz {_format_target(ins.operand('target'), index, base_address)}"
    if name == "bc":
        key = (ins.operand("BO"), ins.operand("BI") % 4)
        if key in _COND_NAMES:
            crf = ins.operand("BI") // 4
            target = _format_target(ins.operand("target"), index, base_address)
            if crf:
                return f"{_COND_NAMES[key]} {registers.crf_name(crf)},{target}"
            return f"{_COND_NAMES[key]} {target}"
    return None


def disassemble(word: int, index: int | None = None) -> str:
    """Disassemble a single 32-bit word."""
    return format_instruction(decode(word), index)


def disassemble_words(words, base_index: int = 0) -> list[str]:
    """Disassemble a word sequence; unknown words print as ``.word``."""
    out = []
    for i, word in enumerate(words):
        try:
            out.append(disassemble(word, base_index + i))
        except DecodingError:
            out.append(f".word {word:#010x}")
    return out
