"""Instruction field and operand descriptors.

PowerPC numbers bits big-endian (bit 0 = MSB of the 32-bit word).  A
:class:`Field` names a contiguous bit range; an :class:`Operand` binds an
assembly-level operand kind to a field so the assembler, encoder, decoder
and disassembler all share one table (:mod:`repro.isa.opcodes`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import bitutils


@dataclass(frozen=True)
class Field:
    """A contiguous big-endian bit range within a 32-bit word."""

    start: int
    width: int

    def extract(self, word: int) -> int:
        return bitutils.extract(word, self.start, self.width)

    def deposit(self, word: int, value: int) -> int:
        return bitutils.deposit(word, self.start, self.width, value)


# The standard PowerPC field positions.
OPCD = Field(0, 6)  # primary opcode
RT = Field(6, 5)  # target register (also RS for stores/logical)
RA = Field(11, 5)
RB = Field(16, 5)
SI = Field(16, 16)  # signed immediate (D-form)
UI = Field(16, 16)  # unsigned immediate (D-form)
D = Field(16, 16)  # displacement (D-form memory)
BF = Field(6, 3)  # CR field for compares
L = Field(10, 1)  # compare width bit (always 0: 32-bit)
BO = Field(6, 5)  # branch options
BI = Field(11, 5)  # CR bit for conditional branches
BD = Field(16, 14)  # conditional branch displacement (word-scaled)
LI = Field(6, 24)  # unconditional branch displacement (word-scaled)
AA = Field(30, 1)  # absolute address bit
LK = Field(31, 1)  # link bit
XO10 = Field(21, 10)  # extended opcode, X/XL/XFX forms
XO9 = Field(22, 9)  # extended opcode, XO form
OE = Field(21, 1)  # overflow-enable bit (XO form)
RC = Field(31, 1)  # record bit
SH = Field(16, 5)  # shift amount (M form / srawi)
MB = Field(21, 5)  # mask begin (M form)
ME = Field(26, 5)  # mask end (M form)
SPR = Field(11, 10)  # split SPR field (XFX form); see spr_encode/spr_decode
LEV = Field(20, 7)  # sc level field


def spr_encode(spr: int) -> int:
    """Encode an SPR number into the split 10-bit SPR field.

    The architecture swaps the two 5-bit halves: field value is
    ``spr[5:10] || spr[0:5]``.
    """
    if not 0 <= spr < 1024:
        raise ValueError(f"SPR number {spr} out of range")
    return ((spr & 0x1F) << 5) | (spr >> 5)


def spr_decode(field_value: int) -> int:
    """Invert :func:`spr_encode`."""
    return ((field_value & 0x1F) << 5) | (field_value >> 5)


class OperandKind(enum.Enum):
    """How an assembly operand is parsed/printed and range-checked."""

    GPR = "gpr"  # r0..r31
    CRF = "crf"  # cr0..cr7 (compare destination)
    SIMM = "simm"  # signed immediate
    UIMM = "uimm"  # unsigned immediate
    DISP_GPR = "disp_gpr"  # D(rA) memory operand: two fields
    REL_TARGET = "rel"  # PC-relative branch target (label or offset)
    UINT = "uint"  # small unsigned field (SH/MB/ME/BO/BI)
    SPR = "spr"  # special register name (lr/ctr) or number


@dataclass(frozen=True)
class Operand:
    """One assembly operand: its kind plus the field(s) it occupies."""

    name: str
    kind: OperandKind
    field: Field
    # Second field for DISP_GPR operands (the base register).
    base_field: Field | None = None

    def encode_into(self, word: int, value: int) -> int:
        """Place a validated operand value into ``word``."""
        if self.kind is OperandKind.SIMM or self.kind is OperandKind.REL_TARGET:
            return self.field.deposit(word, bitutils.to_twos_complement(value, self.field.width))
        if self.kind is OperandKind.SPR:
            return self.field.deposit(word, spr_encode(value))
        return self.field.deposit(word, value)

    def decode_from(self, word: int) -> int:
        """Read this operand's value out of ``word``."""
        raw = self.field.extract(word)
        if self.kind is OperandKind.SIMM or self.kind is OperandKind.REL_TARGET:
            return bitutils.sign_extend(raw, self.field.width)
        if self.kind is OperandKind.SPR:
            return spr_decode(raw)
        return raw
