"""Instruction objects: encode operand values to words and back.

An :class:`Instruction` pairs an :class:`~repro.isa.opcodes.InstrSpec`
with concrete operand values.  ``DISP_GPR`` operands (``D(rA)``) carry a
``(displacement, base_register)`` tuple; ``REL_TARGET`` operands carry
the *raw scaled field value* — the unit of scaling (4 bytes in the
native ISA, the minimum codeword size in a compressed program) is the
program layout's concern, not the encoder's.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro import bitutils
from repro.errors import EncodingError
from repro.isa.fields import OperandKind
from repro.isa.opcodes import InstrSpec, decode_spec, spec_for


@dataclass(frozen=True)
class Instruction:
    """A fully specified machine instruction."""

    spec: InstrSpec
    values: tuple

    def __post_init__(self) -> None:
        if len(self.values) != len(self.spec.operands):
            raise EncodingError(
                f"{self.spec.mnemonic} expects {len(self.spec.operands)} operands, "
                f"got {len(self.values)}"
            )

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    def operand(self, name: str):
        """Fetch an operand value by its spec name (e.g. ``"rA"``)."""
        for op, value in zip(self.spec.operands, self.values):
            if op.name == name:
                return value
        raise KeyError(f"{self.spec.mnemonic} has no operand {name!r}")

    def replace_operand(self, name: str, value) -> "Instruction":
        """Return a copy with one operand value swapped (branch patching)."""
        new_values = []
        found = False
        for op, old in zip(self.spec.operands, self.values):
            if op.name == name:
                new_values.append(value)
                found = True
            else:
                new_values.append(old)
        if not found:
            raise KeyError(f"{self.spec.mnemonic} has no operand {name!r}")
        return Instruction(self.spec, tuple(new_values))

    def encode(self) -> int:
        """Produce the 32-bit word for this instruction."""
        word = self.spec.match
        try:
            for op, value in zip(self.spec.operands, self.values):
                if op.kind is OperandKind.DISP_GPR:
                    disp, base = value
                    word = op.field.deposit(
                        word, bitutils.to_twos_complement(disp, op.field.width)
                    )
                    assert op.base_field is not None
                    word = op.base_field.deposit(word, base)
                else:
                    word = op.encode_into(word, value)
        except ValueError as exc:
            raise EncodingError(f"cannot encode {self!r}: {exc}") from exc
        return word

    def __str__(self) -> str:
        from repro.isa.disassembler import format_instruction

        return format_instruction(self)


def make(mnemonic: str, *values) -> Instruction:
    """Build an instruction by mnemonic; operand order follows the spec."""
    return Instruction(spec_for(mnemonic), tuple(values))


def encode(instruction: Instruction) -> int:
    """Encode an :class:`Instruction` to its 32-bit word."""
    return instruction.encode()


@lru_cache(maxsize=65536)
def decode(word: int) -> Instruction:
    """Decode a 32-bit word into an :class:`Instruction`.

    Raises :class:`~repro.errors.DecodingError` for illegal or unknown
    encodings.  Results are cached: compressed programs decode the same
    dictionary words millions of times during simulation.
    """
    spec = decode_spec(word)
    values = []
    for op in spec.operands:
        if op.kind is OperandKind.DISP_GPR:
            disp = bitutils.sign_extend(op.field.extract(word), op.field.width)
            assert op.base_field is not None
            base = op.base_field.extract(word)
            values.append((disp, base))
        else:
            values.append(op.decode_from(word))
    return Instruction(spec, tuple(values))
