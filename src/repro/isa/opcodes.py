"""Opcode tables for the PowerPC subset.

One declarative table (:data:`INSTRUCTION_SPECS`) drives the encoder,
decoder, assembler and disassembler.  Each :class:`InstrSpec` pins the
primary opcode plus any extended-opcode / reserved fields and names the
assembly operands in order.

The table also enumerates the architecture's **illegal 6-bit primary
opcodes**.  The paper's baseline compression scheme builds its 32 escape
bytes from these: PowerPC has 8 illegal primary opcodes, and combining
each with the 4 possible values of the remaining two bits of the byte
yields ``8 * 4 = 32`` distinct escape bytes (paper section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro import bitutils
from repro.errors import DecodingError
from repro.isa import fields as f
from repro.isa.fields import Field, Operand, OperandKind

# Primary opcodes that decode to no instruction on 32-bit PowerPC
# implementations of the era (601/603/604): 0 and 1 are reserved, 4-6
# are unassigned, 9 is the POWER-only dozi, 22 is unassigned, and 30 is
# the 64-bit-only rotate group.  The paper counts exactly eight.
ILLEGAL_PRIMARY_OPCODES: tuple[int, ...] = (0, 1, 4, 5, 6, 9, 22, 30)


def escape_bytes() -> tuple[int, ...]:
    """All byte values whose top 6 bits are an illegal primary opcode.

    These are the escape bytes available to the baseline compression
    scheme: 8 illegal opcodes x 4 low-bit patterns = 32 bytes.
    """
    out = []
    for opcode in ILLEGAL_PRIMARY_OPCODES:
        for low in range(4):
            out.append((opcode << 2) | low)
    return tuple(out)


def is_illegal_word(word: int) -> bool:
    """True if the word's primary opcode is architecturally illegal."""
    return f.OPCD.extract(word) in ILLEGAL_PRIMARY_OPCODES


@dataclass(frozen=True)
class InstrSpec:
    """Declarative description of one machine instruction.

    ``fixed`` pins opcode/extended-opcode/reserved fields; ``operands``
    lists the assembly operands in source order.  ``mask``/``match`` are
    derived for decoding: a word belongs to this spec iff
    ``word & mask == match``.
    """

    mnemonic: str
    form: str
    fixed: tuple[tuple[Field, int], ...]
    operands: tuple[Operand, ...]
    mask: int = dataclass_field(init=False, default=0)
    match: int = dataclass_field(init=False, default=0)

    def __post_init__(self) -> None:
        mask = 0
        match = 0
        for fld, value in self.fixed:
            mask = fld.deposit(mask, bitutils.mask(fld.width))
            match = fld.deposit(match, value)
        object.__setattr__(self, "mask", mask)
        object.__setattr__(self, "match", match)

    def matches(self, word: int) -> bool:
        return (word & self.mask) == self.match

    @property
    def is_relative_branch(self) -> bool:
        """True for branches that embed a PC-relative offset field."""
        return self.mnemonic in ("b", "bl", "bc", "bcl")

    @property
    def is_branch(self) -> bool:
        """True for any control-transfer instruction."""
        return self.mnemonic in ("b", "bl", "bc", "bcl", "bclr", "bcctr", "bcctrl", "sc")

    @property
    def is_call(self) -> bool:
        return self.mnemonic in ("bl", "bcctrl")

    @property
    def is_unconditional(self) -> bool:
        return self.mnemonic in ("b", "bl", "bclr", "bcctr", "bcctrl")


def _op(name: str, kind: OperandKind, fld: Field, base: Field | None = None) -> Operand:
    return Operand(name, kind, fld, base)


_GPR_T = _op("rT", OperandKind.GPR, f.RT)
_GPR_S = _op("rS", OperandKind.GPR, f.RT)  # RS occupies the RT field
_GPR_A = _op("rA", OperandKind.GPR, f.RA)
_GPR_B = _op("rB", OperandKind.GPR, f.RB)
_GPR_A_DEST = _op("rA", OperandKind.GPR, f.RA)
_CRF = _op("crfD", OperandKind.CRF, f.BF)
_SIMM = _op("SI", OperandKind.SIMM, f.SI)
_UIMM = _op("UI", OperandKind.UIMM, f.UI)
_DISP = _op("D(rA)", OperandKind.DISP_GPR, f.D, f.RA)
_BD = _op("target", OperandKind.REL_TARGET, f.BD)
_LI = _op("target", OperandKind.REL_TARGET, f.LI)
_BO = _op("BO", OperandKind.UINT, f.BO)
_BI = _op("BI", OperandKind.UINT, f.BI)
_SH = _op("SH", OperandKind.UINT, f.SH)
_MB = _op("MB", OperandKind.UINT, f.MB)
_ME = _op("ME", OperandKind.UINT, f.ME)
_SPR_RD = _op("SPR", OperandKind.SPR, f.SPR)


def _d_form(mnemonic: str, opcode: int, operands: tuple[Operand, ...]) -> InstrSpec:
    return InstrSpec(mnemonic, "D", ((f.OPCD, opcode),), operands)


def _d_mem(mnemonic: str, opcode: int, store: bool = False) -> InstrSpec:
    reg = _GPR_S if store else _GPR_T
    return InstrSpec(mnemonic, "D", ((f.OPCD, opcode),), (reg, _DISP))


def _d_cmp(mnemonic: str, opcode: int, imm: Operand) -> InstrSpec:
    return InstrSpec(
        mnemonic, "D", ((f.OPCD, opcode), (f.L, 0), (Field(9, 1), 0)), (_CRF, _GPR_A, imm)
    )


def _x_cmp(mnemonic: str, xo: int) -> InstrSpec:
    return InstrSpec(
        "%s" % mnemonic,
        "X",
        ((f.OPCD, 31), (f.XO10, xo), (f.L, 0), (Field(9, 1), 0), (f.RC, 0)),
        (_CRF, _GPR_A, _GPR_B),
    )


def _xo_arith(mnemonic: str, xo: int, operands: tuple[Operand, ...] | None = None) -> InstrSpec:
    ops = operands if operands is not None else (_GPR_T, _GPR_A, _GPR_B)
    return InstrSpec(
        mnemonic, "XO", ((f.OPCD, 31), (f.XO9, xo), (f.OE, 0), (f.RC, 0)), ops
    )


def _x_logic(mnemonic: str, xo: int) -> InstrSpec:
    # Logical X-form writes rA; source register rS lives in the RT field.
    return InstrSpec(
        mnemonic, "X", ((f.OPCD, 31), (f.XO10, xo), (f.RC, 0)), (_GPR_A_DEST, _GPR_S, _GPR_B)
    )


INSTRUCTION_SPECS: tuple[InstrSpec, ...] = (
    # --- D-form arithmetic and logical immediates ---------------------
    _d_form("mulli", 7, (_GPR_T, _GPR_A, _SIMM)),
    _d_form("subfic", 8, (_GPR_T, _GPR_A, _SIMM)),
    _d_cmp("cmplwi", 10, _UIMM),
    _d_cmp("cmpwi", 11, _SIMM),
    _d_form("addi", 14, (_GPR_T, _GPR_A, _SIMM)),
    _d_form("addis", 15, (_GPR_T, _GPR_A, _SIMM)),
    _d_form("ori", 24, (_GPR_A_DEST, _GPR_S, _UIMM)),
    _d_form("oris", 25, (_GPR_A_DEST, _GPR_S, _UIMM)),
    _d_form("xori", 26, (_GPR_A_DEST, _GPR_S, _UIMM)),
    _d_form("xoris", 27, (_GPR_A_DEST, _GPR_S, _UIMM)),
    _d_form("andi.", 28, (_GPR_A_DEST, _GPR_S, _UIMM)),
    _d_form("andis.", 29, (_GPR_A_DEST, _GPR_S, _UIMM)),
    # --- D-form memory -------------------------------------------------
    _d_mem("lwz", 32),
    _d_mem("lwzu", 33),
    _d_mem("lbz", 34),
    _d_mem("lbzu", 35),
    _d_mem("stw", 36, store=True),
    _d_mem("stwu", 37, store=True),
    _d_mem("stb", 38, store=True),
    _d_mem("stbu", 39, store=True),
    _d_mem("lhz", 40),
    _d_mem("lha", 42),
    _d_mem("sth", 44, store=True),
    # --- Branches -------------------------------------------------------
    InstrSpec("bc", "B", ((f.OPCD, 16), (f.AA, 0), (f.LK, 0)), (_BO, _BI, _BD)),
    InstrSpec("bcl", "B", ((f.OPCD, 16), (f.AA, 0), (f.LK, 1)), (_BO, _BI, _BD)),
    InstrSpec(
        "sc", "SC", ((f.OPCD, 17), (f.LEV, 0), (Field(6, 14), 0), (Field(27, 5), 0b00010)), ()
    ),
    InstrSpec("b", "I", ((f.OPCD, 18), (f.AA, 0), (f.LK, 0)), (_LI,)),
    InstrSpec("bl", "I", ((f.OPCD, 18), (f.AA, 0), (f.LK, 1)), (_LI,)),
    InstrSpec(
        "bclr",
        "XL",
        ((f.OPCD, 19), (f.XO10, 16), (f.LK, 0), (f.RB, 0)),
        (_BO, _BI),
    ),
    InstrSpec(
        "bcctr",
        "XL",
        ((f.OPCD, 19), (f.XO10, 528), (f.LK, 0), (f.RB, 0)),
        (_BO, _BI),
    ),
    InstrSpec(
        "bcctrl",
        "XL",
        ((f.OPCD, 19), (f.XO10, 528), (f.LK, 1), (f.RB, 0)),
        (_BO, _BI),
    ),
    # --- M-form rotate ---------------------------------------------------
    InstrSpec(
        "rlwinm", "M", ((f.OPCD, 21), (f.RC, 0)), (_GPR_A_DEST, _GPR_S, _SH, _MB, _ME)
    ),
    # --- Opcode-31 compares, arithmetic, logical, shifts ----------------
    _x_cmp("cmpw", 0),
    _x_cmp("cmplw", 32),
    _xo_arith("subf", 40),
    _xo_arith("neg", 104, (_GPR_T, _GPR_A)),
    _xo_arith("mullw", 235),
    _xo_arith("add", 266),
    _xo_arith("divwu", 459),
    _xo_arith("divw", 491),
    _x_logic("slw", 24),
    _x_logic("and", 28),
    _x_logic("xor", 316),
    _x_logic("nor", 124),
    _x_logic("or", 444),
    _x_logic("srw", 536),
    _x_logic("sraw", 792),
    InstrSpec(
        "srawi", "X", ((f.OPCD, 31), (f.XO10, 824), (f.RC, 0)), (_GPR_A_DEST, _GPR_S, _SH)
    ),
    InstrSpec(
        "extsb", "X", ((f.OPCD, 31), (f.XO10, 954), (f.RC, 0), (f.RB, 0)), (_GPR_A_DEST, _GPR_S)
    ),
    InstrSpec(
        "extsh", "X", ((f.OPCD, 31), (f.XO10, 922), (f.RC, 0), (f.RB, 0)), (_GPR_A_DEST, _GPR_S)
    ),
    InstrSpec("mfspr", "XFX", ((f.OPCD, 31), (f.XO10, 339), (f.RC, 0)), (_GPR_T, _SPR_RD)),
    InstrSpec("mtspr", "XFX", ((f.OPCD, 31), (f.XO10, 467), (f.RC, 0)), (_SPR_RD, _GPR_S)),
)

SPEC_BY_MNEMONIC: dict[str, InstrSpec] = {spec.mnemonic: spec for spec in INSTRUCTION_SPECS}

_DECODE_INDEX: dict[int, tuple[InstrSpec, ...]] = {}
for _spec in INSTRUCTION_SPECS:
    _primary = dict(_spec.fixed)[f.OPCD]
    _DECODE_INDEX.setdefault(_primary, ())
    _DECODE_INDEX[_primary] = _DECODE_INDEX[_primary] + (_spec,)


def spec_for(mnemonic: str) -> InstrSpec:
    """Look up the spec for a mnemonic; raises ``KeyError`` if unknown."""
    return SPEC_BY_MNEMONIC[mnemonic]


def decode_spec(word: int) -> InstrSpec:
    """Find the unique spec matching a 32-bit word.

    Raises :class:`~repro.errors.DecodingError` for illegal opcodes and
    unknown encodings — exactly the property the baseline compression
    scheme relies on to distinguish codewords from instructions.
    """
    primary = f.OPCD.extract(word)
    if primary in ILLEGAL_PRIMARY_OPCODES:
        raise DecodingError(f"illegal primary opcode {primary} in word {word:#010x}")
    candidates = _DECODE_INDEX.get(primary)
    if not candidates:
        raise DecodingError(f"unknown primary opcode {primary} in word {word:#010x}")
    best: InstrSpec | None = None
    for spec in candidates:
        if spec.matches(word):
            if best is None or spec.mask.bit_count() > best.mask.bit_count():
                best = spec
    if best is None:
        raise DecodingError(f"word {word:#010x} matches no known encoding")
    return best
