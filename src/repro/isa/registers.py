"""Register model for the PowerPC subset.

PowerPC has 32 general-purpose registers, 8 condition-register fields of
4 bits each, and special-purpose registers, of which we model LR (link
register, SPR 8) and CTR (count register, SPR 9).

The ABI roles below follow the System V PowerPC ELF ABI that GCC used for
the paper's benchmarks: r1 is the stack pointer, r3–r10 carry arguments
and r3 the return value, r31 downwards are callee-saved.
"""

from __future__ import annotations

GPR_COUNT = 32
CR_FIELDS = 8

# Special-purpose register numbers (as used by mtspr/mfspr).
XER = 1
LR = 8
CTR = 9

SPR_NAMES = {XER: "xer", LR: "lr", CTR: "ctr"}

# ABI register roles.
STACK_POINTER = 1
TOC_POINTER = 2
FIRST_ARG = 3
LAST_ARG = 10
RETURN_VALUE = 3
FIRST_CALLEE_SAVED = 14
SCRATCH = 0  # r0: prologue/epilogue scratch, not allocatable

# CR bit offsets within a 4-bit CR field.
CR_LT = 0
CR_GT = 1
CR_EQ = 2
CR_SO = 3


def reg_name(number: int) -> str:
    """Render a GPR number as assembly text (``r5``)."""
    if not 0 <= number < GPR_COUNT:
        raise ValueError(f"GPR number {number} out of range")
    return f"r{number}"


def crf_name(number: int) -> str:
    """Render a CR field number as assembly text (``cr1``)."""
    if not 0 <= number < CR_FIELDS:
        raise ValueError(f"CR field {number} out of range")
    return f"cr{number}"


def parse_reg(text: str) -> int:
    """Parse ``r5`` (or ``sp`` for r1) into a GPR number."""
    text = text.strip().lower()
    if text == "sp":
        return STACK_POINTER
    if text.startswith("r") and text[1:].isdigit():
        number = int(text[1:])
        if 0 <= number < GPR_COUNT:
            return number
    raise ValueError(f"bad register name: {text!r}")


def parse_crf(text: str) -> int:
    """Parse ``cr1`` into a CR field number."""
    text = text.strip().lower()
    if text.startswith("cr") and text[2:].isdigit():
        number = int(text[2:])
        if 0 <= number < CR_FIELDS:
            return number
    raise ValueError(f"bad condition register field: {text!r}")


def callee_saved() -> range:
    """GPRs the callee must preserve across calls (r14–r31)."""
    return range(FIRST_CALLEE_SAVED, GPR_COUNT)


def argument_regs() -> range:
    """GPRs used to pass the first eight integer arguments (r3–r10)."""
    return range(FIRST_ARG, LAST_ARG + 1)
