"""Linker substrate: object modules, layout, and the Program container.

The compiler emits :class:`~repro.linker.objfile.ObjectModule` objects;
:func:`~repro.linker.layout.link` resolves symbols and produces a
:class:`~repro.linker.program.Program` — the unit on which the
compression core and the machine simulator operate.
"""

from repro.linker.objfile import (
    AsmOp,
    DataItem,
    FunctionUnit,
    InsnRole,
    ObjectModule,
)
from repro.linker.layout import link
from repro.linker.program import Program, TextInstruction

__all__ = [
    "AsmOp",
    "DataItem",
    "FunctionUnit",
    "InsnRole",
    "ObjectModule",
    "link",
    "Program",
    "TextInstruction",
]
