"""Static linking: object modules -> Program.

Mirrors the paper's setup ("Linking was done statically so that the
libraries are included in the results"): application modules and the
runtime library are laid out into one .text section, symbols resolved,
branch offsets encoded at word granularity, and jump tables materialized
in .data with absolute code addresses.
"""

from __future__ import annotations

from repro import bitutils
from repro.errors import LinkError
from repro.isa.fields import OperandKind
from repro.isa.instruction import Instruction
from repro.isa.opcodes import SPEC_BY_MNEMONIC
from repro.linker.objfile import AsmOp, DataItem, FunctionUnit, ObjectModule
from repro.linker.program import (
    DATA_BASE,
    TEXT_BASE,
    JumpTableSlot,
    Program,
    TextInstruction,
)

ENTRY_SYMBOL = "_start"


def _ha(address: int) -> int:
    """High-adjusted 16 bits: pairs with a sign-extending low half."""
    return ((address + 0x8000) >> 16) & 0xFFFF


def _lo(address: int) -> int:
    """Signed low 16 bits (pairs with :func:`_ha`)."""
    return bitutils.sign_extend(address & 0xFFFF, 16)


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def link(modules: list[ObjectModule], name: str = "a.out") -> Program:
    """Resolve symbols across ``modules`` and produce a linked Program.

    The function named ``_start`` becomes the entry point and is placed
    first.  Raises :class:`~repro.errors.LinkError` on duplicate or
    undefined symbols and on out-of-range branch offsets.
    """
    functions: list[FunctionUnit] = []
    data_items: list[DataItem] = []
    for module in modules:
        functions.extend(module.functions)
        data_items.extend(module.data)

    by_name: dict[str, FunctionUnit] = {}
    for fn in functions:
        if fn.name in by_name:
            raise LinkError(f"duplicate function symbol {fn.name!r}")
        by_name[fn.name] = fn
    if ENTRY_SYMBOL not in by_name:
        raise LinkError(f"no entry symbol {ENTRY_SYMBOL!r}")
    ordered = [by_name[ENTRY_SYMBOL]] + [f for f in functions if f.name != ENTRY_SYMBOL]

    # Pass 1: assign every function a base instruction index.
    func_base: dict[str, int] = {}
    cursor = 0
    for fn in ordered:
        func_base[fn.name] = cursor
        cursor += len(fn.ops)
    total_instructions = cursor

    # Data layout.
    data_image = bytearray()
    data_addr: dict[str, int] = {}
    for item in data_items:
        if item.symbol in data_addr or item.symbol in func_base:
            raise LinkError(f"duplicate data symbol {item.symbol!r}")
        offset = _align(len(data_image), item.align)
        data_image.extend(b"\x00" * (offset - len(data_image)))
        data_addr[item.symbol] = DATA_BASE + offset
        payload = item.initial + b"\x00" * (item.size - len(item.initial))
        data_image.extend(payload)

    symbols: dict[str, int] = {
        fn_name: TEXT_BASE + 4 * base for fn_name, base in func_base.items()
    }
    symbols.update(data_addr)

    # Pass 2: encode instructions with resolved targets.
    text: list[TextInstruction] = []
    for fn in ordered:
        base = func_base[fn.name]
        for local_index, op in enumerate(fn.ops):
            index = base + local_index
            target_index = None
            values = list(op.values)
            if op.target is not None:
                target_index = _resolve_target(op, fn, func_base, by_name)
                slot = _rel_target_slot(op.mnemonic)
                offset = target_index - index
                _check_branch_range(op.mnemonic, offset, fn.name)
                values[slot] = offset
            if op.hi_symbol is not None:
                values = _apply_hi(op, values, op.hi_symbol, data_addr, fn.name)
            if op.lo_symbol is not None:
                values = _apply_lo(op, values, op.lo_symbol, op.lo_addend, data_addr, fn.name)
            instruction = Instruction(SPEC_BY_MNEMONIC[op.mnemonic], tuple(values))
            text.append(
                TextInstruction(
                    instruction=instruction,
                    role=op.role,
                    function=fn.name,
                    is_library=fn.is_library,
                    target_index=target_index,
                )
            )

    # Jump-table slots: write absolute code addresses into .data.
    slots: list[JumpTableSlot] = []
    for item in data_items:
        item_offset = data_addr[item.symbol] - DATA_BASE
        for word_index, (func_name, label) in sorted(item.code_labels.items()):
            if func_name not in by_name:
                raise LinkError(f"jump table {item.symbol}: unknown function {func_name!r}")
            fn = by_name[func_name]
            if label not in fn.labels:
                raise LinkError(f"jump table {item.symbol}: unknown label {label!r}")
            target_index = func_base[func_name] + fn.labels[label]
            byte_offset = item_offset + 4 * word_index
            if byte_offset + 4 > len(data_image):
                raise LinkError(f"jump table {item.symbol}: slot outside object")
            address = TEXT_BASE + 4 * target_index
            data_image[byte_offset : byte_offset + 4] = address.to_bytes(4, "big")
            slots.append(JumpTableSlot(byte_offset, target_index))

    if total_instructions != len(text):  # pragma: no cover - internal invariant
        raise LinkError("layout size mismatch")
    program = Program(
        name=name,
        text=text,
        data_image=data_image,
        symbols=symbols,
        jump_table_slots=slots,
        entry_index=func_base[ENTRY_SYMBOL],
    )
    program.check_consistency()
    return program


def _resolve_target(
    op: AsmOp,
    fn: FunctionUnit,
    func_base: dict[str, int],
    by_name: dict[str, FunctionUnit],
) -> int:
    assert op.target is not None
    if op.target in fn.labels:
        return func_base[fn.name] + fn.labels[op.target]
    if op.target in by_name:
        return func_base[op.target]
    raise LinkError(f"{fn.name}: undefined branch target {op.target!r}")


def _rel_target_slot(mnemonic: str) -> int:
    spec = SPEC_BY_MNEMONIC[mnemonic]
    for slot, operand in enumerate(spec.operands):
        if operand.kind is OperandKind.REL_TARGET:
            return slot
    raise LinkError(f"{mnemonic} has no relative target operand")


def _check_branch_range(mnemonic: str, offset: int, function: str) -> None:
    spec = SPEC_BY_MNEMONIC[mnemonic]
    for operand in spec.operands:
        if operand.kind is OperandKind.REL_TARGET:
            if not bitutils.fits_signed(offset, operand.field.width):
                raise LinkError(
                    f"{function}: {mnemonic} offset {offset} exceeds "
                    f"{operand.field.width}-bit field"
                )


def _apply_hi(
    op: AsmOp, values: list, symbol: str, data_addr: dict[str, int], function: str
) -> list:
    if symbol not in data_addr:
        raise LinkError(f"{function}: undefined data symbol {symbol!r}")
    address = data_addr[symbol] + op.lo_addend if op.lo_symbol is None else data_addr[symbol]
    # @ha always pairs with a signed low half that includes the addend.
    full = data_addr[symbol] + op.lo_addend
    values = list(values)
    values[_immediate_slot(op.mnemonic)] = bitutils.sign_extend(_ha(full), 16)
    return values


def _apply_lo(
    op: AsmOp,
    values: list,
    symbol: str,
    addend: int,
    data_addr: dict[str, int],
    function: str,
) -> list:
    if symbol not in data_addr:
        raise LinkError(f"{function}: undefined data symbol {symbol!r}")
    low = _lo(data_addr[symbol] + addend)
    spec = SPEC_BY_MNEMONIC[op.mnemonic]
    values = list(values)
    for slot, operand in enumerate(spec.operands):
        if operand.kind is OperandKind.DISP_GPR:
            _, base = values[slot]
            values[slot] = (low, base)
            return values
    values[_immediate_slot(op.mnemonic)] = low
    return values


def _immediate_slot(mnemonic: str) -> int:
    spec = SPEC_BY_MNEMONIC[mnemonic]
    for slot, operand in enumerate(spec.operands):
        if operand.kind in (OperandKind.SIMM, OperandKind.UIMM):
            return slot
    raise LinkError(f"{mnemonic} has no immediate operand for relocation")
