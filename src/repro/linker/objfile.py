"""Pre-link object representation.

A :class:`FunctionUnit` is a list of :class:`AsmOp` — instructions whose
branch targets are still symbolic.  Local labels (within the function)
resolve to instruction indices at link time; ``bl`` targets name other
functions.  Every op carries an :class:`InsnRole` so the experiments can
separate prologue/epilogue code (paper Table 3).

Design rule enforced here: **.text never embeds an absolute code
address in an immediate field.**  Code addresses live only in branch
offset fields (re-patched after compression) and in jump tables placed
in .data (patched after compression) — exactly the discipline the paper
assumes in section 3.2.1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.opcodes import SPEC_BY_MNEMONIC


class InsnRole(enum.Enum):
    """Why an instruction exists; used by Table 3 and the workload stats."""

    PROLOGUE = "prologue"
    EPILOGUE = "epilogue"
    BODY = "body"


@dataclass
class AsmOp:
    """One pre-layout instruction.

    ``values`` matches the instruction spec's operand order; any
    ``REL_TARGET`` slot holds 0 and the real target is named by
    ``target`` (a local label like ``"L3"`` or a function name for
    ``bl``).  ``hi_symbol``/``lo_symbol`` mark D-form immediates that
    take the high/low half of a **data** symbol's address at link time.
    """

    mnemonic: str
    values: tuple
    target: str | None = None
    role: InsnRole = InsnRole.BODY
    hi_symbol: str | None = None
    lo_symbol: str | None = None
    lo_addend: int = 0

    def __post_init__(self) -> None:
        if self.mnemonic not in SPEC_BY_MNEMONIC:
            raise ValueError(f"unknown mnemonic {self.mnemonic!r}")

    @property
    def is_relative_branch(self) -> bool:
        return SPEC_BY_MNEMONIC[self.mnemonic].is_relative_branch


@dataclass
class FunctionUnit:
    """A compiled function: ops plus its local label map."""

    name: str
    ops: list[AsmOp] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    is_library: bool = False

    def add(self, op: AsmOp) -> int:
        """Append an op, returning its index within the function."""
        self.ops.append(op)
        return len(self.ops) - 1

    def place_label(self, label: str) -> None:
        """Bind ``label`` to the next emitted instruction."""
        if label in self.labels:
            raise ValueError(f"duplicate label {label!r} in {self.name}")
        self.labels[label] = len(self.ops)


@dataclass
class DataItem:
    """One .data object.

    ``initial`` supplies initial bytes; ``code_labels`` marks word
    offsets that must hold the address of a local code label — these are
    jump-table slots, recorded so the compressor can re-patch them after
    code addresses move (paper section 3.2.1).
    """

    symbol: str
    size: int
    align: int = 4
    initial: bytes = b""
    # word offset within the item -> (function name, local label)
    code_labels: dict[int, tuple[str, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.initial) > self.size:
            raise ValueError(f"{self.symbol}: initializer larger than object")


@dataclass
class ObjectModule:
    """A collection of functions and data produced by one compilation."""

    name: str
    functions: list[FunctionUnit] = field(default_factory=list)
    data: list[DataItem] = field(default_factory=list)

    def function(self, name: str) -> FunctionUnit:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function {name!r} in module {self.name}")
