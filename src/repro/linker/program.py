"""The linked Program: the unit the compressor and simulator consume.

A :class:`Program` is a flat list of :class:`TextInstruction` (the .text
section, one 32-bit PowerPC instruction each), a data image, a symbol
table, and the list of jump-table slots in .data that hold code
addresses.  Addresses are byte addresses; instruction *indices* are the
natural unit for analysis, with ``address = text_base + 4 * index`` in
the uncompressed program.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import bitutils
from repro.linker.objfile import InsnRole
from repro.isa.instruction import Instruction

TEXT_BASE = 0x0001_0000
DATA_BASE = 0x0040_0000
STACK_TOP = 0x0080_0000


@dataclass(frozen=True)
class TextInstruction:
    """One laid-out instruction.

    ``target_index`` is set for PC-relative branches (the absolute index
    of the destination instruction); the encoded offset field is kept
    consistent by the linker and re-derived by the branch patcher after
    compression.
    """

    instruction: Instruction
    role: InsnRole
    function: str
    is_library: bool
    target_index: int | None = None

    @property
    def mnemonic(self) -> str:
        return self.instruction.mnemonic

    @property
    def word(self) -> int:
        return self.instruction.encode()

    @property
    def is_relative_branch(self) -> bool:
        return self.instruction.spec.is_relative_branch

    def retarget(self, raw_offset: int) -> "TextInstruction":
        """Return a copy with the branch offset field replaced."""
        return replace(
            self, instruction=self.instruction.replace_operand("target", raw_offset)
        )


@dataclass(frozen=True)
class JumpTableSlot:
    """A word in .data that must hold the address of a text instruction."""

    data_offset: int  # byte offset within the data image
    target_index: int  # text instruction it points at


@dataclass
class Program:
    """A fully linked executable image."""

    name: str
    text: list[TextInstruction]
    data_image: bytearray
    symbols: dict[str, int]  # name -> byte address (text or data)
    jump_table_slots: list[JumpTableSlot] = field(default_factory=list)
    entry_index: int = 0
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE

    # ------------------------------------------------------------------
    # Size and content accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.text)

    _words_cache: list[int] | None = field(
        init=False, repr=False, compare=False, default=None
    )
    # Scratch space for derived per-program analyses (basic-block maps,
    # the candidate store).  Keyed by the producing module; valid for the
    # same reason words() may be cached: a linked Program's text is never
    # mutated in place (transformations build new Programs).
    _analysis_cache: dict = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def words(self) -> list[int]:
        """The 32-bit instruction words of .text, in order (cached —
        a linked Program's text is never mutated in place)."""
        if self._words_cache is None:
            self._words_cache = [ti.word for ti in self.text]
        return self._words_cache

    def text_bytes(self) -> bytes:
        """The .text section as bytes (big-endian, as in ROM)."""
        return bitutils.words_to_bytes(self.words())

    @property
    def text_size(self) -> int:
        """Static program size in bytes — the paper's 'original size'."""
        return 4 * len(self.text)

    def address_of(self, index: int) -> int:
        """Byte address of the instruction at ``index``."""
        return self.text_base + 4 * index

    def index_of_address(self, address: int) -> int:
        """Inverse of :meth:`address_of`; raises for misaligned/bad PCs."""
        offset = address - self.text_base
        if offset % 4 or not 0 <= offset < self.text_size:
            raise ValueError(f"address {address:#x} is not a text instruction")
        return offset // 4

    # ------------------------------------------------------------------
    # Control-flow metadata used by the compressor
    # ------------------------------------------------------------------
    def branch_target_indices(self) -> set[int]:
        """Indices that some branch or jump-table slot can reach."""
        targets = {slot.target_index for slot in self.jump_table_slots}
        for ti in self.text:
            if ti.target_index is not None:
                targets.add(ti.target_index)
        # Function entry points are reachable via bl symbol resolution;
        # those branches carry target_index too, so nothing extra needed,
        # but the entry point itself must stay addressable.
        targets.add(self.entry_index)
        return targets

    def function_ranges(self) -> dict[str, tuple[int, int]]:
        """Map function name -> [start, end) index range."""
        ranges: dict[str, tuple[int, int]] = {}
        start = 0
        for i, ti in enumerate(self.text):
            if i and ti.function != self.text[i - 1].function:
                ranges[self.text[start].function] = (start, i)
                start = i
        if self.text:
            ranges[self.text[start].function] = (start, len(self.text))
        return ranges

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Validate branch offsets against target indices.

        The linker encodes every relative branch's offset field as
        ``target_index - index`` (word granularity).  This asserts the
        invariant holds, so the compressor can trust ``target_index``.
        """
        for index, ti in enumerate(self.text):
            if ti.target_index is None:
                continue
            raw = ti.instruction.operand("target")
            expected = ti.target_index - index
            if raw != expected:
                raise AssertionError(
                    f"{self.name}[{index}] {ti.mnemonic}: offset {raw} != "
                    f"target {ti.target_index} - {index}"
                )
            if not 0 <= ti.target_index < len(self.text):
                raise AssertionError(
                    f"{self.name}[{index}]: target index {ti.target_index} out of range"
                )
