"""Machine substrate: functional PowerPC-subset simulation.

Two execution front ends share one execution core
(:mod:`repro.machine.executor`):

* :class:`~repro.machine.simulator.Simulator` fetches 32-bit words from
  an uncompressed :class:`~repro.linker.program.Program`;
* :class:`~repro.machine.compressed_sim.CompressedSimulator` fetches
  codewords from a compressed image, expands them through the
  dictionary in its decode stage (paper Figure 3), and issues the
  original instructions.

Each front end has two interchangeable implementations selected by the
``implementation`` constructor keyword: the ``"reference"``
decode-on-every-fetch interpreter, and the default ``"fast"``
translation-cache path (:mod:`repro.machine.fastpath`) that predecodes
every instruction once into a bound thunk and executes straight-line
traces without re-entering the dispatch loop.  Trace bodies may embed
*superinstructions* — fused two-instruction thunks compiled by
:mod:`repro.machine.fusion` for the hottest adjacent pairs — and
strict-mode stream decoding goes through the table-driven bulk decoder
(:mod:`repro.machine.bulkdecode`) instead of the item-at-a-time walk.

The integration tests run every workload through both front ends and
both implementations and require identical architectural results — the
paper's correctness claim.
"""

from repro.machine.memory import Memory
from repro.machine.state import MachineState
from repro.machine.simulator import (
    IMPLEMENTATIONS,
    RunResult,
    Simulator,
    profile_program,
    run_program,
)
from repro.machine.compressed_sim import CompressedSimulator, run_compressed
from repro.machine.bulkdecode import (
    bulk_stats,
    clear_tables,
    set_backend,
)
from repro.machine.fastpath import (
    clear_translation_caches,
    translation_cache_stats,
)
from repro.machine.fusion import (
    configure as configure_fusion,
    fusion_stats,
    plan_from_profile,
)
from repro.machine.icache import InstructionCache, attach_to_simulator
from repro.machine.timing import TimingParameters, time_compressed, time_uncompressed
from repro.machine.trace import trace_compressed, trace_program, traces_equivalent

__all__ = [
    "IMPLEMENTATIONS",
    "Memory",
    "MachineState",
    "RunResult",
    "Simulator",
    "bulk_stats",
    "clear_tables",
    "clear_translation_caches",
    "configure_fusion",
    "fusion_stats",
    "plan_from_profile",
    "profile_program",
    "run_program",
    "set_backend",
    "translation_cache_stats",
    "CompressedSimulator",
    "run_compressed",
    "InstructionCache",
    "attach_to_simulator",
    "TimingParameters",
    "time_compressed",
    "time_uncompressed",
    "trace_compressed",
    "trace_program",
    "traces_equivalent",
]
