"""Machine substrate: functional PowerPC-subset simulation.

Two execution front ends share one execution core
(:mod:`repro.machine.executor`):

* :class:`~repro.machine.simulator.Simulator` fetches 32-bit words from
  an uncompressed :class:`~repro.linker.program.Program`;
* :class:`~repro.machine.compressed_sim.CompressedSimulator` fetches
  codewords from a compressed image, expands them through the
  dictionary in its decode stage (paper Figure 3), and issues the
  original instructions.

The integration tests run every workload through both and require
identical architectural results — the paper's correctness claim.
"""

from repro.machine.memory import Memory
from repro.machine.state import MachineState
from repro.machine.simulator import (
    RunResult,
    Simulator,
    profile_program,
    run_program,
)
from repro.machine.compressed_sim import CompressedSimulator, run_compressed
from repro.machine.icache import InstructionCache, attach_to_simulator
from repro.machine.timing import TimingParameters, time_compressed, time_uncompressed
from repro.machine.trace import trace_compressed, trace_program, traces_equivalent

__all__ = [
    "Memory",
    "MachineState",
    "RunResult",
    "Simulator",
    "profile_program",
    "run_program",
    "CompressedSimulator",
    "run_compressed",
    "InstructionCache",
    "attach_to_simulator",
    "TimingParameters",
    "time_compressed",
    "time_uncompressed",
    "trace_compressed",
    "trace_program",
    "traces_equivalent",
]
