"""Table-driven bulk decoding of compressed streams.

The reference walk (:meth:`~repro.machine.decompressor.StreamDecoder.
decode_all_reference`) classifies one item at a time through a generic
``BitReader`` — peek, branch on the escape test, read the payload —
which costs microseconds per item in Python.  This module is the
vectorized VByte-decoding idea applied to the paper's three encodings:
classify items through **precomputed tables over a fixed-width stream
prefix**, so the per-item work collapses to table gathers plus one
bulk materialization pass.

Per encoding the table maps a prefix to ``(item length in alignment
units, codeword rank or escape marker)``:

* **nibble** — a 16-bit prefix (4 nibbles) determines everything: the
  first nibble selects the band (or the escape value 15) and therefore
  the item length, and the band tail bits are inside the prefix
  because the longest codeword is 4 nibbles.  65536-entry
  ``lens``/``ranks`` tables, built once per encoding and cached by the
  encoding token; because bands are allotted in whole first-nibble
  blocks, the length table collapses to 16 entries.
* **baseline** — the first *byte* decides: 32 escape byte values (the
  illegal primary opcodes × low bits) start a 2-byte codeword whose
  rank is ``escape_rank << 8 | index_byte``; anything else is a 4-byte
  uncompressed instruction.  A 256-entry first-byte table.
* **onebyte** — the escape byte *is* the codeword (rank = its position
  in the escape list); anything else is a 4-byte instruction.  A
  256-entry first-byte table.

Two interchangeable backends share the same tables.  The pure-Python
backend is a cursor walk over the table — one list index per item.
The numpy backend (selected at import when numpy is available) removes
the per-item Python loop entirely:

1. *classify* every stream position with one table gather;
2. *enumerate* item boundaries by path-doubling the jump table
   (``J = J[J]`` squarings seed the first 256 boundaries, then fixed
   256-item strides fill the rest);
3. *materialize* columns (addresses, lengths, ranks, instruction
   tuples) with object-dtype gathers and a single C-level
   ``map(tuple.__new__, repeat(FetchItem), zip(...))`` pass.

The walk is optimistic: any anomaly (codeword rank beyond the
dictionary, an escaped word that does not decode, a truncated stream,
a unit-count mismatch) raises :class:`BulkFallback` and the caller
re-runs the reference walk so strict-mode errors are byte-identical.
"""

from __future__ import annotations

from array import array

from repro.core.encodings import (
    BaselineEncoding,
    CustomNibbleEncoding,
    OneByteEncoding,
)
from repro.errors import DecodingError
from repro.isa.instruction import decode as _decode_word

try:  # pragma: no cover - exercised via backend()
    import numpy as _np
except Exception:  # pragma: no cover - numpy is optional
    _np = None

_BACKEND = "numpy" if _np is not None else "python"

# Below this stream size the vectorized classification pass costs more
# than it saves; the pure-Python walk handles small streams directly.
_NUMPY_MIN_BYTES = 512

# Padding appended to the working copy of the stream so prefix/word
# assembly near the tail never bounds-checks; a decode that actually
# consumes padding is caught by the unit-count checks.
_PAD = b"\x00" * 8

# Process-wide raw-word -> (Instruction,) memo shared by every decode;
# escape words repeat heavily across programs, so this converges fast.
_WORD_INSTRS: dict[int, tuple] = {}
_WORD_INSTRS_CAP = 1 << 20


class BulkFallback(Exception):
    """Bulk decode declined; the caller must use the reference walk."""


_STATS = {
    "decodes": 0,
    "fallbacks": 0,
    "last_fallback": None,
    # reason -> count: which anomaly triggered each BulkFallback, so a
    # silent fallback-to-reference shows up in bench output instead of
    # masquerading as bulk throughput.
    "fallback_reasons": {},
}


def backend() -> str:
    """The active backend: ``"numpy"`` or ``"python"``."""
    return _BACKEND


def set_backend(name: str) -> str:
    """Select the backend process-wide; returns the previous one."""
    global _BACKEND
    if name not in ("numpy", "python"):
        raise ValueError(f"unknown bulk-decode backend {name!r}")
    if name == "numpy" and _np is None:
        raise ValueError("numpy backend requested but numpy is unavailable")
    previous = _BACKEND
    _BACKEND = name
    return previous


def available_backends() -> tuple[str, ...]:
    return ("python",) if _np is None else ("python", "numpy")


def bulk_stats() -> dict:
    """Process-wide bulk decode counters (tests and `repro-bench`).

    ``fallback_reasons`` maps each anomaly message that raised
    :class:`BulkFallback` to how many times it fired (a copy — safe to
    retain across later decodes).
    """
    stats = dict(_STATS, backend=_BACKEND)
    stats["fallback_reasons"] = dict(_STATS["fallback_reasons"])
    return stats


def reset_bulk_stats() -> None:
    """Zero the counters (benchmark isolation, tests)."""
    _STATS["decodes"] = 0
    _STATS["fallbacks"] = 0
    _STATS["last_fallback"] = None
    _STATS["fallback_reasons"] = {}


def _fallback(reason: str):
    _STATS["fallbacks"] += 1
    _STATS["last_fallback"] = reason
    reasons = _STATS["fallback_reasons"]
    reasons[reason] = reasons.get(reason, 0) + 1
    raise BulkFallback(reason)


# ---------------------------------------------------------------------------
# Classification tables, cached per encoding token
# ---------------------------------------------------------------------------
class _Tables:
    __slots__ = ("lens", "ranks", "np_steps", "np_ranks")

    def __init__(self, lens, ranks):
        self.lens = lens
        self.ranks = ranks
        self.np_steps = None
        self.np_ranks = None


_TABLES: dict[tuple, _Tables] = {}


def _encoding_token(encoding):
    from repro.machine.decompressor import _encoding_token as token

    return token(encoding)


def _nibble_tables(encoding: CustomNibbleEncoding) -> _Tables:
    """16-bit-prefix tables: prefix -> (length in nibbles, rank).

    Length 9 marks the escape prefix (escape nibble + 32-bit word).
    For a band of ``nibbles``-nibble codewords starting at first-nibble
    ``first_value`` with rank base ``base``, a prefix ``p`` classifies
    as rank ``base + ((p >> 12) - first_value) << tail | tail bits of
    p`` — the 12 prefix bits after the first nibble always contain the
    codeword tail because codewords are at most 4 nibbles.
    """
    token = _encoding_token(encoding)
    tables = _TABLES.get(token)
    if tables is not None:
        return tables
    lens = bytearray(65536)
    ranks = array("i", bytes(4 * 65536))
    base = 0
    for nibbles, first_value, size in encoding._bands:
        values = size // 16 ** (nibbles - 1)
        tail_bits = 4 * (nibbles - 1)
        repeats = 1 << (12 - tail_bits)
        lens_block = bytes([nibbles]) * 4096
        for value in range(first_value, first_value + values):
            start = value << 12
            lens[start : start + 4096] = lens_block
            rank_base = base + ((value - first_value) << tail_bits)
            ranks[start : start + 4096] = array(
                "i",
                [
                    rank_base + tail
                    for tail in range(1 << tail_bits)
                    for _ in range(repeats)
                ],
            )
        base += size
    escape_start = encoding._escape_value << 12
    lens[escape_start : escape_start + 4096] = b"\x09" * 4096
    tables = _Tables(lens, ranks)
    _TABLES[token] = tables
    return tables


def _byte_tables(encoding) -> _Tables:
    """First-byte table: byte -> escape rank, or -1 for an instruction."""
    token = _encoding_token(encoding)
    tables = _TABLES.get(token)
    if tables is not None:
        return tables
    ranks = array("i", [-1]) * 256
    for rank, byte in enumerate(encoding._escapes):
        ranks[byte] = rank
    tables = _Tables(None, ranks)
    _TABLES[token] = tables
    return tables


def clear_tables() -> None:
    """Drop cached classification tables (tests, memory pressure)."""
    _TABLES.clear()


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def decode_stream_columnar(decoder):
    """Bulk-decode ``decoder``'s stream into :class:`StreamColumns`.

    The native product of the bulk walk: both backends build parallel
    per-field arrays, and this entry hands them over without ever
    constructing a ``FetchItem`` tuple — the simulator predecode layer
    binds thunks straight from the columns.  Raises
    :class:`BulkFallback` whenever the reference walk must run instead
    (lenient mode, unknown encoding, or any malformed stream).
    """
    if not decoder.strict:
        _fallback("lenient decode always uses the reference walk")
    encoding = decoder.encoding
    use_numpy = _BACKEND == "numpy" and len(decoder.stream) >= _NUMPY_MIN_BYTES
    if isinstance(encoding, CustomNibbleEncoding):
        tables = _nibble_tables(encoding)
        if use_numpy:
            columns = _numpy_nibble(decoder, tables)
        else:
            columns = _python_nibble(decoder, tables)
    elif isinstance(encoding, (BaselineEncoding, OneByteEncoding)):
        indexed = isinstance(encoding, BaselineEncoding)
        tables = _byte_tables(encoding)
        if use_numpy:
            columns = _numpy_bytes(decoder, tables, codeword_indexed=indexed)
        else:
            columns = _python_bytes(decoder, tables, codeword_indexed=indexed)
    else:
        _fallback(f"unsupported encoding {encoding.name!r}")
    _STATS["decodes"] += 1
    return columns


def decode_stream(decoder) -> list:
    """Bulk-decode ``decoder``'s stream into a list of ``FetchItem``.

    Compatibility entry over :func:`decode_stream_columnar` for
    consumers that want materialized tuples.
    """
    return list(decode_stream_columnar(decoder).items())


def _memo_instructions(word: int):
    instructions = _WORD_INSTRS.get(word)
    if instructions is None:
        if len(_WORD_INSTRS) >= _WORD_INSTRS_CAP:
            _WORD_INSTRS.clear()
        try:
            instructions = (_decode_word(word),)
        except DecodingError:
            _fallback("escaped word does not decode")
        _WORD_INSTRS[word] = instructions
    return instructions


# ---------------------------------------------------------------------------
# numpy backend: classify everything, path-double the boundaries,
# materialize columns
# ---------------------------------------------------------------------------
def _enumerate_starts(steps, target: int, max_items: int):
    """Item start positions from a per-position step table.

    ``steps[p]`` is how far an item starting at position ``p`` advances
    the cursor.  Path doubling squares the jump table to ``J_256``
    while seeding the first 256 boundaries, then fills the rest in
    256-boundary strides; this bounds the O(m) squaring passes at 8
    regardless of item count.  Returns the int32 array of starts, or
    falls back if the chain does not land exactly on ``target``.
    """
    m = steps.shape[0]
    jumps = _np.arange(m, dtype=_np.int32)
    jumps += steps
    _np.minimum(jumps, m - 1, out=jumps)
    cap = max_items + 1
    out = _np.empty(cap, dtype=_np.int32)
    out[0] = 0
    filled = 1
    scratch = _np.empty(m, dtype=_np.int32)
    while filled < 256 and filled < cap:
        take = min(filled, cap - filled)
        out[filled : filled + take] = jumps[out[:take]]
        filled += take
        if filled >= cap or int(out[filled - 1]) >= target:
            break
        _np.take(jumps, jumps, out=scratch)
        jumps, scratch = scratch, jumps
    while filled < cap and int(out[filled - 1]) < target:
        take = min(256, cap - filled)
        out[filled : filled + take] = jumps[out[filled - 256 : filled - 256 + take]]
        filled += take
    count = int(_np.searchsorted(out[:filled], target, side="left"))
    if count >= filled or int(out[count]) != target:
        _fallback("stream truncated or unit-count mismatch")
    return out[:count]


def _np_ranks_table(tables: _Tables):
    if tables.np_ranks is None:
        tables.np_ranks = _np.array(tables.ranks, dtype=_np.int32)
    return tables.np_ranks


def _decode_escape_words(words):
    """Object array of instruction tuples for an array of raw words."""
    uniq, inverse = _np.unique(words, return_inverse=True)
    lookup = _np.empty(uniq.shape[0], dtype=object)
    for i, word in enumerate(uniq.tolist()):
        lookup[i] = _memo_instructions(word)
    return lookup[inverse]


def _numpy_nibble(decoder, tables: _Tables):
    stream = decoder.stream
    total = decoder.total_units
    if total > 2 * len(stream):
        _fallback("stream truncated or unit-count mismatch")
    if tables.np_steps is None:
        # Lengths are a function of the first nibble alone: the table
        # builder fills whole `value << 12` blocks.
        steps16 = bytes(tables.lens[value << 12] for value in range(16))
        if 0 in steps16:
            _fallback("encoding bands do not cover every first nibble")
        tables.np_steps = _np.frombuffer(steps16, dtype=_np.uint8)
    entries = decoder._entries
    padded = stream + _PAD
    raw = _np.frombuffer(padded, dtype=_np.uint8).astype(_np.uint32)
    nibbles = _np.empty(2 * raw.shape[0], dtype=_np.uint32)
    nibbles[0::2] = raw >> 4
    nibbles[1::2] = raw & 15
    starts = _enumerate_starts(tables.np_steps[nibbles], total, total)
    item_lens = tables.np_steps[nibbles[starts]]
    escapes = item_lens == 9
    prefixes = (
        (nibbles[starts] << 12)
        | (nibbles[starts + 1] << 8)
        | (nibbles[starts + 2] << 4)
        | nibbles[starts + 3]
    )
    ranks = _np_ranks_table(tables)[prefixes]
    codeword_ranks = ranks[~escapes]
    if codeword_ranks.shape[0] and int(codeword_ranks.max()) >= len(entries):
        _fallback("codeword rank beyond the dictionary")
    # Escaped 32-bit words live in the nibbles after the escape nibble;
    # assemble them straight from the padded byte view.
    word_pos = starts[escapes] + 1
    k = word_pos >> 1
    odd = (word_pos & 1) == 1
    w_even = (raw[k] << 24) | (raw[k + 1] << 16) | (raw[k + 2] << 8) | raw[k + 3]
    w_odd = (
        ((raw[k] & 15) << 28)
        | (raw[k + 1] << 20)
        | (raw[k + 2] << 12)
        | (raw[k + 3] << 4)
        | (raw[k + 4] >> 4)
    )
    return _materialize_columns(
        starts, item_lens, escapes, ranks,
        _np.where(odd, w_odd, w_even), entries,
    )


def _numpy_bytes(decoder, tables: _Tables, *, codeword_indexed: bool):
    stream = decoder.stream
    total = decoder.total_units
    entries = decoder._entries
    if codeword_indexed:
        codeword_bytes, codeword_units, instruction_units = 2, 1, 2
    else:
        codeword_bytes, codeword_units, instruction_units = 1, 1, 4
    # Byte positions advance `codeword_bytes` per codeword unit and 4
    # per instruction, so the stream end in bytes is proportional to
    # the unit count for each kind; both kinds keep bytes == units *
    # (codeword_bytes / codeword_units).
    target = total * codeword_bytes // codeword_units
    if target > len(stream):
        _fallback("stream truncated or unit-count mismatch")
    if tables.np_steps is None:
        escape_ranks = tables.ranks
        tables.np_steps = _np.frombuffer(
            bytes(
                codeword_bytes if escape_ranks[byte] >= 0 else 4
                for byte in range(256)
            ),
            dtype=_np.uint8,
        )
        tables.np_ranks = _np.array(escape_ranks, dtype=_np.int32)
    padded = stream + _PAD
    raw = _np.frombuffer(padded, dtype=_np.uint8)
    starts = _enumerate_starts(tables.np_steps[raw], target, total)
    escape_ranks = tables.np_ranks[raw[starts]]
    escapes = escape_ranks < 0
    if codeword_indexed:
        ranks = (escape_ranks << 8) | raw[starts + 1].astype(_np.int32)
    else:
        ranks = escape_ranks
    codeword_ranks = ranks[~escapes]
    if codeword_ranks.shape[0] and int(codeword_ranks.max()) >= len(entries):
        _fallback("codeword rank beyond the dictionary")
    k = starts[escapes]
    raw32 = raw.astype(_np.uint32)
    words = (
        (raw32[k] << 24) | (raw32[k + 1] << 16) | (raw32[k + 2] << 8) | raw32[k + 3]
    )
    if codeword_indexed:
        addresses = starts >> 1
    else:
        addresses = starts
    item_lens = _np.where(escapes, instruction_units, codeword_units).astype(
        _np.uint8
    )
    return _materialize_columns(
        addresses, item_lens, escapes, ranks, words, entries
    )


def _materialize_columns(addresses, item_lens, escapes, ranks, words, entries):
    """Build StreamColumns from numpy columns.

    Object-dtype gathers produce real Python ints/bools/tuples per
    column; each ``.tolist()`` is one C pass and no per-item tuple is
    ever constructed.
    """
    from repro.machine.decompressor import StreamColumns

    entry_lookup = _np.empty(max(len(entries), 1), dtype=object)
    for i, entry in enumerate(entries):
        entry_lookup[i] = entry
    instr_col = entry_lookup[_np.where(escapes, 0, ranks)]
    if words.shape[0]:
        instr_col[escapes] = _decode_escape_words(words)
    rank_col = ranks.astype(object)
    rank_col[escapes] = None
    return StreamColumns(
        addresses.tolist(),
        item_lens.tolist(),
        (~escapes).tolist(),
        rank_col.tolist(),
        instr_col.tolist(),
    )


# ---------------------------------------------------------------------------
# Pure-Python backend: cursor walk over the same tables
# ---------------------------------------------------------------------------
def _python_nibble(decoder, tables: _Tables):
    encoding = decoder.encoding
    stream = decoder.stream
    padded = stream + _PAD
    entries = decoder._entries
    n_entries = len(entries)
    total = decoder.total_units
    lens = tables.lens
    ranks = tables.ranks
    rows: list = []
    append = rows.append
    position = 0  # nibble cursor
    address = 0
    try:
        while address < total:
            i = position >> 1
            if position & 1:
                prefix = (
                    ((padded[i] & 15) << 12)
                    | (padded[i + 1] << 4)
                    | (padded[i + 2] >> 4)
                )
            else:
                prefix = (padded[i] << 8) | padded[i + 1]
            length = lens[prefix]
            if length == 0:
                _fallback("encoding bands do not cover every first nibble")
            if length != 9:
                rank = ranks[prefix]
                if rank >= n_entries:
                    _fallback("codeword rank beyond the dictionary")
                append((address, length, True, rank, entries[rank]))
                position += length
                address += length
            else:
                word_pos = position + 1
                k = word_pos >> 1
                if word_pos & 1:
                    word = (
                        ((padded[k] & 15) << 28)
                        | (padded[k + 1] << 20)
                        | (padded[k + 2] << 12)
                        | (padded[k + 3] << 4)
                        | (padded[k + 4] >> 4)
                    )
                else:
                    word = (
                        (padded[k] << 24)
                        | (padded[k + 1] << 16)
                        | (padded[k + 2] << 8)
                        | padded[k + 3]
                    )
                append((address, 9, False, None, _memo_instructions(word)))
                position += 9
                address += 9
    except IndexError:
        _fallback("stream truncated mid-item")
    if position * 4 > len(stream) * 8 or address != total:
        _fallback("stream truncated or unit-count mismatch")
    from repro.machine.decompressor import StreamColumns

    return StreamColumns.from_rows(rows)


def _python_bytes(decoder, tables: _Tables, *, codeword_indexed: bool):
    """Shared walk for the two byte-aligned encodings.

    ``codeword_indexed=True`` is the baseline scheme (escape byte +
    index byte, 2-byte alignment units); ``False`` is the one-byte
    scheme (the escape byte is the codeword, 1-byte units).
    """
    escape_ranks = tables.ranks
    stream = decoder.stream
    n = len(stream)
    entries = decoder._entries
    n_entries = len(entries)
    total = decoder.total_units
    if codeword_indexed:
        codeword_bytes, codeword_units, instruction_units = 2, 1, 2
    else:
        codeword_bytes, codeword_units, instruction_units = 1, 1, 4
    rows: list = []
    append = rows.append
    position = 0  # byte cursor
    address = 0
    try:
        while address < total:
            rank = escape_ranks[stream[position]]
            if rank >= 0:
                if codeword_indexed:
                    rank = (rank << 8) | stream[position + 1]
                if rank >= n_entries:
                    _fallback("codeword rank beyond the dictionary")
                append((address, codeword_units, True, rank, entries[rank]))
                position += codeword_bytes
                address += codeword_units
            else:
                if position + 4 > n:
                    _fallback("stream truncated mid-item")
                word = (
                    (stream[position] << 24)
                    | (stream[position + 1] << 16)
                    | (stream[position + 2] << 8)
                    | stream[position + 3]
                )
                append(
                    (address, instruction_units, False, None,
                     _memo_instructions(word))
                )
                position += 4
                address += instruction_units
    except IndexError:
        _fallback("stream truncated mid-item")
    if position > n or address != total:
        _fallback("stream truncated or unit-count mismatch")
    from repro.machine.decompressor import StreamColumns

    return StreamColumns.from_rows(rows)
