"""Execution of compressed programs (paper section 3.3, Figure 3).

The program counter addresses the compressed stream in *alignment
units* (2 bytes for the baseline encoding, 1 nibble for the
nibble-aligned scheme); an intra-item micro-PC steps through dictionary
expansions.  LR, CTR, and jump-table slots hold
``text_base + unit_address`` values, matching what the branch patcher
wrote (section 3.2.1).

Fetch statistics (units fetched from program memory, dictionary
expansions) support the paper's future-work question about the
performance of the compressed fetch path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compressor import CompressedProgram
from repro.errors import DecompressionError, SimulationError
from repro.machine.decompressor import FetchItem, StreamDecoder
from repro.machine.executor import CONTROL_MNEMONICS, execute_data
from repro.machine.memory import Memory
from repro.machine.simulator import HALT_ADDRESS, RunResult, branch_decision, do_syscall
from repro.machine.state import MachineState


@dataclass
class FetchStats:
    """Front-end traffic counters."""

    units_fetched: int = 0
    codeword_expansions: int = 0
    instructions_issued: int = 0
    escaped_instructions: int = 0

    def bytes_fetched(self, alignment_bits: int) -> float:
        return self.units_fetched * alignment_bits / 8.0


class CompressedSimulator:
    """Interprets a compressed program image.

    Construct from an in-memory compressor result (``compressed=``) or
    from a standalone :class:`~repro.core.image.CompressedImage`
    (``image=``) — the simulator only ever sees what a real compressed
    ROM would hold.
    """

    def __init__(
        self,
        compressed: CompressedProgram | None = None,
        *,
        image=None,
        max_steps: int = 50_000_000,
        implementation: str = "fast",
    ):
        if (compressed is None) == (image is None):
            raise ValueError("pass exactly one of compressed= or image=")
        if implementation not in ("fast", "reference"):
            raise ValueError(
                f"unknown simulator implementation {implementation!r}"
            )
        self.implementation = implementation
        if compressed is not None:
            self.name = compressed.program.name
            stream = compressed.stream
            dictionary = compressed.dictionary
            encoding = compressed.encoding
            total_units = compressed.total_units()
            entry_unit = compressed.index_to_unit[compressed.program.entry_index]
            text_base = compressed.program.text_base
            data_image = compressed.data_image
        else:
            self.name = image.name
            stream = image.stream
            dictionary = image.dictionary
            encoding = image.encoding()
            total_units = image.total_units
            entry_unit = image.entry_unit
            text_base = image.text_base
            data_image = image.data_image
        self.compressed = compressed
        self.max_steps = max_steps
        # The columnar decode is shared through the process-wide decode
        # cache: constructing many simulators over the same image (e.g.
        # differential verification, benchmark repeats) decodes the
        # stream once.  The fast path binds thunks straight from the
        # parallel arrays; the FetchItem tuple view materializes lazily
        # only if a reference-engine consumer asks (``self.items``).
        # All shared structures are read-only here.
        decoder = StreamDecoder(stream, dictionary, encoding, total_units)
        self._columns = decoder.decode_all_columnar()
        self.item_at_address: dict[int, int] = self._columns.index
        # Kept for the fast path: the translation-cache registry keys
        # predecoded thunks by the same content digest as the decode
        # cache, computed lazily on first fast run.
        self._decoder = decoder
        self._content_key: str | None = None
        # Unit address -> original instruction index, when provenance is
        # available (in-memory compressor results keep it; standalone
        # images do not).  repro.verify uses this to map failures back
        # to original PCs.
        self.unit_to_index: dict[int, int] | None = None
        if compressed is not None:
            self.unit_to_index = {
                unit: index for index, unit in compressed.index_to_unit.items()
            }
        self.state = MachineState()
        self.memory = Memory(data_image)
        self.stats = FetchStats()
        self.fetch_hook = None  # optional callable(byte_address, size_units)
        self._alignment_bits = encoding.alignment_bits
        entry_item = self.item_at_address.get(entry_unit)
        if entry_item is None:
            raise DecompressionError(
                "entry point does not land on an item boundary",
                unit_address=entry_unit,
            )
        self.item_index = entry_item
        self.micro = 0
        self.state.lr = HALT_ADDRESS
        self._text_base = text_base

    @classmethod
    def from_image(cls, image, max_steps: int = 50_000_000) -> "CompressedSimulator":
        """Run a deserialized :class:`CompressedImage`."""
        return cls(image=image, max_steps=max_steps)

    def _translation_key(self) -> str:
        if self._content_key is None:
            self._content_key = self._decoder.content_key()
        return self._content_key

    @property
    def items(self) -> tuple[FetchItem, ...]:
        """The FetchItem tuple view (materialized on first access).

        The fast path never touches this — it runs on ``_columns``
        directly; the reference interpreter and provenance consumers
        pay the one-time materialization instead.
        """
        return self._columns.items()

    # ------------------------------------------------------------------
    # Address arithmetic
    # ------------------------------------------------------------------
    def _item(self) -> FetchItem:
        return self.items[self.item_index]

    def origin_pc(self) -> int | None:
        """Original-program byte address of the current instruction.

        Only available when the simulator was built from an in-memory
        :class:`CompressedProgram` (standalone images carry no
        provenance); relaxation-inserted instructions map to ``None``.
        """
        if self.unit_to_index is None:
            return None
        base = self.unit_to_index.get(self._columns.addresses[self.item_index])
        if base is None:
            return None
        return self._text_base + 4 * (base + self.micro)

    def _next_item_address(self) -> int:
        columns = self._columns
        return (
            self._text_base
            + columns.addresses[self.item_index]
            + columns.sizes[self.item_index]
        )

    def _goto_unit(self, unit: int) -> None:
        index = self.item_at_address.get(unit)
        if index is None:
            raise DecompressionError(
                f"branch to unit {unit} lands inside an encoded item",
                unit_address=unit,
                orig_pc=self.origin_pc(),
                step=self.state.steps,
            )
        self.item_index = index
        self.micro = 0

    def _goto_address(self, address: int) -> None:
        if address == HALT_ADDRESS:
            self.state.halted = True
            return
        self._goto_unit(address - self._text_base)

    def _advance(self) -> None:
        item = self._item()
        if self.micro + 1 < len(item.instructions):
            self.micro += 1
        else:
            last_unit = item.address
            self.item_index += 1
            self.micro = 0
            if self.item_index >= len(self.items):
                raise SimulationError(
                    "fell off the end of the compressed stream",
                    unit_address=last_unit,
                    step=self.state.steps,
                )

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction (reference interpreter)."""
        item = self._item()
        if self.micro == 0:
            self.stats.units_fetched += item.size_units
            if item.is_codeword:
                self.stats.codeword_expansions += 1
            else:
                self.stats.escaped_instructions += 1
            if self.fetch_hook is not None:
                byte_address = (item.address * self._alignment_bits) // 8
                self.fetch_hook(byte_address, item.size_units)
        ins = item.instructions[self.micro]
        self.stats.instructions_issued += 1
        name = ins.mnemonic
        if name not in CONTROL_MNEMONICS:
            execute_data(ins, self.state, self.memory)
            self._advance()
            return
        self.state.steps += 1
        if name in ("b", "bl"):
            if name == "bl":
                self.state.lr = self._next_item_address()
            self._goto_unit(item.address + ins.operand("target"))
        elif name in ("bc", "bcl"):
            if name == "bcl":
                self.state.lr = self._next_item_address()
            taken = branch_decision(self.state, ins.operand("BO"), ins.operand("BI"))
            if taken:
                self._goto_unit(item.address + ins.operand("target"))
            else:
                self._advance()
        elif name == "bclr":
            taken = branch_decision(self.state, ins.operand("BO"), ins.operand("BI"))
            if taken:
                self._goto_address(self.state.lr)
            else:
                self._advance()
        elif name in ("bcctr", "bcctrl"):
            taken = branch_decision(self.state, ins.operand("BO"), ins.operand("BI"))
            if name == "bcctrl":
                self.state.lr = self._next_item_address()
            if taken:
                self._goto_address(self.state.ctr)
            else:
                self._advance()
        elif name == "sc":
            do_syscall(self.state)
            if not self.state.halted:
                self._advance()
        else:  # pragma: no cover - CONTROL_MNEMONICS is closed
            raise SimulationError(f"unhandled control instruction {name}")

    # Explicit alias: the reference single-step, regardless of the
    # engine selected for run().
    step_reference = step

    def step_fast(self) -> None:
        """Execute one instruction through the translation cache."""
        from repro.machine import fastpath

        fastpath.step_stream_once(self)

    def run(self) -> RunResult:
        if self.implementation == "fast":
            from repro.machine import fastpath

            return fastpath.run_compressed_fast(self)
        return self._run_reference()

    def _run_reference(self) -> RunResult:
        while not self.state.halted:
            if self.state.steps >= self.max_steps:
                raise SimulationError(
                    f"{self.name}: exceeded {self.max_steps} steps",
                    unit_address=self._item().address,
                    orig_pc=self.origin_pc(),
                    step=self.state.steps,
                )
            self.step()
        return RunResult(
            self.state,
            self.state.steps,
            self.stats.codeword_expansions + self.stats.escaped_instructions,
        )


def run_compressed(
    compressed: CompressedProgram,
    max_steps: int = 50_000_000,
    *,
    implementation: str = "fast",
) -> RunResult:
    """Simulate a compressed program image from entry to halt."""
    return CompressedSimulator(
        compressed, max_steps=max_steps, implementation=implementation
    ).run()
