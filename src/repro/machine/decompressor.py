"""The dictionary fetch/decode engine (paper Figure 3).

``StreamDecoder`` walks the *serialized* compressed byte stream — not
the compressor's internal token list — exactly as the modified fetch
stage of a compressed-program processor would: peek at the next
alignment unit, classify it as escape/codeword, expand codewords
through the dictionary, and hand decoded PowerPC instructions to the
core.

Decoding the whole stream once up front models the static predecode a
hardware table lookup performs; the result maps every unit address to
the item starting there, so branches can be validated to land only on
item boundaries.

Two decode modes exist:

* **strict** (the default, and the only mode the production fetch path
  uses): the first malformed item raises
  :class:`~repro.errors.DecompressionError` carrying the failing unit
  address in a structured field;
* **lenient** (``strict=False``, used by fault-injection campaigns):
  malformed items are recorded as :class:`DecodeDiagnostic` entries and
  decoding resynchronizes one alignment unit later, bounded by
  ``max_diagnostics`` so a corrupt header can never make the walk
  unbounded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import bitutils
from repro.core.dictionary import Dictionary
from repro.core.encodings import Encoding
from repro.errors import DecodingError, DecompressionError
from repro.isa.instruction import Instruction, decode


@dataclass(frozen=True)
class FetchItem:
    """One decoded stream item.

    ``instructions`` holds a single decoded instruction for an escape
    item, or the full dictionary expansion for a codeword.
    """

    address: int  # unit address of the item's first unit
    size_units: int
    is_codeword: bool
    rank: int | None
    instructions: tuple[Instruction, ...]


@dataclass(frozen=True)
class DecodeDiagnostic:
    """One malformed item recorded by a lenient decode pass."""

    unit_address: int
    message: str


class StreamDecoder:
    """Decodes a compressed text stream against its dictionary."""

    def __init__(
        self,
        stream: bytes,
        dictionary: Dictionary,
        encoding: Encoding,
        total_units: int,
        *,
        strict: bool = True,
        max_diagnostics: int = 64,
    ) -> None:
        self.stream = stream
        self.dictionary = dictionary
        self.encoding = encoding
        self.total_units = total_units
        self.strict = strict
        self.max_diagnostics = max_diagnostics
        self.diagnostics: list[DecodeDiagnostic] = []
        # Pre-decode dictionary entries once (the on-chip dictionary RAM).
        # A lenient decoder keeps going past entries whose words no
        # longer decode; codewords that reference them become
        # diagnostics instead of expansions.
        self._entries: list[tuple[Instruction, ...] | None] = []
        for rank, entry in enumerate(dictionary.entries):
            try:
                self._entries.append(tuple(decode(word) for word in entry.words))
            except DecodingError as exc:
                if strict:
                    raise DecompressionError(
                        f"dictionary entry {rank} does not decode: {exc}"
                    ) from exc
                self.diagnostics.append(
                    DecodeDiagnostic(-1, f"dictionary entry {rank}: {exc}")
                )
                self._entries.append(None)

    # ------------------------------------------------------------------
    def _read_one(
        self, reader: bitutils.BitReader, address: int
    ) -> FetchItem:
        """Decode the single item starting at ``address``."""
        kind, payload = self.encoding.read_item(reader)
        if kind == "cw":
            if payload >= len(self._entries):
                raise DecompressionError(
                    f"codeword {payload} exceeds dictionary of "
                    f"{len(self._entries)} entries",
                    unit_address=address,
                )
            expansion = self._entries[payload]
            if expansion is None:
                raise DecompressionError(
                    f"codeword {payload} references an undecodable "
                    "dictionary entry",
                    unit_address=address,
                )
            size_bits = self.encoding.codeword_bits(payload)
            return FetchItem(
                address=address,
                size_units=self.encoding.units(size_bits),
                is_codeword=True,
                rank=payload,
                instructions=expansion,
            )
        return FetchItem(
            address=address,
            size_units=self.encoding.instruction_units(),
            is_codeword=False,
            rank=None,
            instructions=(decode(payload),),
        )

    def decode_all(self) -> list[FetchItem]:
        """Decode the full stream into items with unit addresses."""
        reader = bitutils.BitReader(self.stream)
        items: list[FetchItem] = []
        address = 0
        while address < self.total_units:
            start_bit = reader.bit_position
            try:
                items.append(self._read_one(reader, address))
            except (DecompressionError, DecodingError, EOFError) as exc:
                if self.strict:
                    if isinstance(exc, DecompressionError):
                        if exc.unit_address is not None:
                            raise
                        raise DecompressionError(
                            str(exc), unit_address=address
                        ) from exc
                    if isinstance(exc, EOFError):
                        raise DecompressionError(
                            "stream exhausted mid-item", unit_address=address
                        ) from exc
                    raise DecompressionError(
                        f"escaped word does not decode: {exc}",
                        unit_address=address,
                    ) from exc
                self.diagnostics.append(DecodeDiagnostic(address, str(exc)))
                if len(self.diagnostics) >= self.max_diagnostics:
                    self.diagnostics.append(
                        DecodeDiagnostic(address, "diagnostic budget exhausted")
                    )
                    return items
                # Resynchronize one alignment unit later and keep going.
                resync = start_bit + self.encoding.alignment_bits
                if resync > len(self.stream) * 8:
                    return items
                reader.seek_bit(resync)
                address += 1
                continue
            address += items[-1].size_units
        if address != self.total_units:
            message = (
                f"stream decoded to {address} units, "
                f"expected {self.total_units}"
            )
            if self.strict:
                raise DecompressionError(message, unit_address=address)
            self.diagnostics.append(DecodeDiagnostic(address, message))
        return items
