"""The dictionary fetch/decode engine (paper Figure 3).

``StreamDecoder`` walks the *serialized* compressed byte stream — not
the compressor's internal token list — exactly as the modified fetch
stage of a compressed-program processor would: peek at the next
alignment unit, classify it as escape/codeword, expand codewords
through the dictionary, and hand decoded PowerPC instructions to the
core.

Decoding the whole stream once up front models the static predecode a
hardware table lookup performs; the result maps every unit address to
the item starting there, so branches can be validated to land only on
item boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import bitutils
from repro.core.dictionary import Dictionary
from repro.core.encodings import Encoding
from repro.errors import DecompressionError
from repro.isa.instruction import Instruction, decode


@dataclass(frozen=True)
class FetchItem:
    """One decoded stream item.

    ``instructions`` holds a single decoded instruction for an escape
    item, or the full dictionary expansion for a codeword.
    """

    address: int  # unit address of the item's first unit
    size_units: int
    is_codeword: bool
    rank: int | None
    instructions: tuple[Instruction, ...]


class StreamDecoder:
    """Decodes a compressed text stream against its dictionary."""

    def __init__(
        self,
        stream: bytes,
        dictionary: Dictionary,
        encoding: Encoding,
        total_units: int,
    ) -> None:
        self.stream = stream
        self.dictionary = dictionary
        self.encoding = encoding
        self.total_units = total_units
        # Pre-decode dictionary entries once (the on-chip dictionary RAM).
        self._entries: list[tuple[Instruction, ...]] = [
            tuple(decode(word) for word in entry.words)
            for entry in dictionary.entries
        ]

    def decode_all(self) -> list[FetchItem]:
        """Decode the full stream into items with unit addresses."""
        reader = bitutils.BitReader(self.stream)
        items: list[FetchItem] = []
        address = 0
        while address < self.total_units:
            kind, payload = self.encoding.read_item(reader)
            if kind == "cw":
                if payload >= len(self._entries):
                    raise DecompressionError(
                        f"codeword {payload} at unit {address} exceeds "
                        f"dictionary of {len(self._entries)} entries"
                    )
                size_bits = self.encoding.codeword_bits(payload)
                items.append(
                    FetchItem(
                        address=address,
                        size_units=self.encoding.units(size_bits),
                        is_codeword=True,
                        rank=payload,
                        instructions=self._entries[payload],
                    )
                )
            else:
                items.append(
                    FetchItem(
                        address=address,
                        size_units=self.encoding.instruction_units(),
                        is_codeword=False,
                        rank=None,
                        instructions=(decode(payload),),
                    )
                )
            address += items[-1].size_units
        if address != self.total_units:
            raise DecompressionError(
                f"stream decoded to {address} units, expected {self.total_units}"
            )
        return items
