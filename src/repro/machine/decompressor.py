"""The dictionary fetch/decode engine (paper Figure 3).

``StreamDecoder`` walks the *serialized* compressed byte stream — not
the compressor's internal token list — exactly as the modified fetch
stage of a compressed-program processor would: peek at the next
alignment unit, classify it as escape/codeword, expand codewords
through the dictionary, and hand decoded PowerPC instructions to the
core.

Decoding the whole stream once up front models the static predecode a
hardware table lookup performs; the result maps every unit address to
the item starting there, so branches can be validated to land only on
item boundaries.

Two decode modes exist:

* **strict** (the default, and the only mode the production fetch path
  uses): the first malformed item raises
  :class:`~repro.errors.DecompressionError` carrying the failing unit
  address in a structured field;
* **lenient** (``strict=False``, used by fault-injection campaigns):
  malformed items are recorded as :class:`DecodeDiagnostic` entries and
  decoding resynchronizes one alignment unit later, bounded by
  ``max_diagnostics`` so a corrupt header can never make the walk
  unbounded.

Strict decodes run through the table-driven bulk walker of
:mod:`repro.machine.bulkdecode` by default and fall back to the
one-item-at-a-time reference walk (:meth:`StreamDecoder.
decode_all_reference`) whenever the stream is malformed, so error
behavior is byte-identical either way.  Lenient decodes always use the
reference walk — resynchronization and diagnostics are defined in
terms of it.

Strict decodes are memoized in a process-wide :class:`DecodeCache`
keyed by the image content (stream bytes, dictionary words, encoding,
unit count): verification reruns, repeated simulator constructions, and
benchmark sweeps over the same image decode the stream once instead of
once per consumer.  Hit/miss/eviction counts are surfaced through
:func:`repro.observe.metric` (``decode_cache.hits`` / ``.misses`` /
``.evictions``) and :func:`decode_cache_stats`.  Lenient decodes are
never cached — their whole point is to re-walk a possibly-corrupt
stream and collect diagnostics.
"""

from __future__ import annotations

import hashlib
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from itertools import repeat
from typing import NamedTuple

from repro import bitutils, observe
from repro.core.dictionary import Dictionary
from repro.core.encodings import Encoding
from repro.errors import DecodingError, DecompressionError
from repro.isa.instruction import Instruction, decode


class FetchItem(NamedTuple):
    """One decoded stream item.

    ``instructions`` holds a single decoded instruction for an escape
    item, or the full dictionary expansion for a codeword.

    A ``NamedTuple`` rather than a frozen dataclass so the bulk decoder
    can materialize items straight from row tuples with
    ``tuple.__new__`` — construction cost dominates a table-driven
    decode at ~10^6 items/s.
    """

    address: int  # unit address of the item's first unit
    size_units: int
    is_codeword: bool
    rank: int | None
    instructions: tuple[Instruction, ...]


class StreamColumns:
    """Columnar view of a decoded stream (the zero-copy fetch path).

    Parallel plain-Python lists, one row per item: ``addresses[i]``,
    ``sizes[i]``, ``is_codeword[i]``, ``ranks[i]``, and
    ``instructions[i]`` are the five fields of what would be
    ``FetchItem`` number ``i``.  The bulk decoder produces these
    columns natively — the simulator predecode layer binds thunks
    straight from them, so the hot construction path never pays for a
    tuple per item.  :meth:`items` materializes (and memoizes) the
    classic ``FetchItem`` tuple for every other consumer, and
    :attr:`index` is the lazily built unit-address -> row index map.

    Both views are *the same decode*: ``items()[i] == (addresses[i],
    sizes[i], is_codeword[i], ranks[i], instructions[i])`` by
    construction, which the differential tests pin down field by
    field.
    """

    __slots__ = (
        "addresses",
        "sizes",
        "is_codeword",
        "ranks",
        "instructions",
        "_index",
        "_items",
    )

    def __init__(self, addresses, sizes, is_codeword, ranks, instructions):
        self.addresses = addresses
        self.sizes = sizes
        self.is_codeword = is_codeword
        self.ranks = ranks
        self.instructions = instructions
        self._index = None
        self._items = None

    @classmethod
    def from_rows(cls, rows) -> "StreamColumns":
        """Transpose ``(address, size, is_codeword, rank, instructions)``
        row tuples into columns."""
        if rows:
            return cls(*map(list, zip(*rows)))
        return cls([], [], [], [], [])

    @classmethod
    def from_items(cls, items) -> "StreamColumns":
        """Columns over an existing ``FetchItem`` sequence (reference
        walk fallback); the item view is retained, not rebuilt."""
        columns = cls.from_rows(items)
        columns._items = tuple(items)
        return columns

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def index(self) -> dict[int, int]:
        """Unit address -> row index (built once, then shared)."""
        if self._index is None:
            self._index = {
                address: i for i, address in enumerate(self.addresses)
            }
        return self._index

    def items(self) -> tuple["FetchItem", ...]:
        """The row-tuple view, materialized once and shared."""
        if self._items is None:
            self._items = tuple(
                map(
                    tuple.__new__,
                    repeat(FetchItem),
                    zip(
                        self.addresses,
                        self.sizes,
                        self.is_codeword,
                        self.ranks,
                        self.instructions,
                    ),
                )
            )
        return self._items


@dataclass(frozen=True)
class DecodeDiagnostic:
    """One malformed item recorded by a lenient decode pass."""

    unit_address: int
    message: str


def _encoding_token(encoding: Encoding) -> tuple:
    """A hashable identity for an encoding's decode behavior."""
    token: tuple = (
        type(encoding).__name__,
        encoding.name,
        encoding.alignment_bits,
        encoding.instruction_bits,
        getattr(encoding, "max_codewords", None),
    )
    allocation = getattr(encoding, "allocation", None)
    if allocation is not None:
        token += (tuple(sorted(allocation.items())),)
    return token


class DecodeCache:
    """LRU cache of successful strict decode passes.

    Values are ``(columns, item_at_address)`` — the
    :class:`StreamColumns` view of the decode plus the unit-address
    index over it (the tuple-item view hangs off the columns, built
    lazily).  Both are shared between consumers, which is safe because
    a strict decode of a given image content is deterministic; every
    cached structure must be treated as read-only by callers.

    Eviction is bounded two ways: ``capacity`` caps the entry count and
    ``max_bytes`` caps the approximate retained size.  Each entry is
    costed as its stream length in bytes plus one unit per decoded item
    — the items share ``Instruction`` objects with the dictionary and
    the process-wide decode tables, so stream length + item count is
    the honest proxy for marginal footprint.
    """

    def __init__(self, capacity: int = 32, max_bytes: int = 8 << 20) -> None:
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes = 0
        self._entries: OrderedDict[
            str, tuple["StreamColumns", dict[int, int]]
        ] = OrderedDict()
        self._costs: dict[str, int] = {}

    @staticmethod
    def content_key(
        stream: bytes, dictionary: Dictionary, encoding: Encoding, total_units: int
    ) -> str:
        """Digest of everything a strict decode depends on."""
        entries = dictionary.entries
        lengths = array("I", [len(entry.words) for entry in entries])
        words = array("I", [w for entry in entries for w in entry.words])
        hasher = hashlib.sha256()
        hasher.update(repr((_encoding_token(encoding), total_units)).encode())
        hasher.update(lengths.tobytes())
        hasher.update(words.tobytes())
        hasher.update(stream)
        return hasher.hexdigest()

    def lookup(
        self, key: str
    ) -> tuple["StreamColumns", dict[int, int]] | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            observe.metric("decode_cache.misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        observe.metric("decode_cache.hits")
        return entry

    def store(
        self,
        key: str,
        columns: "StreamColumns",
        index: dict[int, int],
        stream_bytes: int = 0,
    ) -> None:
        if key in self._entries:
            self.bytes -= self._costs.get(key, 0)
        self._entries[key] = (columns, index)
        self._entries.move_to_end(key)
        cost = stream_bytes + len(columns)
        self._costs[key] = cost
        self.bytes += cost
        # Keep at least the entry just stored: it is the live working
        # set even when it alone exceeds the byte bound.
        while len(self._entries) > self.capacity or (
            self.bytes > self.max_bytes and len(self._entries) > 1
        ):
            evicted, _ = self._entries.popitem(last=False)
            self.bytes -= self._costs.pop(evicted, 0)
            self.evictions += 1
            observe.metric("decode_cache.evictions")

    def clear(self) -> None:
        self._entries.clear()
        self._costs.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes = 0

    def __len__(self) -> int:
        return len(self._entries)


_decode_cache = DecodeCache()
_decode_cache_enabled = True


def decode_cache_stats() -> dict[str, int]:
    """Process-wide decode-cache counters (for tests and `repro-bench`)."""
    return {
        "hits": _decode_cache.hits,
        "misses": _decode_cache.misses,
        "entries": len(_decode_cache),
        "bytes": _decode_cache.bytes,
        "max_bytes": _decode_cache.max_bytes,
        "capacity": _decode_cache.capacity,
        "evictions": _decode_cache.evictions,
    }


def clear_decode_cache() -> None:
    """Drop all cached decodes and reset the counters."""
    _decode_cache.clear()


def set_decode_cache_enabled(enabled: bool) -> bool:
    """Enable/disable the cache process-wide; returns the previous state."""
    global _decode_cache_enabled
    previous = _decode_cache_enabled
    _decode_cache_enabled = enabled
    return previous


class StreamDecoder:
    """Decodes a compressed text stream against its dictionary."""

    def __init__(
        self,
        stream: bytes,
        dictionary: Dictionary,
        encoding: Encoding,
        total_units: int,
        *,
        strict: bool = True,
        max_diagnostics: int = 64,
    ) -> None:
        self.stream = stream
        self.dictionary = dictionary
        self.encoding = encoding
        self.total_units = total_units
        self.strict = strict
        self.max_diagnostics = max_diagnostics
        self.diagnostics: list[DecodeDiagnostic] = []
        # Which engine produced the last decode_all result:
        # "bulk-numpy", "bulk-python", or "reference".
        self.last_implementation: str | None = None
        # Pre-decode dictionary entries once (the on-chip dictionary RAM).
        # A lenient decoder keeps going past entries whose words no
        # longer decode; codewords that reference them become
        # diagnostics instead of expansions.
        self._entries: list[tuple[Instruction, ...] | None] = []
        for rank, entry in enumerate(dictionary.entries):
            try:
                self._entries.append(tuple(decode(word) for word in entry.words))
            except DecodingError as exc:
                if strict:
                    raise DecompressionError(
                        f"dictionary entry {rank} does not decode: {exc}"
                    ) from exc
                self.diagnostics.append(
                    DecodeDiagnostic(-1, f"dictionary entry {rank}: {exc}")
                )
                self._entries.append(None)

    # ------------------------------------------------------------------
    def _read_one(
        self, reader: bitutils.BitReader, address: int
    ) -> FetchItem:
        """Decode the single item starting at ``address``."""
        kind, payload = self.encoding.read_item(reader)
        if kind == "cw":
            if payload >= len(self._entries):
                raise DecompressionError(
                    f"codeword {payload} exceeds dictionary of "
                    f"{len(self._entries)} entries",
                    unit_address=address,
                )
            expansion = self._entries[payload]
            if expansion is None:
                raise DecompressionError(
                    f"codeword {payload} references an undecodable "
                    "dictionary entry",
                    unit_address=address,
                )
            size_bits = self.encoding.codeword_bits(payload)
            return FetchItem(
                address=address,
                size_units=self.encoding.units(size_bits),
                is_codeword=True,
                rank=payload,
                instructions=expansion,
            )
        return FetchItem(
            address=address,
            size_units=self.encoding.instruction_units(),
            is_codeword=False,
            rank=None,
            instructions=(decode(payload),),
        )

    def content_key(self) -> str:
        """Digest of everything this decode depends on.

        The same key indexes the decode cache and the fast path's
        translation-cache registry (:mod:`repro.machine.fastpath`), so
        predecoded thunks follow the decoded items' identity.
        """
        return DecodeCache.content_key(
            self.stream, self.dictionary, self.encoding, self.total_units
        )

    def decode_all(self, *, implementation: str = "bulk") -> tuple[FetchItem, ...]:
        """Decode the full stream into items with unit addresses.

        Strict decodes default to the table-driven bulk walker and are
        served from the process-wide :class:`DecodeCache` when the same
        image content was decoded before; the returned tuple is
        **shared** between consumers and must not be mutated.  Pass
        ``implementation="reference"`` to force the one-item-at-a-time
        walk.  Lenient decoders always take the reference walk — bulk
        decoding cannot attribute diagnostics to resynchronization
        points (and asserts nothing about malformed tails).
        """
        if implementation not in ("bulk", "reference"):
            raise ValueError(f"unknown decode implementation {implementation!r}")
        if not self.strict or implementation == "reference":
            return tuple(self.decode_all_reference())
        if _decode_cache_enabled:
            return self.decode_all_indexed()[0]
        return self._decode_columns().items()

    def decode_all_reference(self) -> list[FetchItem]:
        """The one-item-at-a-time reference walk (equivalence oracle)."""
        self.last_implementation = "reference"
        return self._walk_stream()

    def decode_all_columnar(self) -> StreamColumns:
        """Strict decode returning the columnar view + address index.

        This is the fast path's native fetch product: the bulk decoder
        hands over its parallel arrays directly and no ``FetchItem``
        tuple is ever built unless a consumer asks the returned
        :class:`StreamColumns` for :meth:`~StreamColumns.items`.  The
        columns are cached in the process-wide :class:`DecodeCache`
        (same entry the tuple view shares) and must be treated as
        read-only.  Strict mode only.
        """
        if not self.strict:
            raise ValueError("decode_all_columnar requires a strict decoder")
        key = None
        if _decode_cache_enabled:
            key = self.content_key()
            cached = _decode_cache.lookup(key)
            if cached is not None:
                return cached[0]
        columns = self._decode_columns()
        if key is not None:
            _decode_cache.store(key, columns, columns.index, len(self.stream))
        return columns

    def decode_all_indexed(
        self,
    ) -> tuple[tuple[FetchItem, ...], dict[int, int]]:
        """Strict decode returning ``(items, unit_address -> index)``.

        Both structures may be shared with other consumers via the
        decode cache — treat them as read-only.  Only available in
        strict mode (lenient walks are never cached; their item lists
        depend on diagnostic state).  The tuple view is materialized
        lazily from the cached columns, once per image content.
        """
        if not self.strict:
            raise ValueError("decode_all_indexed requires a strict decoder")
        columns = self.decode_all_columnar()
        return columns.items(), columns.index

    def _decode_columns(self) -> StreamColumns:
        """Strict bulk decode, deferring to the reference walk on any
        anomaly so errors stay byte-identical."""
        from repro.machine import bulkdecode

        try:
            columns = bulkdecode.decode_stream_columnar(self)
        except bulkdecode.BulkFallback:
            self.last_implementation = "reference"
            return StreamColumns.from_items(self._walk_stream())
        self.last_implementation = f"bulk-{bulkdecode.backend()}"
        return columns

    def _walk_stream(self) -> list[FetchItem]:
        reader = bitutils.BitReader(self.stream)
        items: list[FetchItem] = []
        address = 0
        while address < self.total_units:
            start_bit = reader.bit_position
            try:
                items.append(self._read_one(reader, address))
            except (DecompressionError, DecodingError, EOFError) as exc:
                if self.strict:
                    if isinstance(exc, DecompressionError):
                        if exc.unit_address is not None:
                            raise
                        raise DecompressionError(
                            str(exc), unit_address=address
                        ) from exc
                    if isinstance(exc, EOFError):
                        raise DecompressionError(
                            "stream exhausted mid-item", unit_address=address
                        ) from exc
                    raise DecompressionError(
                        f"escaped word does not decode: {exc}",
                        unit_address=address,
                    ) from exc
                self.diagnostics.append(DecodeDiagnostic(address, str(exc)))
                if len(self.diagnostics) >= self.max_diagnostics:
                    self.diagnostics.append(
                        DecodeDiagnostic(address, "diagnostic budget exhausted")
                    )
                    return items
                # Resynchronize one alignment unit later and keep going.
                resync = start_bit + self.encoding.alignment_bits
                if resync > len(self.stream) * 8:
                    return items
                reader.seek_bit(resync)
                address += 1
                continue
            address += items[-1].size_units
        if address != self.total_units:
            message = (
                f"stream decoded to {address} units, "
                f"expected {self.total_units}"
            )
            if self.strict:
                raise DecompressionError(message, unit_address=address)
            self.diagnostics.append(DecodeDiagnostic(address, message))
        return items
