"""Execution semantics for the non-control instructions.

Shared by the uncompressed and compressed simulators: everything except
branches and ``sc`` is position-independent, so one executor serves
both fetch engines.
"""

from __future__ import annotations

from repro import bitutils
from repro.errors import SimulationError
from repro.isa import registers
from repro.isa.instruction import Instruction
from repro.machine.memory import Memory
from repro.machine.state import MachineState

CONTROL_MNEMONICS = frozenset(
    {"b", "bl", "bc", "bcl", "bclr", "bcctr", "bcctrl", "sc"}
)


def _ea(state: MachineState, disp: int, base: int) -> int:
    """Effective address: RA=0 reads as zero (PowerPC D-form rule)."""
    return bitutils.u32((state.read(base) if base else 0) + disp)


def execute_data(ins: Instruction, state: MachineState, mem: Memory) -> None:
    """Execute one non-control instruction, updating state and memory."""
    name = ins.mnemonic
    handler = _HANDLERS.get(name)
    if handler is None:
        raise SimulationError(f"no semantics for {name!r}")
    handler(ins, state, mem)
    state.steps += 1


# ---------------------------------------------------------------------------
# D-form arithmetic / logic
# ---------------------------------------------------------------------------
def _addi(ins, state, mem):
    ra = ins.operand("rA")
    base = state.read_signed(ra) if ra else 0
    state.write(ins.operand("rT"), base + ins.operand("SI"))


def _addis(ins, state, mem):
    ra = ins.operand("rA")
    base = state.read_signed(ra) if ra else 0
    state.write(ins.operand("rT"), base + (ins.operand("SI") << 16))


def _mulli(ins, state, mem):
    state.write(
        ins.operand("rT"), state.read_signed(ins.operand("rA")) * ins.operand("SI")
    )


def _subfic(ins, state, mem):
    state.write(
        ins.operand("rT"), ins.operand("SI") - state.read_signed(ins.operand("rA"))
    )


def _ori(ins, state, mem):
    state.write(ins.operand("rA"), state.read(ins.operand("rS")) | ins.operand("UI"))


def _oris(ins, state, mem):
    state.write(
        ins.operand("rA"), state.read(ins.operand("rS")) | (ins.operand("UI") << 16)
    )


def _xori(ins, state, mem):
    state.write(ins.operand("rA"), state.read(ins.operand("rS")) ^ ins.operand("UI"))


def _xoris(ins, state, mem):
    state.write(
        ins.operand("rA"), state.read(ins.operand("rS")) ^ (ins.operand("UI") << 16)
    )


def _andi_dot(ins, state, mem):
    result = state.read(ins.operand("rS")) & ins.operand("UI")
    state.write(ins.operand("rA"), result)
    signed = bitutils.s32(result)
    state.set_cr_field(0, signed < 0, signed > 0, signed == 0)


def _andis_dot(ins, state, mem):
    result = state.read(ins.operand("rS")) & (ins.operand("UI") << 16)
    state.write(ins.operand("rA"), result)
    signed = bitutils.s32(result)
    state.set_cr_field(0, signed < 0, signed > 0, signed == 0)


# ---------------------------------------------------------------------------
# Compares
# ---------------------------------------------------------------------------
def _cmpwi(ins, state, mem):
    state.compare_signed(
        ins.operand("crfD"), state.read_signed(ins.operand("rA")), ins.operand("SI")
    )


def _cmplwi(ins, state, mem):
    state.compare_unsigned(
        ins.operand("crfD"), state.read(ins.operand("rA")), ins.operand("UI")
    )


def _cmpw(ins, state, mem):
    state.compare_signed(
        ins.operand("crfD"),
        state.read_signed(ins.operand("rA")),
        state.read_signed(ins.operand("rB")),
    )


def _cmplw(ins, state, mem):
    state.compare_unsigned(
        ins.operand("crfD"), state.read(ins.operand("rA")), state.read(ins.operand("rB"))
    )


# ---------------------------------------------------------------------------
# XO-form arithmetic
# ---------------------------------------------------------------------------
def _add(ins, state, mem):
    state.write(
        ins.operand("rT"),
        state.read_signed(ins.operand("rA")) + state.read_signed(ins.operand("rB")),
    )


def _subf(ins, state, mem):
    state.write(
        ins.operand("rT"),
        state.read_signed(ins.operand("rB")) - state.read_signed(ins.operand("rA")),
    )


def _neg(ins, state, mem):
    state.write(ins.operand("rT"), -state.read_signed(ins.operand("rA")))


def _mullw(ins, state, mem):
    state.write(
        ins.operand("rT"),
        state.read_signed(ins.operand("rA")) * state.read_signed(ins.operand("rB")),
    )


def _divw(ins, state, mem):
    state.write(
        ins.operand("rT"),
        _divw_value(
            state.read_signed(ins.operand("rA")), state.read_signed(ins.operand("rB"))
        ),
    )


def _divw_value(a: int, b: int) -> int:
    return _divw_impl(a, b)


def _divw_impl(a: int, b: int) -> int:
    if b == 0:
        return 0
    if a == -(1 << 31) and b == -1:
        return -(1 << 31)
    return bitutils.cdiv(a, b)


def _divwu(ins, state, mem):
    a = state.read(ins.operand("rA"))
    b = state.read(ins.operand("rB"))
    state.write(ins.operand("rT"), a // b if b else 0)


# ---------------------------------------------------------------------------
# X-form logic and shifts
# ---------------------------------------------------------------------------
def _and(ins, state, mem):
    state.write(
        ins.operand("rA"), state.read(ins.operand("rS")) & state.read(ins.operand("rB"))
    )


def _or(ins, state, mem):
    state.write(
        ins.operand("rA"), state.read(ins.operand("rS")) | state.read(ins.operand("rB"))
    )


def _xor(ins, state, mem):
    state.write(
        ins.operand("rA"), state.read(ins.operand("rS")) ^ state.read(ins.operand("rB"))
    )


def _nor(ins, state, mem):
    state.write(
        ins.operand("rA"),
        ~(state.read(ins.operand("rS")) | state.read(ins.operand("rB"))),
    )


def _slw(ins, state, mem):
    amount = state.read(ins.operand("rB")) & 0x3F
    value = 0 if amount > 31 else state.read(ins.operand("rS")) << amount
    state.write(ins.operand("rA"), value)


def _srw(ins, state, mem):
    amount = state.read(ins.operand("rB")) & 0x3F
    value = 0 if amount > 31 else state.read(ins.operand("rS")) >> amount
    state.write(ins.operand("rA"), value)


def _sraw(ins, state, mem):
    amount = state.read(ins.operand("rB")) & 0x3F
    signed = state.read_signed(ins.operand("rS"))
    if amount > 31:
        amount = 31
    state.write(ins.operand("rA"), signed >> amount)


def _srawi(ins, state, mem):
    state.write(
        ins.operand("rA"), state.read_signed(ins.operand("rS")) >> ins.operand("SH")
    )


def _rlwinm(ins, state, mem):
    rotated = bitutils.rotl32(state.read(ins.operand("rS")), ins.operand("SH"))
    mb, me = ins.operand("MB"), ins.operand("ME")
    if mb <= me:
        mask = (bitutils.mask(me - mb + 1)) << (31 - me)
    else:  # wrapped mask
        mask = bitutils.WORD_MASK ^ ((bitutils.mask(mb - me - 1)) << (31 - mb + 1))
    state.write(ins.operand("rA"), rotated & mask)


def _extsb(ins, state, mem):
    state.write(
        ins.operand("rA"), bitutils.sign_extend(state.read(ins.operand("rS")) & 0xFF, 8)
    )


def _extsh(ins, state, mem):
    state.write(
        ins.operand("rA"),
        bitutils.sign_extend(state.read(ins.operand("rS")) & 0xFFFF, 16),
    )


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------
def _load(size: int, update: bool = False, signed: bool = False):
    def handler(ins, state, mem):
        disp, base = ins.operand("D(rA)")
        address = _ea(state, disp, base)
        value = mem.load(address, size)
        if signed:
            value = bitutils.u32(bitutils.sign_extend(value, 8 * size))
        state.write(ins.operand("rT"), value)
        if update:
            state.write(base, address)

    return handler


def _store(size: int, update: bool = False):
    def handler(ins, state, mem):
        disp, base = ins.operand("D(rA)")
        address = _ea(state, disp, base)
        mem.store(address, size, state.read(ins.operand("rS")))
        if update:
            state.write(base, address)

    return handler


# ---------------------------------------------------------------------------
# Special registers
# ---------------------------------------------------------------------------
def _mfspr(ins, state, mem):
    spr = ins.operand("SPR")
    if spr == registers.LR:
        state.write(ins.operand("rT"), state.lr)
    elif spr == registers.CTR:
        state.write(ins.operand("rT"), state.ctr)
    else:
        raise SimulationError(f"mfspr: unsupported SPR {spr}")


def _mtspr(ins, state, mem):
    spr = ins.operand("SPR")
    value = state.read(ins.operand("rS"))
    if spr == registers.LR:
        state.lr = value
    elif spr == registers.CTR:
        state.ctr = value
    else:
        raise SimulationError(f"mtspr: unsupported SPR {spr}")


_HANDLERS = {
    "addi": _addi,
    "addis": _addis,
    "mulli": _mulli,
    "subfic": _subfic,
    "ori": _ori,
    "oris": _oris,
    "xori": _xori,
    "xoris": _xoris,
    "andi.": _andi_dot,
    "andis.": _andis_dot,
    "cmpwi": _cmpwi,
    "cmplwi": _cmplwi,
    "cmpw": _cmpw,
    "cmplw": _cmplw,
    "add": _add,
    "subf": _subf,
    "neg": _neg,
    "mullw": _mullw,
    "divw": _divw,
    "divwu": _divwu,
    "and": _and,
    "or": _or,
    "xor": _xor,
    "nor": _nor,
    "slw": _slw,
    "srw": _srw,
    "sraw": _sraw,
    "srawi": _srawi,
    "rlwinm": _rlwinm,
    "extsb": _extsb,
    "extsh": _extsh,
    "lwz": _load(4),
    "lwzu": _load(4, update=True),
    "lbz": _load(1),
    "lbzu": _load(1, update=True),
    "lhz": _load(2),
    "lha": _load(2, signed=True),
    "stw": _store(4),
    "stwu": _store(4, update=True),
    "stb": _store(1),
    "stbu": _store(1, update=True),
    "sth": _store(2),
    "mfspr": _mfspr,
    "mtspr": _mtspr,
}
