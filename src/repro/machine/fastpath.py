"""Predecoded translation-cache fast path for both simulators.

The reference interpreters re-resolve ``ins.mnemonic`` against the
handler table and walk the operand list (``ins.operand("rA")``) on
every executed instruction.  This module trades a one-time *predecode*
pass for a fast steady state, QEMU-style:

* :func:`bound_thunk` compiles one :class:`~repro.isa.instruction.
  Instruction` into a *bound thunk* — a closure over the already
  extracted operand values and register numbers that applies the
  instruction to ``(state, memory)`` directly.  Thunks are memoized
  process-wide (instructions are frozen/hashable), so the dictionary
  entry ``addi r3, r3, 1`` shared by every program in a batch is bound
  exactly once.
* A *translation cache* groups consecutive thunks into straight-line
  **traces** that end at a control-flow instruction.  Executing a trace
  is a single dict lookup plus a tight loop over plain callables — the
  dispatch loop is re-entered per trace, not per instruction.
* :class:`ProgramTranslationCache` serves the uncompressed
  :class:`~repro.machine.simulator.Simulator` (one per
  :class:`~repro.linker.program.Program`, stored in
  ``program._analysis_cache``); :class:`StreamTranslationCache` serves
  :class:`~repro.machine.compressed_sim.CompressedSimulator` and is
  shared process-wide through an LRU registry keyed by the same content
  digest as the :class:`~repro.machine.decompressor.DecodeCache`, so
  repeated runs over one image (differential verification, benchmark
  repeats) predecode once.

Equivalence contract (the same one ``greedy_reference`` carries for the
compression pipeline): architectural state — registers, CR, LR, CTR,
memory, output, ``steps``, halt/exit — is byte-identical to the
reference interpreters at every instruction boundary, and errors carry
the same messages and structured fields.  The only tolerated skew is
on *aborting* runs of the compressed engine, where per-trace fetch
statistics are credited at trace entry (an exception mid-trace leaves
``FetchStats`` counting the whole trace).  Step budgets are exact: a
trace that might overrun ``max_steps`` is never entered; the simulator
falls back to its reference loop so the overrun raises at the precise
instruction with the reference message.

Observability: predecode passes run under the ``sim.predecode`` stage
timer; trace-cache effectiveness is reported through the
``sim.trace_cache.hits`` / ``sim.trace_cache.misses`` metrics.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache
import threading
import time

from repro import bitutils, observe
from repro.errors import DecompressionError, SimulationError
from repro.machine import fusion
from repro.isa import registers
from repro.isa.instruction import Instruction
from repro.machine.executor import CONTROL_MNEMONICS, _HANDLERS, _divw_impl
from repro.machine.simulator import (
    HALT_ADDRESS,
    RunResult,
    branch_decision,
    do_syscall,
)

_U = bitutils.WORD_MASK
_s32 = bitutils.s32
_sign_extend = bitutils.sign_extend
_rotl32 = bitutils.rotl32

# Traces are capped so a pathological straight-line program cannot
# build one giant body (and so the step-budget check, which is per
# trace, stays reasonably fine-grained).  A capped trace ends with
# ``control=None`` and chains to a continuation trace.
MAX_TRACE = 1024


# ---------------------------------------------------------------------------
# Instruction binders: one per executor handler.  Each extracts the
# operands once and returns a ``thunk(state, mem)`` closure that
# mirrors the corresponding :mod:`repro.machine.executor` handler
# exactly, including the trailing ``state.steps += 1``.
# ---------------------------------------------------------------------------
def _bind_addi(ins):
    rt, ra, si = ins.operand("rT"), ins.operand("rA"), ins.operand("SI")
    if ra:

        def thunk(state, mem):
            state.gpr[rt] = (_s32(state.gpr[ra]) + si) & _U
            state.steps += 1

    else:
        value = si & _U

        def thunk(state, mem):
            state.gpr[rt] = value
            state.steps += 1

    return thunk


def _bind_addis(ins):
    rt, ra = ins.operand("rT"), ins.operand("rA")
    shifted = ins.operand("SI") << 16
    if ra:

        def thunk(state, mem):
            state.gpr[rt] = (_s32(state.gpr[ra]) + shifted) & _U
            state.steps += 1

    else:
        value = shifted & _U

        def thunk(state, mem):
            state.gpr[rt] = value
            state.steps += 1

    return thunk


def _bind_mulli(ins):
    rt, ra, si = ins.operand("rT"), ins.operand("rA"), ins.operand("SI")

    def thunk(state, mem):
        state.gpr[rt] = (_s32(state.gpr[ra]) * si) & _U
        state.steps += 1

    return thunk


def _bind_subfic(ins):
    rt, ra, si = ins.operand("rT"), ins.operand("rA"), ins.operand("SI")

    def thunk(state, mem):
        state.gpr[rt] = (si - _s32(state.gpr[ra])) & _U
        state.steps += 1

    return thunk


def _bind_logic_imm(op, shift):
    def binder(ins):
        ra, rs = ins.operand("rA"), ins.operand("rS")
        imm = ins.operand("UI") << shift
        if op == "|":

            def thunk(state, mem):
                state.gpr[ra] = state.gpr[rs] | imm
                state.steps += 1

        else:

            def thunk(state, mem):
                state.gpr[ra] = state.gpr[rs] ^ imm
                state.steps += 1

        return thunk

    return binder


def _bind_andi_dot(shift):
    def binder(ins):
        ra, rs = ins.operand("rA"), ins.operand("rS")
        imm = ins.operand("UI") << shift

        def thunk(state, mem):
            result = state.gpr[rs] & imm
            state.gpr[ra] = result
            signed = _s32(result)
            if signed < 0:
                bits = 8
            elif signed > 0:
                bits = 4
            else:
                bits = 2
            state.cr = (state.cr & ~(0xF << 28)) | (bits << 28)
            state.steps += 1

        return thunk

    return binder


def _bind_cmp(signed, immediate):
    imm_name = "SI" if signed else "UI"

    def binder(ins):
        crf, ra = ins.operand("crfD"), ins.operand("rA")
        shift = 28 - 4 * crf
        clear = ~(0xF << shift)
        if immediate:
            rhs = ins.operand(imm_name)

            def thunk(state, mem):
                a = _s32(state.gpr[ra]) if signed else state.gpr[ra]
                if a < rhs:
                    bits = 8
                elif a > rhs:
                    bits = 4
                else:
                    bits = 2
                state.cr = (state.cr & clear) | (bits << shift)
                state.steps += 1

        else:
            rb = ins.operand("rB")

            def thunk(state, mem):
                if signed:
                    a, b = _s32(state.gpr[ra]), _s32(state.gpr[rb])
                else:
                    a, b = state.gpr[ra], state.gpr[rb]
                if a < b:
                    bits = 8
                elif a > b:
                    bits = 4
                else:
                    bits = 2
                state.cr = (state.cr & clear) | (bits << shift)
                state.steps += 1

        return thunk

    return binder


def _bind_add(ins):
    rt, ra, rb = ins.operand("rT"), ins.operand("rA"), ins.operand("rB")

    def thunk(state, mem):
        gpr = state.gpr
        gpr[rt] = (gpr[ra] + gpr[rb]) & _U
        state.steps += 1

    return thunk


def _bind_subf(ins):
    rt, ra, rb = ins.operand("rT"), ins.operand("rA"), ins.operand("rB")

    def thunk(state, mem):
        gpr = state.gpr
        gpr[rt] = (gpr[rb] - gpr[ra]) & _U
        state.steps += 1

    return thunk


def _bind_neg(ins):
    rt, ra = ins.operand("rT"), ins.operand("rA")

    def thunk(state, mem):
        state.gpr[rt] = -_s32(state.gpr[ra]) & _U
        state.steps += 1

    return thunk


def _bind_mullw(ins):
    rt, ra, rb = ins.operand("rT"), ins.operand("rA"), ins.operand("rB")

    def thunk(state, mem):
        gpr = state.gpr
        gpr[rt] = (_s32(gpr[ra]) * _s32(gpr[rb])) & _U
        state.steps += 1

    return thunk


def _bind_divw(ins):
    rt, ra, rb = ins.operand("rT"), ins.operand("rA"), ins.operand("rB")

    def thunk(state, mem):
        gpr = state.gpr
        gpr[rt] = _divw_impl(_s32(gpr[ra]), _s32(gpr[rb])) & _U
        state.steps += 1

    return thunk


def _bind_divwu(ins):
    rt, ra, rb = ins.operand("rT"), ins.operand("rA"), ins.operand("rB")

    def thunk(state, mem):
        gpr = state.gpr
        b = gpr[rb]
        gpr[rt] = gpr[ra] // b if b else 0
        state.steps += 1

    return thunk


def _bind_logic_reg(op):
    def binder(ins):
        ra, rs, rb = ins.operand("rA"), ins.operand("rS"), ins.operand("rB")
        if op == "&":

            def thunk(state, mem):
                gpr = state.gpr
                gpr[ra] = gpr[rs] & gpr[rb]
                state.steps += 1

        elif op == "|":

            def thunk(state, mem):
                gpr = state.gpr
                gpr[ra] = gpr[rs] | gpr[rb]
                state.steps += 1

        elif op == "^":

            def thunk(state, mem):
                gpr = state.gpr
                gpr[ra] = gpr[rs] ^ gpr[rb]
                state.steps += 1

        else:  # nor

            def thunk(state, mem):
                gpr = state.gpr
                gpr[ra] = ~(gpr[rs] | gpr[rb]) & _U
                state.steps += 1

        return thunk

    return binder


def _bind_slw(ins):
    ra, rs, rb = ins.operand("rA"), ins.operand("rS"), ins.operand("rB")

    def thunk(state, mem):
        gpr = state.gpr
        amount = gpr[rb] & 0x3F
        gpr[ra] = 0 if amount > 31 else (gpr[rs] << amount) & _U
        state.steps += 1

    return thunk


def _bind_srw(ins):
    ra, rs, rb = ins.operand("rA"), ins.operand("rS"), ins.operand("rB")

    def thunk(state, mem):
        gpr = state.gpr
        amount = gpr[rb] & 0x3F
        gpr[ra] = 0 if amount > 31 else gpr[rs] >> amount
        state.steps += 1

    return thunk


def _bind_sraw(ins):
    ra, rs, rb = ins.operand("rA"), ins.operand("rS"), ins.operand("rB")

    def thunk(state, mem):
        gpr = state.gpr
        amount = gpr[rb] & 0x3F
        if amount > 31:
            amount = 31
        gpr[ra] = (_s32(gpr[rs]) >> amount) & _U
        state.steps += 1

    return thunk


def _bind_srawi(ins):
    ra, rs, sh = ins.operand("rA"), ins.operand("rS"), ins.operand("SH")

    def thunk(state, mem):
        gpr = state.gpr
        gpr[ra] = (_s32(gpr[rs]) >> sh) & _U
        state.steps += 1

    return thunk


def _bind_rlwinm(ins):
    ra, rs, sh = ins.operand("rA"), ins.operand("rS"), ins.operand("SH")
    mb, me = ins.operand("MB"), ins.operand("ME")
    if mb <= me:
        mask = (bitutils.mask(me - mb + 1)) << (31 - me)
    else:  # wrapped mask
        mask = _U ^ ((bitutils.mask(mb - me - 1)) << (31 - mb + 1))

    def thunk(state, mem):
        gpr = state.gpr
        gpr[ra] = _rotl32(gpr[rs], sh) & mask
        state.steps += 1

    return thunk


def _bind_exts(width):
    low_mask = (1 << width) - 1

    def binder(ins):
        ra, rs = ins.operand("rA"), ins.operand("rS")

        def thunk(state, mem):
            gpr = state.gpr
            gpr[ra] = _sign_extend(gpr[rs] & low_mask, width) & _U
            state.steps += 1

        return thunk

    return binder


def _bind_load(size, update=False, signed=False):
    width = 8 * size

    def binder(ins):
        disp, base = ins.operand("D(rA)")
        rt = ins.operand("rT")

        def thunk(state, mem):
            gpr = state.gpr
            address = ((gpr[base] if base else 0) + disp) & _U
            value = mem.load(address, size)
            if signed:
                value = _sign_extend(value, width) & _U
            gpr[rt] = value
            if update:
                gpr[base] = address
            state.steps += 1

        return thunk

    return binder


def _bind_store(size, update=False):
    def binder(ins):
        disp, base = ins.operand("D(rA)")
        rs = ins.operand("rS")

        def thunk(state, mem):
            gpr = state.gpr
            address = ((gpr[base] if base else 0) + disp) & _U
            mem.store(address, size, gpr[rs])
            if update:
                gpr[base] = address
            state.steps += 1

        return thunk

    return binder


def _bind_mfspr(ins):
    spr, rt = ins.operand("SPR"), ins.operand("rT")
    if spr == registers.LR:

        def thunk(state, mem):
            state.gpr[rt] = state.lr & _U
            state.steps += 1

    elif spr == registers.CTR:

        def thunk(state, mem):
            state.gpr[rt] = state.ctr & _U
            state.steps += 1

    else:

        def thunk(state, mem):
            raise SimulationError(f"mfspr: unsupported SPR {spr}")

    return thunk


def _bind_mtspr(ins):
    spr, rs = ins.operand("SPR"), ins.operand("rS")
    if spr == registers.LR:

        def thunk(state, mem):
            state.lr = state.gpr[rs]
            state.steps += 1

    elif spr == registers.CTR:

        def thunk(state, mem):
            state.ctr = state.gpr[rs]
            state.steps += 1

    else:

        def thunk(state, mem):
            raise SimulationError(f"mtspr: unsupported SPR {spr}")

    return thunk


_BINDERS = {
    "addi": _bind_addi,
    "addis": _bind_addis,
    "mulli": _bind_mulli,
    "subfic": _bind_subfic,
    "ori": _bind_logic_imm("|", 0),
    "oris": _bind_logic_imm("|", 16),
    "xori": _bind_logic_imm("^", 0),
    "xoris": _bind_logic_imm("^", 16),
    "andi.": _bind_andi_dot(0),
    "andis.": _bind_andi_dot(16),
    "cmpwi": _bind_cmp(signed=True, immediate=True),
    "cmplwi": _bind_cmp(signed=False, immediate=True),
    "cmpw": _bind_cmp(signed=True, immediate=False),
    "cmplw": _bind_cmp(signed=False, immediate=False),
    "add": _bind_add,
    "subf": _bind_subf,
    "neg": _bind_neg,
    "mullw": _bind_mullw,
    "divw": _bind_divw,
    "divwu": _bind_divwu,
    "and": _bind_logic_reg("&"),
    "or": _bind_logic_reg("|"),
    "xor": _bind_logic_reg("^"),
    "nor": _bind_logic_reg("~|"),
    "slw": _bind_slw,
    "srw": _bind_srw,
    "sraw": _bind_sraw,
    "srawi": _bind_srawi,
    "rlwinm": _bind_rlwinm,
    "extsb": _bind_exts(8),
    "extsh": _bind_exts(16),
    "lwz": _bind_load(4),
    "lwzu": _bind_load(4, update=True),
    "lbz": _bind_load(1),
    "lbzu": _bind_load(1, update=True),
    "lhz": _bind_load(2),
    "lha": _bind_load(2, signed=True),
    "stw": _bind_store(4),
    "stwu": _bind_store(4, update=True),
    "stb": _bind_store(1),
    "stbu": _bind_store(1, update=True),
    "sth": _bind_store(2),
    "mfspr": _bind_mfspr,
    "mtspr": _bind_mtspr,
}


@lru_cache(maxsize=65536)
def bound_thunk(ins: Instruction):
    """Bind one non-control instruction to a ``(state, mem)`` closure.

    Memoized process-wide: instructions are frozen dataclasses, so the
    same word predecoded by any simulator shares one thunk.
    """
    binder = _BINDERS.get(ins.mnemonic)
    if binder is not None:
        return binder(ins)
    handler = _HANDLERS.get(ins.mnemonic)
    if handler is None:
        name = ins.mnemonic

        def missing(state, mem):
            raise SimulationError(f"no semantics for {name!r}")

        return missing

    # A handler without a dedicated binder (future additions) still
    # runs predecoded, through the generic executor entry.
    def generic(state, mem):
        handler(ins, state, mem)
        state.steps += 1

    return generic


# ---------------------------------------------------------------------------
# Traces
# ---------------------------------------------------------------------------
class Trace:
    """A straight-line run of bound thunks ending at one control point.

    ``control`` is ``None`` for capped traces (execution continues at
    the trace keyed by ``cont``); otherwise it is a closure
    ``control(state, sim) -> next_key`` that performs the control
    transfer (consuming one step) or raises exactly as the reference
    interpreter would.

    With superinstruction fusion active, ``body`` may hold fused
    two-instruction thunks, so ``len(body)`` undercounts instructions;
    ``body_insns`` is the architectural instruction count of the body
    and ``steps_cost``/``issued`` stay instruction-granular.

    With *control fusion* active, the last body instruction (a compare
    or other pure-ALU lead) is absorbed into the control closure:
    ``control`` executes lead + branch as one unit, ``fused_lead_pc`` /
    ``fused_lead_key`` record the absorbed instruction's position, and
    ``body_insns`` still counts it (profile accounting stays
    instruction-granular).  ``plain_control`` is always the unfused
    branch closure — hooked replay executes the lead per-instruction
    and must not run it a second time inside the control.
    """

    __slots__ = (
        "start",
        "body",
        "body_insns",
        "control",
        "plain_control",
        "control_pc",
        "control_key",
        "fused_lead_pc",
        "fused_lead_key",
        "cont",
        "steps_cost",
        "units",
        "expansions",
        "escapes",
        "issued",
    )

    def __init__(self, start, body, control, cont, steps_cost):
        self.start = start
        self.body = body
        self.body_insns = len(body)
        self.control = control
        self.plain_control = control
        self.control_pc = None
        self.control_key = None
        self.fused_lead_pc = None
        self.fused_lead_key = None
        self.cont = cont
        self.steps_cost = steps_cost
        self.units = 0
        self.expansions = 0
        self.escapes = 0
        self.issued = 0


def _out_of_text_control(pc):
    def control(state, sim):
        raise SimulationError(f"PC index {pc} out of .text", step=state.steps)

    return control


def _program_control(program, index, ins):
    """Compile one control instruction of an uncompressed program.

    The closure receives ``(state, sim)`` with ``sim.pc`` already
    synced to ``index`` (so dynamic-target resolution and halting via
    :meth:`Simulator._to_index` see the reference PC) and returns the
    next instruction index.
    """
    name = ins.mnemonic
    fallthrough = index + 1
    if name in ("b", "bl"):
        target = index + ins.operand("target")
        if name == "bl":
            link = program.address_of(fallthrough)

            def control(state, sim):
                state.steps += 1
                state.lr = link
                return target

        else:

            def control(state, sim):
                state.steps += 1
                return target

    elif name in ("bc", "bcl"):
        bo, bi = ins.operand("BO"), ins.operand("BI")
        target = index + ins.operand("target")
        if name == "bcl":
            link = program.address_of(fallthrough)

            def control(state, sim):
                state.steps += 1
                state.lr = link
                return target if branch_decision(state, bo, bi) else fallthrough

        else:

            def control(state, sim):
                state.steps += 1
                return target if branch_decision(state, bo, bi) else fallthrough

    elif name == "bclr":
        bo, bi = ins.operand("BO"), ins.operand("BI")

        def control(state, sim):
            state.steps += 1
            if branch_decision(state, bo, bi):
                return sim._to_index(state.lr)
            return fallthrough

    elif name in ("bcctr", "bcctrl"):
        bo, bi = ins.operand("BO"), ins.operand("BI")
        link = program.address_of(fallthrough) if name == "bcctrl" else None

        def control(state, sim):
            state.steps += 1
            taken = branch_decision(state, bo, bi)
            if link is not None:
                state.lr = link
            if taken:
                return sim._to_index(state.ctr)
            return fallthrough

    elif name == "sc":

        def control(state, sim):
            state.steps += 1
            do_syscall(state)
            return fallthrough

    else:  # pragma: no cover - CONTROL_MNEMONICS is closed
        def control(state, sim):
            raise SimulationError(f"unhandled control instruction {name}")

    return control


def _program_control_fused(program, index, ins, lead):
    """Compile a fused lead+branch control for an uncompressed program.

    ``lead`` is the instruction at ``index - 1`` — a pure-ALU/compare
    lead (:data:`fusion.CONTROL_LEAD_MNEMONICS`), so the lead half
    cannot raise.  The closure executes lead then branch with the
    exact reference order: lead (one step), ``steps += 1`` for the
    branch, link write, decision.  Only ``bc``/``bcl`` tails fuse.
    Returns ``None`` for any other control.
    """
    name = ins.mnemonic
    if name not in ("bc", "bcl"):
        return None
    fallthrough = index + 1
    bo, bi = ins.operand("BO"), ins.operand("BI")
    target = index + ins.operand("target")
    link = program.address_of(fallthrough) if name == "bcl" else None

    feed_crf = fusion.compare_feed(lead)
    decrement = not (bo & 0b00100)
    if feed_crf is not None and not decrement and (bi >> 2) == feed_crf[1]:
        # Compare lead writing the branch's own CR field, no CTR
        # decrement: the decision tests the just-computed LT/GT/EQ
        # bits locally instead of re-reading state.cr.
        feed = feed_crf[0]
        always = bool(bo & 0b10000)
        want = (bo >> 3) & 1
        sel = 3 - (bi & 3)

        def control(state, sim):
            bits = feed(state)
            state.steps += 1
            if link is not None:
                state.lr = link
            if always or ((bits >> sel) & 1) == want:
                return target
            return fallthrough

    else:
        lead_thunk = bound_thunk(lead)

        def control(state, sim):
            lead_thunk(state, sim.memory)
            state.steps += 1
            if link is not None:
                state.lr = link
            return target if branch_decision(state, bo, bi) else fallthrough

    return control


class ProgramTranslationCache:
    """Predecoded ``.text`` plus lazily built traces for one Program."""

    def __init__(self, program):
        self.program = program
        self.traces = {}
        self.hits = 0
        self.misses = 0
        self.fusion_key = fusion.config_key()
        started = time.perf_counter()
        with observe.stage(
            "sim.predecode", kind="program", name=program.name,
            instructions=len(program.text),
        ):
            ops = []
            instructions = []
            kinds = bytearray(len(program.text))
            for index, text_ins in enumerate(program.text):
                ins = text_ins.instruction
                instructions.append(ins)
                if ins.mnemonic in CONTROL_MNEMONICS:
                    kinds[index] = 1
                    ops.append(_program_control(program, index, ins))
                else:
                    ops.append(bound_thunk(ins))
            self.ops = ops
            self.instructions = instructions
            self.kinds = kinds
        self.predecode_seconds = time.perf_counter() - started

    def trace_at(self, pc):
        trace = self.traces.get(pc)
        if trace is None:
            trace = self.build_trace(pc)
        return trace

    def build_trace(self, start):
        self.misses += 1
        ops, kinds = self.ops, self.kinds
        n = len(ops)
        if not 0 <= start < n:
            trace = Trace(start, (), _out_of_text_control(start), None, 0)
            self.traces[start] = trace
            return trace
        index = start
        while index < n and not kinds[index] and index - start < MAX_TRACE:
            index += 1
        span = index - start
        if index < n and kinds[index]:
            fused_control = None
            if index > start:
                control_pairs = fusion.active_control_pairs()
                lead = self.instructions[index - 1]
                tail = self.instructions[index]
                if (lead.mnemonic, tail.mnemonic) in control_pairs:
                    fused_control = _program_control_fused(
                        self.program, index, tail, lead
                    )
            if fused_control is not None:
                # The lead is absorbed into the control: the body span
                # (and data-pair fusion) stops one instruction early,
                # but accounting stays instruction-granular.
                body = self._body_span(start, index - 1)
                trace = Trace(start, body, fused_control, None, span + 1)
                trace.fused_lead_pc = index - 1
                trace.plain_control = ops[index]
            else:
                body = self._body_span(start, index)
                trace = Trace(start, body, ops[index], None, span + 1)
            trace.control_pc = index
        elif index < n:  # capped: chain to a continuation trace
            trace = Trace(start, self._body_span(start, index), None, index, span)
        else:  # ran off the end of .text
            trace = Trace(
                start, self._body_span(start, index),
                _out_of_text_control(n), None, span,
            )
        trace.body_insns = span
        self.traces[start] = trace
        return trace

    def _body_span(self, start, end):
        """Body thunks for ``[start, end)``, fusing active hot pairs."""
        ops = self.ops
        pairs = fusion.active_pairs()
        if not pairs:
            return tuple(ops[start:end])
        instructions = self.instructions
        body = []
        i = start
        while i < end:
            if i + 1 < end:
                a = instructions[i]
                b = instructions[i + 1]
                if (a.mnemonic, b.mnemonic) in pairs:
                    fused = fusion.fused_thunk(a, b)
                    if fused is not None:
                        body.append(fused)
                        i += 2
                        continue
            body.append(ops[i])
            i += 1
        return tuple(body)

    def stats(self):
        return {
            "traces": len(self.traces),
            "hits": self.hits,
            "misses": self.misses,
            "predecode_seconds": self.predecode_seconds,
        }


def program_cache(program) -> ProgramTranslationCache:
    """The per-program translation cache (built on first use).

    Traces embed fused thunks, so a fusion-config change invalidates
    them (the predecoded ops survive; only traces rebuild).
    """
    cache = program._analysis_cache.get("fastpath")
    if cache is None:
        cache = ProgramTranslationCache(program)
        program._analysis_cache["fastpath"] = cache
    key = fusion.config_key()
    if cache.fusion_key != key:
        cache.traces.clear()
        cache.fusion_key = key
    return cache


# ---------------------------------------------------------------------------
# Compressed-stream traces
# ---------------------------------------------------------------------------
def _fell_off_control(last_unit):
    def control(state, sim):
        raise SimulationError(
            "fell off the end of the compressed stream",
            unit_address=last_unit,
            step=state.steps,
        )

    return control


class StreamTranslationCache:
    """Predecoded stream columns plus traces for one compressed image.

    Positions are ``(item_index, micro)`` pairs — the compressed
    simulator's native program counter.  The predecode layer consumes
    the bulk decoder's columnar output directly
    (:class:`~repro.machine.decompressor.StreamColumns`): thunks bind
    straight from the per-item instruction column, so the fast path
    never materializes a ``FetchItem`` tuple.  Dictionary entries and
    escaped instructions both go through :func:`bound_thunk`, so
    entries shared across images share thunks.
    """

    def __init__(self, columns, text_base, alignment_bits):
        self.columns = columns
        self.addresses = columns.addresses
        self.sizes = columns.sizes
        self.is_codeword = columns.is_codeword
        self.instructions = columns.instructions
        self.count = len(columns)
        self.item_at_address = columns.index
        self.text_base = text_base
        self.alignment_bits = alignment_bits
        self.traces = {}
        self._controls = {}
        self._fused_controls = {}
        self.hits = 0
        self.misses = 0
        self.fusion_key = fusion.config_key()
        started = time.perf_counter()
        with observe.stage(
            "sim.predecode", kind="stream", items=self.count,
        ):
            self.item_thunks = tuple(
                tuple(
                    None if ins.mnemonic in CONTROL_MNEMONICS else bound_thunk(ins)
                    for ins in instructions
                )
                for instructions in columns.instructions
            )
        self.predecode_seconds = time.perf_counter() - started

    # -- position arithmetic ------------------------------------------
    def _next_key(self, item_index, micro):
        if micro + 1 < len(self.item_thunks[item_index]):
            return (item_index, micro + 1)
        if item_index + 1 < self.count:
            return (item_index + 1, 0)
        return None

    def _key_for_unit(self, unit):
        index = self.item_at_address.get(unit)
        return None if index is None else (index, 0)

    def _resolve_address(self, state, sim, address, current_key):
        """Dynamic branch target (LR/CTR value) -> stream position."""
        if address == HALT_ADDRESS:
            state.halted = True
            return current_key
        unit = address - self.text_base
        index = self.item_at_address.get(unit)
        if index is None:
            raise DecompressionError(
                f"branch to unit {unit} lands inside an encoded item",
                unit_address=unit,
                orig_pc=sim.origin_pc(),
                step=state.steps,
            )
        return (index, 0)

    # -- control compilation ------------------------------------------
    def control_at(self, key):
        control = self._controls.get(key)
        if control is None:
            control = self._build_control(key)
            self._controls[key] = control
        return control

    def _build_control(self, key):
        item_index, micro = key
        item_address = self.addresses[item_index]
        ins = self.instructions[item_index][micro]
        name = ins.mnemonic
        fall_key = self._next_key(item_index, micro)
        last_unit = item_address
        resolve = self._resolve_address

        def _static_target():
            unit = item_address + ins.operand("target")
            target_key = self._key_for_unit(unit)
            return unit, target_key

        if name in ("b", "bl"):
            unit, target_key = _static_target()
            link = (
                self.text_base + item_address + self.sizes[item_index]
                if name == "bl"
                else None
            )

            def control(state, sim):
                state.steps += 1
                if link is not None:
                    state.lr = link
                if target_key is None:
                    raise DecompressionError(
                        f"branch to unit {unit} lands inside an encoded item",
                        unit_address=unit,
                        orig_pc=sim.origin_pc(),
                        step=state.steps,
                    )
                return target_key

        elif name in ("bc", "bcl"):
            bo, bi = ins.operand("BO"), ins.operand("BI")
            unit, target_key = _static_target()
            link = (
                self.text_base + item_address + self.sizes[item_index]
                if name == "bcl"
                else None
            )

            def control(state, sim):
                state.steps += 1
                if link is not None:
                    state.lr = link
                if branch_decision(state, bo, bi):
                    if target_key is None:
                        raise DecompressionError(
                            f"branch to unit {unit} lands inside an encoded item",
                            unit_address=unit,
                            orig_pc=sim.origin_pc(),
                            step=state.steps,
                        )
                    return target_key
                if fall_key is None:
                    raise SimulationError(
                        "fell off the end of the compressed stream",
                        unit_address=last_unit,
                        step=state.steps,
                    )
                return fall_key

        elif name == "bclr":
            bo, bi = ins.operand("BO"), ins.operand("BI")

            def control(state, sim):
                state.steps += 1
                if branch_decision(state, bo, bi):
                    return resolve(state, sim, state.lr, key)
                if fall_key is None:
                    raise SimulationError(
                        "fell off the end of the compressed stream",
                        unit_address=last_unit,
                        step=state.steps,
                    )
                return fall_key

        elif name in ("bcctr", "bcctrl"):
            bo, bi = ins.operand("BO"), ins.operand("BI")
            link = (
                self.text_base + item_address + self.sizes[item_index]
                if name == "bcctrl"
                else None
            )

            def control(state, sim):
                state.steps += 1
                taken = branch_decision(state, bo, bi)
                if link is not None:
                    state.lr = link
                if taken:
                    return resolve(state, sim, state.ctr, key)
                if fall_key is None:
                    raise SimulationError(
                        "fell off the end of the compressed stream",
                        unit_address=last_unit,
                        step=state.steps,
                    )
                return fall_key

        elif name == "sc":

            def control(state, sim):
                state.steps += 1
                do_syscall(state)
                if state.halted:
                    return key
                if fall_key is None:
                    raise SimulationError(
                        "fell off the end of the compressed stream",
                        unit_address=last_unit,
                        step=state.steps,
                    )
                return fall_key

        else:  # pragma: no cover - CONTROL_MNEMONICS is closed
            def control(state, sim):
                raise SimulationError(f"unhandled control instruction {name}")

        return control

    def fused_control_at(self, key, lead_key):
        control = self._fused_controls.get((key, lead_key))
        if control is None:
            control = self._build_fused_control(key, lead_key)
            self._fused_controls[(key, lead_key)] = control
        return control

    def _build_fused_control(self, key, lead_key):
        """A lead+branch control closure for a compressed stream.

        ``key`` is the ``bc``/``bcl`` position, ``lead_key`` the
        pure-ALU/compare position immediately before it in fetch
        order.  Error semantics are byte-identical to the unfused
        :meth:`_build_control`: both step increments land before any
        raise, so a taken branch into an encoded item or a fall off
        the stream reports the exact reference step count.
        """
        item_index, micro = key
        item_address = self.addresses[item_index]
        ins = self.instructions[item_index][micro]
        name = ins.mnemonic
        li, lm = lead_key
        lead = self.instructions[li][lm]
        fall_key = self._next_key(item_index, micro)
        last_unit = item_address
        bo, bi = ins.operand("BO"), ins.operand("BI")
        unit = item_address + ins.operand("target")
        target_key = self._key_for_unit(unit)
        link = (
            self.text_base + item_address + self.sizes[item_index]
            if name == "bcl"
            else None
        )

        feed_crf = fusion.compare_feed(lead)
        decrement = not (bo & 0b00100)
        if feed_crf is not None and not decrement and (bi >> 2) == feed_crf[1]:
            feed = feed_crf[0]
            always = bool(bo & 0b10000)
            want = (bo >> 3) & 1
            sel = 3 - (bi & 3)

            def control(state, sim):
                bits = feed(state)
                state.steps += 1
                if link is not None:
                    state.lr = link
                if always or ((bits >> sel) & 1) == want:
                    if target_key is None:
                        raise DecompressionError(
                            f"branch to unit {unit} lands inside an "
                            f"encoded item",
                            unit_address=unit,
                            orig_pc=sim.origin_pc(),
                            step=state.steps,
                        )
                    return target_key
                if fall_key is None:
                    raise SimulationError(
                        "fell off the end of the compressed stream",
                        unit_address=last_unit,
                        step=state.steps,
                    )
                return fall_key

        else:
            lead_thunk = bound_thunk(lead)

            def control(state, sim):
                lead_thunk(state, sim.memory)
                state.steps += 1
                if link is not None:
                    state.lr = link
                if branch_decision(state, bo, bi):
                    if target_key is None:
                        raise DecompressionError(
                            f"branch to unit {unit} lands inside an "
                            f"encoded item",
                            unit_address=unit,
                            orig_pc=sim.origin_pc(),
                            step=state.steps,
                        )
                    return target_key
                if fall_key is None:
                    raise SimulationError(
                        "fell off the end of the compressed stream",
                        unit_address=last_unit,
                        step=state.steps,
                    )
                return fall_key

        return control

    # -- trace construction -------------------------------------------
    def trace_at(self, key):
        trace = self.traces.get(key)
        if trace is None:
            trace = self.build_trace(key)
        return trace

    def build_trace(self, start):
        self.misses += 1
        sizes = self.sizes
        is_codeword = self.is_codeword
        thunks = self.item_thunks
        positions = []
        units = expansions = escapes = 0
        control = None
        control_key = None
        cont = None
        item_index, micro = start
        count = 0
        while True:
            if count >= MAX_TRACE:
                cont = (item_index, micro)
                break
            if micro == 0:
                units += sizes[item_index]
                if is_codeword[item_index]:
                    expansions += 1
                else:
                    escapes += 1
            thunk = thunks[item_index][micro]
            count += 1
            if thunk is None:  # control instruction
                control = self.control_at((item_index, micro))
                control_key = (item_index, micro)
                break
            positions.append((item_index, micro))
            if micro + 1 < len(thunks[item_index]):
                micro += 1
            elif item_index + 1 < self.count:
                item_index += 1
                micro = 0
            else:
                # The last data instruction executes, then the advance
                # past the end of the stream raises — exactly the
                # reference ``_advance`` behaviour.
                control = _fell_off_control(self.addresses[item_index])
                break
        fused_lead_key = None
        if control_key is not None and positions:
            control_pairs = fusion.active_control_pairs()
            if control_pairs:
                li, lm = positions[-1]
                lead = self.instructions[li][lm]
                tail = self.instructions[control_key[0]][control_key[1]]
                if (lead.mnemonic, tail.mnemonic) in control_pairs:
                    fused_lead_key = positions[-1]
        # Control fusion claims the lead before data-pair fusion sees
        # it, so the body (and its pairing) stops one position early;
        # fetch/step accounting always covers the full span.
        body_positions = (
            positions[:-1] if fused_lead_key is not None else positions
        )
        steps_cost = len(positions) + (1 if control_key is not None else 0)
        plain_control = control
        if fused_lead_key is not None:
            control = self.fused_control_at(control_key, fused_lead_key)
        trace = Trace(
            start, self._paired_body(body_positions), control, cont, steps_cost
        )
        trace.plain_control = plain_control
        trace.control_key = control_key
        trace.fused_lead_key = fused_lead_key
        trace.units = units
        trace.expansions = expansions
        trace.escapes = escapes
        trace.issued = steps_cost
        trace.body_insns = len(positions)
        self.traces[start] = trace
        return trace

    def _paired_body(self, positions):
        """Body thunks for the collected span, fusing active hot pairs.

        Pairing may cross item boundaries — fusion only changes how a
        body executes, never its fetch accounting, which is carried on
        the trace itself.
        """
        thunks = self.item_thunks
        pairs = fusion.active_pairs()
        if not pairs:
            return tuple(thunks[ii][mm] for ii, mm in positions)
        instructions = self.instructions
        body = []
        i = 0
        n = len(positions)
        while i < n:
            ii, mm = positions[i]
            if i + 1 < n:
                jj, mj = positions[i + 1]
                a = instructions[ii][mm]
                b = instructions[jj][mj]
                if (a.mnemonic, b.mnemonic) in pairs:
                    fused = fusion.fused_thunk(a, b)
                    if fused is not None:
                        body.append(fused)
                        i += 2
                        continue
            body.append(thunks[ii][mm])
            i += 1
        return tuple(body)

    def stats(self):
        return {
            "traces": len(self.traces),
            "hits": self.hits,
            "misses": self.misses,
            "predecode_seconds": self.predecode_seconds,
        }


# Process-wide registry: one StreamTranslationCache per image content,
# LRU-evicted, keyed by the DecodeCache content digest + text base so
# repeated simulator constructions over one image predecode once.
_STREAM_CACHES: OrderedDict = OrderedDict()
STREAM_CACHE_CAPACITY = 32


def stream_cache(
    content_key, text_base, columns, alignment_bits
) -> StreamTranslationCache:
    key = (content_key, text_base)
    cache = _STREAM_CACHES.get(key)
    if cache is None:
        cache = StreamTranslationCache(columns, text_base, alignment_bits)
        _STREAM_CACHES[key] = cache
        while len(_STREAM_CACHES) > STREAM_CACHE_CAPACITY:
            _STREAM_CACHES.popitem(last=False)
    else:
        _STREAM_CACHES.move_to_end(key)
    fusion_key = fusion.config_key()
    if cache.fusion_key != fusion_key:
        cache.traces.clear()
        cache._fused_controls.clear()
        cache.fusion_key = fusion_key
    return cache


def stream_cache_for(sim) -> StreamTranslationCache:
    """The shared translation cache for one CompressedSimulator."""
    return stream_cache(
        sim._translation_key(),
        sim._text_base,
        sim._columns,
        sim._alignment_bits,
    )


def clear_translation_caches() -> None:
    """Drop all shared predecode state (tests, memory pressure)."""
    _STREAM_CACHES.clear()
    bound_thunk.cache_clear()


def translation_cache_stats() -> dict:
    info = bound_thunk.cache_info()
    return {
        "stream_caches": len(_STREAM_CACHES),
        "thunk_hits": info.hits,
        "thunk_misses": info.misses,
        "thunks": info.currsize,
    }


def control_fusion_report(program, counts) -> dict:
    """Measured control-fusion coverage for one profiled program.

    ``counts`` are per-instruction execution counts (e.g. from
    :func:`repro.machine.simulator.profile_program`).  A *site* is an
    adjacent compare + ``bc``/``bcl`` pair in ``.text``; its dynamic
    weight is ``min(count_lead, count_branch)`` — the same rule the
    fusion miner uses.  A site counts as fused when any built trace
    absorbed its lead into the control closure, so the report reflects
    what actually executed fused, not what theoretically could.
    """
    cache = program_cache(program)
    fused_sites = {
        trace.fused_lead_pc
        for trace in cache.traces.values()
        if trace.fused_lead_pc is not None
    }
    text = program.text
    sites = []
    for i in range(len(text) - 1):
        a = text[i].instruction.mnemonic
        b = text[i + 1].instruction.mnemonic
        if a in fusion.COMPARE_MNEMONICS and b in fusion.CONTROL_TAIL_MNEMONICS:
            sites.append(i)
    dynamic_pairs = sum(min(counts[i], counts[i + 1]) for i in sites)
    dynamic_fused = sum(
        min(counts[i], counts[i + 1]) for i in sites if i in fused_sites
    )
    return {
        "sites": len(sites),
        "fused_sites": sum(1 for i in sites if i in fused_sites),
        "dynamic_pairs": dynamic_pairs,
        "dynamic_fused": dynamic_fused,
        "coverage": (dynamic_fused / dynamic_pairs) if dynamic_pairs else 1.0,
    }


# ---------------------------------------------------------------------------
# Trace-identity markers for the sampling profiler.
#
# When tagging is enabled (by repro.observe.profiler), the run loops
# publish "which trace is this thread executing right now" into a
# per-thread map, so stack samples landing inside a trace body can be
# attributed to the specific (fused) trace — "which superinstruction
# is hot" becomes a queryable fact.  The flag is hoisted into a local
# before each run loop starts, so the disabled cost is one truthiness
# check per run, not per dispatch.
# ---------------------------------------------------------------------------
_TRACE_TAGGING = False
_live_trace: dict[int, tuple] = {}


def enable_trace_tagging() -> None:
    global _TRACE_TAGGING
    _TRACE_TAGGING = True


def disable_trace_tagging() -> None:
    global _TRACE_TAGGING
    _TRACE_TAGGING = False
    _live_trace.clear()


def live_trace_markers() -> dict[int, tuple]:
    """Snapshot of thread id → ``(kind, start, fused)`` for threads
    currently inside a fast run loop (empty unless tagging is on)."""
    return dict(_live_trace)


def _note_cache_metrics(cache, dispatches, misses_before):
    built = cache.misses - misses_before
    hits = dispatches - built
    if hits > 0:
        cache.hits += hits
        observe.metric("sim.trace_cache.hits", hits)
    if built > 0:
        observe.metric("sim.trace_cache.misses", built)


# ---------------------------------------------------------------------------
# Fast run loops: uncompressed
# ---------------------------------------------------------------------------
def run_program_fast(sim) -> RunResult:
    """Trace-at-a-time execution of an uncompressed Simulator."""
    cache = program_cache(sim.program)
    state = sim.state
    memory = sim.memory
    max_steps = sim.max_steps
    traces = cache.traces
    build = cache.build_trace
    hooked = sim.fetch_hook is not None or sim.fetch_index_hook is not None
    dispatches = 0
    misses_before = cache.misses
    tagging = _TRACE_TAGGING
    ident = threading.get_ident() if tagging else 0
    pc = sim.pc
    try:
        while not state.halted:
            trace = traces.get(pc)
            if trace is None:
                trace = build(pc)
            if tagging:
                _live_trace[ident] = (
                    "program", pc, trace.fused_lead_pc is not None
                )
            dispatches += 1
            steps = state.steps
            if steps >= max_steps or steps + trace.steps_cost > max_steps:
                # The trace would cross the budget: replay it on the
                # reference loop so the overrun raises at the exact
                # instruction with the reference message.
                sim.pc = pc
                return sim._run_reference()
            sim.pc = pc
            sim.fetches += trace.steps_cost
            if hooked:
                # The replay executes every instruction (fused leads
                # included) one at a time, so the control transfer must
                # be the plain, unfused closure.
                _run_program_trace_hooked(sim, trace, state, memory, cache)
                control = trace.plain_control
            else:
                for thunk in trace.body:
                    thunk(state, memory)
                control = trace.control
            if control is None:
                pc = trace.cont
            else:
                if trace.control_pc is not None:
                    sim.pc = trace.control_pc
                pc = control(state, sim)
        sim.pc = pc
        return RunResult(state, state.steps, sim.fetches)
    finally:
        if tagging:
            _live_trace.pop(ident, None)
        _note_cache_metrics(cache, dispatches, misses_before)


def _run_program_trace_hooked(sim, trace, state, memory, cache):
    """Per-instruction replay of a trace span for hook consumers.

    Fetch hooks observe every architectural instruction, so the replay
    walks the predecoded ``cache.ops`` for the trace's index span
    instead of the (possibly fused) trace body.
    """
    hook = sim.fetch_hook
    index_hook = sim.fetch_index_hook
    address_of = sim.program.address_of
    ops = cache.ops
    index = trace.start
    for _ in range(trace.body_insns):
        sim.pc = index
        if hook is not None:
            hook(address_of(index), 1)
        if index_hook is not None:
            index_hook(index)
        ops[index](state, memory)
        index += 1
    if trace.control_pc is not None:
        sim.pc = trace.control_pc
        if hook is not None:
            hook(address_of(trace.control_pc), 1)
        if index_hook is not None:
            index_hook(trace.control_pc)


def step_program_once(sim, cache=None) -> None:
    """One predecoded instruction — the fast path's single-step.

    Used by the lockstep equivalence harness; architecturally
    equivalent to :meth:`Simulator.step`.
    """
    if cache is None:
        cache = program_cache(sim.program)
    pc = sim.pc
    if not 0 <= pc < len(cache.ops):
        raise SimulationError(
            f"PC index {pc} out of .text", step=sim.state.steps
        )
    if sim.fetch_hook is not None:
        sim.fetch_hook(sim.program.address_of(pc), 1)
    if sim.fetch_index_hook is not None:
        sim.fetch_index_hook(pc)
    sim.fetches += 1
    if cache.kinds[pc]:
        sim.pc = cache.ops[pc](sim.state, sim)
    else:
        cache.ops[pc](sim.state, sim.memory)
        sim.pc = pc + 1


def run_program_profiled(sim, counts) -> RunResult:
    """Fast run that fills per-instruction execution ``counts``.

    Counts whole-trace executions and expands them to instruction
    granularity at the end — exact, because a trace either runs fully
    or aborts the run with an error.
    """
    cache = program_cache(sim.program)
    state = sim.state
    memory = sim.memory
    max_steps = sim.max_steps
    traces = cache.traces
    trace_counts: dict = {}
    dispatches = 0
    misses_before = cache.misses
    pc = sim.pc
    try:
        while not state.halted:
            trace = traces.get(pc)
            if trace is None:
                trace = cache.build_trace(pc)
            dispatches += 1
            steps = state.steps
            if steps >= max_steps or steps + trace.steps_cost > max_steps:
                _flush_profile(trace_counts, counts)
                trace_counts.clear()

                def hook(index):
                    counts[index] += 1

                sim.fetch_index_hook = hook
                sim.pc = pc
                return sim._run_reference()
            trace_counts[trace] = trace_counts.get(trace, 0) + 1
            sim.pc = pc
            sim.fetches += trace.steps_cost
            for thunk in trace.body:
                thunk(state, memory)
            control = trace.control
            if control is None:
                pc = trace.cont
            else:
                if trace.control_pc is not None:
                    sim.pc = trace.control_pc
                pc = control(state, sim)
        sim.pc = pc
        _flush_profile(trace_counts, counts)
        return RunResult(state, state.steps, sim.fetches)
    finally:
        _note_cache_metrics(cache, dispatches, misses_before)


def _flush_profile(trace_counts, counts):
    for trace, executions in trace_counts.items():
        for index in range(trace.start, trace.start + trace.body_insns):
            counts[index] += executions
        if trace.control_pc is not None:
            counts[trace.control_pc] += executions


# ---------------------------------------------------------------------------
# Fast run loops: compressed
# ---------------------------------------------------------------------------
def run_compressed_fast(sim) -> RunResult:
    """Trace-at-a-time execution of a CompressedSimulator."""
    cache = stream_cache_for(sim)
    state = sim.state
    memory = sim.memory
    stats = sim.stats
    max_steps = sim.max_steps
    traces = cache.traces
    build = cache.build_trace
    hook = sim.fetch_hook
    dispatches = 0
    misses_before = cache.misses
    tagging = _TRACE_TAGGING
    ident = threading.get_ident() if tagging else 0
    key = (sim.item_index, sim.micro)
    try:
        while not state.halted:
            trace = traces.get(key)
            if trace is None:
                trace = build(key)
            if tagging:
                _live_trace[ident] = (
                    "stream", key, trace.fused_lead_key is not None
                )
            dispatches += 1
            steps = state.steps
            if steps >= max_steps or steps + trace.steps_cost > max_steps:
                sim.item_index, sim.micro = key
                return sim._run_reference()
            stats.units_fetched += trace.units
            stats.codeword_expansions += trace.expansions
            stats.escaped_instructions += trace.escapes
            stats.instructions_issued += trace.issued
            if hook is None:
                for thunk in trace.body:
                    thunk(state, memory)
                control = trace.control
            else:
                # Per-instruction replay already executed the fused
                # lead; finish with the plain branch closure.
                _run_stream_trace_hooked(sim, trace, state, memory, hook, cache)
                control = trace.plain_control
            if control is None:
                key = trace.cont
            else:
                if trace.control_key is not None:
                    sim.item_index, sim.micro = trace.control_key
                key = control(state, sim)
        sim.item_index, sim.micro = key
        return RunResult(
            state,
            state.steps,
            stats.codeword_expansions + stats.escaped_instructions,
        )
    finally:
        if tagging:
            _live_trace.pop(ident, None)
        _note_cache_metrics(cache, dispatches, misses_before)


def _run_stream_trace_hooked(sim, trace, state, memory, hook, cache):
    """Per-instruction replay of a stream trace for hook consumers.

    Walks the item positions the trace covers (executing the unfused
    per-instruction thunks) and fires the fetch callback at each item
    start, with the simulator position synced first because hook
    consumers (e.g. :func:`repro.machine.timing.time_compressed`) read
    ``simulator._item()``.  The trailing control instruction's fetch
    event fires here; the control transfer itself runs in the caller.
    """
    addresses = cache.addresses
    sizes = cache.sizes
    thunks = cache.item_thunks
    alignment_bits = cache.alignment_bits
    item_index, micro = trace.start
    for _ in range(trace.issued):
        if micro == 0:
            sim.item_index = item_index
            sim.micro = 0
            hook(
                (addresses[item_index] * alignment_bits) // 8,
                sizes[item_index],
            )
        thunk = thunks[item_index][micro]
        if thunk is None:  # control position: event fired, body done
            break
        thunk(state, memory)
        if micro + 1 < len(thunks[item_index]):
            micro += 1
        elif item_index + 1 < cache.count:
            item_index += 1
            micro = 0
        else:  # last data instruction; the fell-off control raises next
            break


def step_program_trace(sim, cache=None) -> None:
    """Execute one whole trace of an uncompressed Simulator.

    Trace-granularity single-step for the lockstep harness: runs the
    trace body — fused thunks included, exactly as :func:`run_program_fast`
    would — plus its control transfer, leaving ``sim.pc`` at the next
    trace boundary.  :func:`step_program_once` cannot exercise fused
    bodies; this can.
    """
    if cache is None:
        cache = program_cache(sim.program)
    pc = sim.pc
    trace = cache.traces.get(pc)
    if trace is None:
        trace = cache.build_trace(pc)
    state = sim.state
    memory = sim.memory
    sim.fetches += trace.steps_cost
    for thunk in trace.body:
        thunk(state, memory)
    control = trace.control
    if control is None:
        sim.pc = trace.cont
    else:
        if trace.control_pc is not None:
            sim.pc = trace.control_pc
        sim.pc = control(state, sim)


def step_stream_trace(sim, cache=None) -> None:
    """Execute one whole trace of a CompressedSimulator (lockstep).

    Same contract as :func:`step_program_trace`; fetch statistics are
    credited at trace entry exactly as :func:`run_compressed_fast`
    does.
    """
    if cache is None:
        cache = stream_cache_for(sim)
    key = (sim.item_index, sim.micro)
    trace = cache.traces.get(key)
    if trace is None:
        trace = cache.build_trace(key)
    state = sim.state
    memory = sim.memory
    stats = sim.stats
    stats.units_fetched += trace.units
    stats.codeword_expansions += trace.expansions
    stats.escaped_instructions += trace.escapes
    stats.instructions_issued += trace.issued
    for thunk in trace.body:
        thunk(state, memory)
    control = trace.control
    if control is None:
        sim.item_index, sim.micro = trace.cont
    else:
        if trace.control_key is not None:
            sim.item_index, sim.micro = trace.control_key
        sim.item_index, sim.micro = control(state, sim)


def step_stream_once(sim, cache=None) -> None:
    """One predecoded compressed instruction (lockstep harness)."""
    if cache is None:
        cache = stream_cache_for(sim)
    item_index, micro = sim.item_index, sim.micro
    size_units = cache.sizes[item_index]
    state = sim.state
    stats = sim.stats
    if micro == 0:
        stats.units_fetched += size_units
        if cache.is_codeword[item_index]:
            stats.codeword_expansions += 1
        else:
            stats.escaped_instructions += 1
        if sim.fetch_hook is not None:
            sim.fetch_hook(
                (cache.addresses[item_index] * cache.alignment_bits) // 8,
                size_units,
            )
    stats.instructions_issued += 1
    thunk = cache.item_thunks[item_index][micro]
    if thunk is None:
        next_key = cache.control_at((item_index, micro))(state, sim)
        sim.item_index, sim.micro = next_key
    else:
        thunk(state, sim.memory)
        next_key = cache._next_key(item_index, micro)
        if next_key is None:
            raise SimulationError(
                "fell off the end of the compressed stream",
                unit_address=cache.addresses[item_index],
                step=state.steps,
            )
        sim.item_index, sim.micro = next_key
