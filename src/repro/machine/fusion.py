"""Superinstruction fusion: fused two-instruction thunks for traces.

The fast path (:mod:`repro.machine.fastpath`) executes straight-line
traces as ``for thunk in trace.body: thunk(state, memory)`` — one
Python call plus one loop iteration per instruction.  Interpreter
literature's *superinstruction* idiom collapses the hottest adjacent
instruction pairs into single handlers; here that means compiling one
fused ``(state, mem)`` closure for an :class:`Instruction` pair, which
halves both the loop iterations and the call dispatches on fused
pairs.

Fusion is **code generation**, not closure composition: each supported
mnemonic has a statement template that inlines the already-extracted
operands (register numbers, immediates, precomputed masks) as
literals, and :func:`fused_thunk` compiles the concatenated statements
with ``exec`` once per distinct instruction pair (memoized
process-wide).  Composing the two existing closures instead would save
the loop iteration but add a call — a net loss.

Semantics are exact by construction:

* each template mirrors its binder in :mod:`repro.machine.fastpath`
  statement for statement (same masking, same CR update shape, same
  memory access order);
* ``state.steps`` accounting is per-instruction whenever either half
  can raise (loads/stores), so an out-of-range access observes the
  identical step count as the reference interpreter; only pure-ALU
  pairs coalesce into one ``state.steps += 2``;
* control instructions, ``divw``/``divwu`` and ``mfspr``/``mtspr``
  (error corners) are never fused.

Which pairs fuse is a *plan*: :data:`DEFAULT_PAIRS` carries the
hottest adjacent data-instruction pairs mined from
``profile_program`` fetch counts over the benchmark suite, and
:func:`plan_from_profile` re-mines a plan for any program so callers
(``repro-verify fastpath --fusion profile``, ``repro-bench``) can use
workload-specific pairs.  The active configuration is process-wide;
translation caches key their traces on :func:`config_key` and rebuild
when it changes.

**Control fusion** is the second, independent axis: ~46% of adjacent
executed pairs suite-wide are a compare followed by a conditional
branch, and PR 8's data-pair fusion deliberately stopped short of
control flow.  A *control pair* fuses the trailing lead instruction
into the trace-terminating control closure itself
(:func:`repro.machine.fastpath._program_control_fused` and the stream
equivalent): the lead executes inside the fused control, the trace
body shrinks by one thunk, and — when the lead is a compare feeding
the branch's own CR field — the branch decision tests the just
computed 4-bit field value locally (:func:`compare_feed`) instead of
re-reading ``state.cr``.  Leads are restricted to
:data:`CONTROL_LEAD_MNEMONICS` (pure ALU/compare templates that cannot
raise), so a fused compare+branch can only fault in its branch half
and error step counts stay trivially exact.  The control plan is
configured/mined separately (:data:`DEFAULT_CONTROL_PAIRS`,
:func:`control_plan_from_profile`) and contributes its own component
to :func:`config_key`.
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache

from repro import bitutils
from repro.machine.executor import CONTROL_MNEMONICS

_U = bitutils.WORD_MASK

# Hottest adjacent data-instruction pairs across the 8-program suite,
# weighted by min(execution count) of the two halves; these twelve
# cover ~70% of all adjacent data-data executions.
DEFAULT_PAIRS: tuple[tuple[str, str], ...] = (
    ("addis", "addi"),
    ("addi", "add"),
    ("rlwinm", "addis"),
    ("add", "lwz"),
    ("addi", "or"),
    ("add", "stw"),
    ("lwz", "cmpw"),
    ("or", "addi"),
    ("add", "or"),
    ("lwz", "add"),
    ("stw", "addi"),
    ("stw", "rlwinm"),
)
DEFAULT_TOP_K = 12

# Compares write one 4-bit CR field; fused into a conditional branch
# they let the decision test the freshly computed field locally.
COMPARE_MNEMONICS = frozenset({"cmpwi", "cmplwi", "cmpw", "cmplw"})

# Conditional branches a control pair may fuse into.  ``bclr``/``bcctr``
# resolve dynamic targets (and ``sc`` halts) — their corners stay on
# the plain control path.
CONTROL_TAIL_MNEMONICS = frozenset({"bc", "bcl"})

# Every compare x conditional-branch combination plus the ``addi + bc``
# loop-tail idiom: together these cover the compare+branch adjacency
# that dominates the suite's control transfers.
DEFAULT_CONTROL_PAIRS: tuple[tuple[str, str], ...] = (
    ("cmpwi", "bc"),
    ("cmplwi", "bc"),
    ("cmpw", "bc"),
    ("cmplw", "bc"),
    ("cmpwi", "bcl"),
    ("cmplwi", "bcl"),
    ("cmpw", "bcl"),
    ("cmplw", "bcl"),
    ("addi", "bc"),
)

_enabled = True
_pairs: frozenset = frozenset(DEFAULT_PAIRS)
_control_enabled = True
_control_pairs: frozenset = frozenset(DEFAULT_CONTROL_PAIRS)


def configure(
    *, enabled=None, pairs=None, control_enabled=None, control_pairs=None
) -> dict:
    """Set the process-wide fusion config; returns the previous one.

    ``pairs``/``control_pairs`` are iterables of ``(mnemonic,
    mnemonic)`` tuples (the data and control plans); ``None`` leaves
    the current plan in place.  ``enabled`` is the master switch —
    disabling it turns control fusion off too; ``control_enabled``
    gates only the control-pair axis.
    """
    global _enabled, _pairs, _control_enabled, _control_pairs
    previous = {
        "enabled": _enabled,
        "pairs": tuple(sorted(_pairs)),
        "control_enabled": _control_enabled,
        "control_pairs": tuple(sorted(_control_pairs)),
    }
    if enabled is not None:
        _enabled = bool(enabled)
    if pairs is not None:
        _pairs = frozenset(tuple(pair) for pair in pairs)
    if control_enabled is not None:
        _control_enabled = bool(control_enabled)
    if control_pairs is not None:
        _control_pairs = frozenset(tuple(pair) for pair in control_pairs)
    return previous


def fusion_enabled() -> bool:
    return _enabled


def control_fusion_enabled() -> bool:
    return _enabled and _control_enabled


def active_pairs() -> frozenset:
    """The pairs traces may fuse right now (empty when disabled)."""
    return _pairs if _enabled else frozenset()


def active_control_pairs() -> frozenset:
    """Lead+branch pairs traces may fuse into control closures."""
    if _enabled and _control_enabled:
        return _control_pairs
    return frozenset()


def config_key() -> tuple:
    """Hashable token for the current config (trace caches key on it).

    Two independent components: the data-pair plan and the control-pair
    plan — a change on either axis invalidates built traces.
    """
    data = ("off",) if not _enabled else ("on", tuple(sorted(_pairs)))
    if _enabled and _control_enabled:
        control = ("on", tuple(sorted(_control_pairs)))
    else:
        control = ("off",)
    return (data, control)


def fusion_stats() -> dict:
    info = fused_thunk.cache_info()
    feeds = compare_feed.cache_info()
    return {
        "enabled": _enabled,
        "pairs": sorted(_pairs),
        "control_enabled": _enabled and _control_enabled,
        "control_pairs": sorted(_control_pairs),
        "compiled": info.currsize,
        "thunk_hits": info.hits,
        "thunk_misses": info.misses,
        "compare_feeds": feeds.currsize,
    }


# ---------------------------------------------------------------------------
# Plan mining
# ---------------------------------------------------------------------------
def mine_adjacent_pairs(program, counts) -> Counter:
    """Adjacent fusable template pairs weighted by execution count.

    ``counts`` is the per-instruction execution vector from
    :func:`repro.machine.simulator.profile_program`.  A pair's weight
    is ``min(count_i, count_i+1)`` — the number of times the two
    instructions can actually have executed back to back.
    """
    pairs: Counter = Counter()
    text = program.text
    for i in range(len(text) - 1):
        a = text[i].instruction.mnemonic
        b = text[i + 1].instruction.mnemonic
        if a not in _TEMPLATES or b not in _TEMPLATES:
            continue
        weight = min(counts[i], counts[i + 1])
        if weight:
            pairs[(a, b)] += weight
    return pairs


def plan_from_profile(program, counts, top_k: int = DEFAULT_TOP_K):
    """The ``top_k`` hottest fusable pairs for one profiled program."""
    mined = mine_adjacent_pairs(program, counts)
    return tuple(pair for pair, _ in mined.most_common(top_k))


def mine_control_pairs(program, counts) -> Counter:
    """Adjacent lead+branch pairs weighted by execution count.

    A pair qualifies when the lead has a non-raising template (pure
    ALU/compare — memory leads are excluded so a fused control can
    only fault in its branch half) and the tail is a fusable
    conditional branch.  Weights follow the same ``min(count_i,
    count_i+1)`` rule as :func:`mine_adjacent_pairs`.
    """
    pairs: Counter = Counter()
    text = program.text
    for i in range(len(text) - 1):
        a = text[i].instruction.mnemonic
        b = text[i + 1].instruction.mnemonic
        if a not in CONTROL_LEAD_MNEMONICS or b not in CONTROL_TAIL_MNEMONICS:
            continue
        weight = min(counts[i], counts[i + 1])
        if weight:
            pairs[(a, b)] += weight
    return pairs


def control_plan_from_profile(program, counts, top_k: int = DEFAULT_TOP_K):
    """The ``top_k`` hottest lead+branch pairs for one profiled program."""
    mined = mine_control_pairs(program, counts)
    return tuple(pair for pair, _ in mined.most_common(top_k))


# ---------------------------------------------------------------------------
# Statement templates.  ``_template(ins, prefix)`` renders one
# instruction to (statements, can_raise); every template mirrors the
# corresponding binder in fastpath.py exactly.  ``prefix`` namespaces
# the temporaries so two templates concatenate safely.
# ---------------------------------------------------------------------------
def _t_addi(ins, p):
    rt, ra, si = ins.operand("rT"), ins.operand("rA"), ins.operand("SI")
    if ra:
        return [f"gpr[{rt}] = (_s32(gpr[{ra}]) + {si}) & {_U}"], False
    return [f"gpr[{rt}] = {si & _U}"], False


def _t_addis(ins, p):
    rt, ra = ins.operand("rT"), ins.operand("rA")
    shifted = ins.operand("SI") << 16
    if ra:
        return [f"gpr[{rt}] = (_s32(gpr[{ra}]) + {shifted}) & {_U}"], False
    return [f"gpr[{rt}] = {shifted & _U}"], False


def _t_mulli(ins, p):
    rt, ra, si = ins.operand("rT"), ins.operand("rA"), ins.operand("SI")
    return [f"gpr[{rt}] = (_s32(gpr[{ra}]) * {si}) & {_U}"], False


def _t_subfic(ins, p):
    rt, ra, si = ins.operand("rT"), ins.operand("rA"), ins.operand("SI")
    return [f"gpr[{rt}] = ({si} - _s32(gpr[{ra}])) & {_U}"], False


def _t_logic_imm(op, shift):
    def template(ins, p):
        ra, rs = ins.operand("rA"), ins.operand("rS")
        imm = ins.operand("UI") << shift
        return [f"gpr[{ra}] = gpr[{rs}] {op} {imm}"], False

    return template


def _t_andi_dot(shift):
    def template(ins, p):
        ra, rs = ins.operand("rA"), ins.operand("rS")
        imm = ins.operand("UI") << shift
        keep = _U ^ (0xF << 28)
        return [
            f"{p}r = gpr[{rs}] & {imm}",
            f"gpr[{ra}] = {p}r",
            f"{p}s = _s32({p}r)",
            f"state.cr = (state.cr & {keep}) | "
            f"((8 if {p}s < 0 else 4 if {p}s > 0 else 2) << 28)",
        ], False

    return template


def _t_cmp(signed, immediate):
    imm_name = "SI" if signed else "UI"
    cast = "_s32(gpr[{r}])" if signed else "gpr[{r}]"

    def template(ins, p):
        crf, ra = ins.operand("crfD"), ins.operand("rA")
        shift = 28 - 4 * crf
        keep = _U ^ (0xF << shift)
        lines = [f"{p}a = " + cast.format(r=ra)]
        if immediate:
            rhs = str(ins.operand(imm_name))
        else:
            rhs = f"{p}b"
            lines.append(f"{p}b = " + cast.format(r=ins.operand("rB")))
        lines.append(
            f"state.cr = (state.cr & {keep}) | "
            f"((8 if {p}a < {rhs} else 4 if {p}a > {rhs} else 2) << {shift})"
        )
        return lines, False

    return template


def _t_add(ins, p):
    rt, ra, rb = ins.operand("rT"), ins.operand("rA"), ins.operand("rB")
    return [f"gpr[{rt}] = (gpr[{ra}] + gpr[{rb}]) & {_U}"], False


def _t_subf(ins, p):
    rt, ra, rb = ins.operand("rT"), ins.operand("rA"), ins.operand("rB")
    return [f"gpr[{rt}] = (gpr[{rb}] - gpr[{ra}]) & {_U}"], False


def _t_neg(ins, p):
    rt, ra = ins.operand("rT"), ins.operand("rA")
    return [f"gpr[{rt}] = -_s32(gpr[{ra}]) & {_U}"], False


def _t_mullw(ins, p):
    rt, ra, rb = ins.operand("rT"), ins.operand("rA"), ins.operand("rB")
    return [f"gpr[{rt}] = (_s32(gpr[{ra}]) * _s32(gpr[{rb}])) & {_U}"], False


def _t_logic_reg(expr):
    def template(ins, p):
        ra, rs, rb = ins.operand("rA"), ins.operand("rS"), ins.operand("rB")
        return [f"gpr[{ra}] = " + expr.format(s=rs, b=rb)], False

    return template


def _t_slw(ins, p):
    ra, rs, rb = ins.operand("rA"), ins.operand("rS"), ins.operand("rB")
    return [
        f"{p}n = gpr[{rb}] & 63",
        f"gpr[{ra}] = 0 if {p}n > 31 else (gpr[{rs}] << {p}n) & {_U}",
    ], False


def _t_srw(ins, p):
    ra, rs, rb = ins.operand("rA"), ins.operand("rS"), ins.operand("rB")
    return [
        f"{p}n = gpr[{rb}] & 63",
        f"gpr[{ra}] = 0 if {p}n > 31 else gpr[{rs}] >> {p}n",
    ], False


def _t_sraw(ins, p):
    ra, rs, rb = ins.operand("rA"), ins.operand("rS"), ins.operand("rB")
    return [
        f"{p}n = gpr[{rb}] & 63",
        f"gpr[{ra}] = (_s32(gpr[{rs}]) >> (31 if {p}n > 31 else {p}n)) & {_U}",
    ], False


def _t_srawi(ins, p):
    ra, rs, sh = ins.operand("rA"), ins.operand("rS"), ins.operand("SH")
    return [f"gpr[{ra}] = (_s32(gpr[{rs}]) >> {sh}) & {_U}"], False


def _t_rlwinm(ins, p):
    ra, rs, sh = ins.operand("rA"), ins.operand("rS"), ins.operand("SH")
    mb, me = ins.operand("MB"), ins.operand("ME")
    if mb <= me:
        mask = (bitutils.mask(me - mb + 1)) << (31 - me)
    else:  # wrapped mask
        mask = _U ^ ((bitutils.mask(mb - me - 1)) << (31 - mb + 1))
    return [f"gpr[{ra}] = _rotl32(gpr[{rs}], {sh}) & {mask}"], False


def _t_exts(width):
    low_mask = (1 << width) - 1

    def template(ins, p):
        ra, rs = ins.operand("rA"), ins.operand("rS")
        return [
            f"gpr[{ra}] = _sign_extend(gpr[{rs}] & {low_mask}, {width}) & {_U}"
        ], False

    return template


def _t_load(size, update=False, signed=False):
    width = 8 * size

    def template(ins, p):
        disp, base = ins.operand("D(rA)")
        rt = ins.operand("rT")
        if base:
            lines = [f"{p}d = (gpr[{base}] + {disp}) & {_U}"]
        else:
            lines = [f"{p}d = {disp & _U}"]
        lines.append(f"{p}v = mem.load({p}d, {size})")
        if signed:
            lines.append(f"{p}v = _sign_extend({p}v, {width}) & {_U}")
        lines.append(f"gpr[{rt}] = {p}v")
        if update:
            lines.append(f"gpr[{base}] = {p}d")
        return lines, True

    return template


def _t_store(size, update=False):
    def template(ins, p):
        disp, base = ins.operand("D(rA)")
        rs = ins.operand("rS")
        if base:
            lines = [f"{p}d = (gpr[{base}] + {disp}) & {_U}"]
        else:
            lines = [f"{p}d = {disp & _U}"]
        lines.append(f"mem.store({p}d, {size}, gpr[{rs}])")
        if update:
            lines.append(f"gpr[{base}] = {p}d")
        return lines, True

    return template


_TEMPLATES = {
    "addi": _t_addi,
    "addis": _t_addis,
    "mulli": _t_mulli,
    "subfic": _t_subfic,
    "ori": _t_logic_imm("|", 0),
    "oris": _t_logic_imm("|", 16),
    "xori": _t_logic_imm("^", 0),
    "xoris": _t_logic_imm("^", 16),
    "andi.": _t_andi_dot(0),
    "andis.": _t_andi_dot(16),
    "cmpwi": _t_cmp(signed=True, immediate=True),
    "cmplwi": _t_cmp(signed=False, immediate=True),
    "cmpw": _t_cmp(signed=True, immediate=False),
    "cmplw": _t_cmp(signed=False, immediate=False),
    "add": _t_add,
    "subf": _t_subf,
    "neg": _t_neg,
    "mullw": _t_mullw,
    "and": _t_logic_reg("gpr[{s}] & gpr[{b}]"),
    "or": _t_logic_reg("gpr[{s}] | gpr[{b}]"),
    "xor": _t_logic_reg("gpr[{s}] ^ gpr[{b}]"),
    "nor": _t_logic_reg(f"~(gpr[{{s}}] | gpr[{{b}}]) & {_U}"),
    "slw": _t_slw,
    "srw": _t_srw,
    "sraw": _t_sraw,
    "srawi": _t_srawi,
    "rlwinm": _t_rlwinm,
    "extsb": _t_exts(8),
    "extsh": _t_exts(16),
    "lwz": _t_load(4),
    "lwzu": _t_load(4, update=True),
    "lbz": _t_load(1),
    "lbzu": _t_load(1, update=True),
    "lhz": _t_load(2),
    "lha": _t_load(2, signed=True),
    "stw": _t_store(4),
    "stwu": _t_store(4, update=True),
    "stb": _t_store(1),
    "stbu": _t_store(1, update=True),
    "sth": _t_store(2),
}

FUSABLE_MNEMONICS = frozenset(_TEMPLATES)

_ENV = {
    "_s32": bitutils.s32,
    "_sign_extend": bitutils.sign_extend,
    "_rotl32": bitutils.rotl32,
}

assert not FUSABLE_MNEMONICS & CONTROL_MNEMONICS

# Leads eligible for control fusion: pure ALU/compare templates only.
# Excluding memory instructions keeps the fused control's lead half
# fault-free, so a trace-granularity error can only originate in the
# branch half — which the fused control raises with the exact same
# step count and error fields as the reference interpreter.
_MEMORY_MNEMONICS = frozenset({
    "lwz", "lwzu", "lbz", "lbzu", "lhz", "lha",
    "stw", "stwu", "stb", "stbu", "sth",
})
CONTROL_LEAD_MNEMONICS = FUSABLE_MNEMONICS - _MEMORY_MNEMONICS

assert COMPARE_MNEMONICS <= CONTROL_LEAD_MNEMONICS
assert not CONTROL_LEAD_MNEMONICS & CONTROL_MNEMONICS
assert CONTROL_TAIL_MNEMONICS <= CONTROL_MNEMONICS


def _compare_feed(signed: bool, immediate: bool):
    """Build the compare-feed compiler for one compare flavour."""

    def build(ins):
        crf = ins.operand("crfD")
        ra = ins.operand("rA")
        shift = 28 - 4 * crf
        clear = ~(0xF << shift)
        if immediate:
            if signed:
                rhs = ins.operand("SI")

                def feed(state):
                    a = bitutils.s32(state.gpr[ra])
                    bits = 8 if a < rhs else 4 if a > rhs else 2
                    state.cr = (state.cr & clear) | (bits << shift)
                    state.steps += 1
                    return bits

            else:
                rhs = ins.operand("UI")

                def feed(state):
                    a = state.gpr[ra]
                    bits = 8 if a < rhs else 4 if a > rhs else 2
                    state.cr = (state.cr & clear) | (bits << shift)
                    state.steps += 1
                    return bits

        else:
            rb = ins.operand("rB")
            if signed:

                def feed(state):
                    gpr = state.gpr
                    a = bitutils.s32(gpr[ra])
                    b = bitutils.s32(gpr[rb])
                    bits = 8 if a < b else 4 if a > b else 2
                    state.cr = (state.cr & clear) | (bits << shift)
                    state.steps += 1
                    return bits

            else:

                def feed(state):
                    gpr = state.gpr
                    a = gpr[ra]
                    b = gpr[rb]
                    bits = 8 if a < b else 4 if a > b else 2
                    state.cr = (state.cr & clear) | (bits << shift)
                    state.steps += 1
                    return bits

        return feed, crf

    return build


_COMPARE_FEEDS = {
    "cmpwi": _compare_feed(signed=True, immediate=True),
    "cmplwi": _compare_feed(signed=False, immediate=True),
    "cmpw": _compare_feed(signed=True, immediate=False),
    "cmplw": _compare_feed(signed=False, immediate=False),
}

assert frozenset(_COMPARE_FEEDS) == COMPARE_MNEMONICS


@lru_cache(maxsize=4096)
def compare_feed(ins):
    """A ``(feed, crf)`` pair for a compare lead, else ``None``.

    ``feed(state)`` executes the compare — CR field write plus one
    step — and returns the 3-bit LT/GT/EQ mask it just wrote, so a
    fused control can test the branch condition on the local value
    without re-reading ``state.cr``.  Non-compare leads return
    ``None``; they fuse via the generic bound-thunk path instead.
    """
    builder = _COMPARE_FEEDS.get(ins.mnemonic)
    if builder is None:
        return None
    return builder(ins)


@lru_cache(maxsize=16384)
def fused_thunk(ins_a, ins_b):
    """Compile one fused ``(state, mem)`` thunk for an instruction pair.

    Returns ``None`` when either half has no template.  Memoized
    process-wide (instructions are frozen/hashable), so a hot pair
    shared across traces and programs compiles once.
    """
    template_a = _TEMPLATES.get(ins_a.mnemonic)
    template_b = _TEMPLATES.get(ins_b.mnemonic)
    if template_a is None or template_b is None:
        return None
    stmts_a, raises_a = template_a(ins_a, "_a")
    stmts_b, raises_b = template_b(ins_b, "_b")
    lines = ["def _fused(state, mem):", "    gpr = state.gpr"]
    if raises_a or raises_b:
        # A memory access can raise mid-pair: the step counter must
        # advance per instruction so the error observes the exact
        # reference step count.
        lines += [f"    {s}" for s in stmts_a]
        lines.append("    state.steps += 1")
        lines += [f"    {s}" for s in stmts_b]
        lines.append("    state.steps += 1")
    else:
        lines += [f"    {s}" for s in stmts_a]
        lines += [f"    {s}" for s in stmts_b]
        lines.append("    state.steps += 2")
    namespace = dict(_ENV)
    exec(compile("\n".join(lines), "<fused-thunk>", "exec"), namespace)
    return namespace["_fused"]


def fused_source(ins_a, ins_b) -> str | None:
    """The generated source for a pair (diagnostics and tests)."""
    template_a = _TEMPLATES.get(ins_a.mnemonic)
    template_b = _TEMPLATES.get(ins_b.mnemonic)
    if template_a is None or template_b is None:
        return None
    stmts_a, raises_a = template_a(ins_a, "_a")
    stmts_b, raises_b = template_b(ins_b, "_b")
    if raises_a or raises_b:
        body = stmts_a + ["state.steps += 1"] + stmts_b + ["state.steps += 1"]
    else:
        body = stmts_a + stmts_b + ["state.steps += 2"]
    return "\n".join(body)


def clear_fused_thunks() -> None:
    """Drop compiled fused thunks (tests, memory pressure)."""
    fused_thunk.cache_clear()
    compare_feed.cache_clear()
