"""Instruction-cache model.

The paper's introduction motivates compression for high-performance
systems too: "Reducing program size is one way to reduce instruction
cache misses" [Chen97b], and the companion TR [Chen97a] studies exactly
that.  This module provides a set-associative I-cache with true-LRU
replacement that plugs into either simulator's ``fetch_hook``, so the
``ext_icache`` experiment can compare miss rates for the same dynamic
instruction stream fetched uncompressed (4 bytes/instruction) and
compressed (sub-instruction codewords, denser lines).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class InstructionCache:
    """Set-associative cache with true LRU replacement.

    ``access(byte_address)`` touches the line containing the address
    and returns True on hit.  Multi-line fetches (an item straddling a
    line boundary) should call :meth:`access_range`.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 32, assoc: int = 2):
        if not (_is_power_of_two(size_bytes) and _is_power_of_two(line_bytes)):
            raise SimulationError("cache and line sizes must be powers of two")
        if size_bytes < line_bytes * assoc:
            raise SimulationError("cache smaller than one set")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.num_sets = size_bytes // (line_bytes * assoc)
        # Each set is an ordered list of tags, most recently used last.
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, byte_address: int) -> bool:
        line = byte_address // self.line_bytes
        set_index = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[set_index]
        self.stats.accesses += 1
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        self.stats.misses += 1
        ways.append(tag)
        if len(ways) > self.assoc:
            ways.pop(0)
        return False

    def access_range(self, byte_address: int, size_bytes: int) -> None:
        """Touch every line the [address, address+size) range covers."""
        first = byte_address // self.line_bytes
        last = (byte_address + max(size_bytes, 1) - 1) // self.line_bytes
        for line in range(first, last + 1):
            self.access(line * self.line_bytes)


def attach_to_simulator(simulator, cache: InstructionCache, alignment_bits: int = 32):
    """Wire ``cache`` into a simulator's fetch hook.

    ``alignment_bits`` is the unit size the simulator reports fetch
    sizes in (32 for the plain simulator's whole instructions, the
    encoding's alignment for the compressed one).
    """

    def hook(byte_address: int, size_units: int) -> None:
        size_bytes = max(1, (size_units * alignment_bits) // 8)
        cache.access_range(byte_address, size_bytes)

    simulator.fetch_hook = hook
    return cache
