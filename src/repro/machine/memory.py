"""Byte-addressable data memory (big-endian, like PowerPC)."""

from __future__ import annotations

from repro.errors import SimulationError
from repro.linker.program import DATA_BASE, STACK_TOP


class Memory:
    """Flat memory covering [DATA_BASE, STACK_TOP).

    .text is not mapped: the programs this toolchain produces never
    load from the text section (jump tables live in .data), which is
    exactly the property that lets the compressed-program processor
    keep only compressed bytes in instruction memory.
    """

    def __init__(self, data_image: bytes | bytearray = b"") -> None:
        self.base = DATA_BASE
        self.limit = STACK_TOP
        self._bytes = bytearray(self.limit - self.base)
        self._bytes[: len(data_image)] = data_image

    def _offset(self, address: int, size: int) -> int:
        if not self.base <= address <= self.limit - size:
            raise SimulationError(
                f"memory access at {address:#x} (size {size}) out of range"
            )
        return address - self.base

    def load(self, address: int, size: int) -> int:
        """Zero-extended load of 1, 2, or 4 bytes."""
        offset = self._offset(address, size)
        return int.from_bytes(self._bytes[offset : offset + size], "big")

    def store(self, address: int, size: int, value: int) -> None:
        offset = self._offset(address, size)
        self._bytes[offset : offset + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "big"
        )

    def snapshot_data(self, length: int) -> bytes:
        """Copy of the first ``length`` bytes of the data segment."""
        return bytes(self._bytes[:length])
