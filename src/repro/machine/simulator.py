"""Functional simulator for uncompressed programs.

The program counter is an instruction index; LR and CTR hold byte
addresses exactly as the real machine would (``bl`` stores the return
address, jump tables supply ``bctr`` targets).

Two interchangeable execution engines back :meth:`Simulator.run`:

* ``implementation="fast"`` (the default) executes through the
  predecoded translation cache of :mod:`repro.machine.fastpath` —
  instructions are bound to operand-extracting closures once and
  grouped into straight-line traces;
* ``implementation="reference"`` is the original instruction-at-a-time
  interpreter (:meth:`Simulator.step`), kept as the equivalence oracle
  for ``repro.verify`` and the benchmark suite.

Both produce byte-identical architectural state; the fast engine falls
back to the reference loop when a trace could cross the step budget so
even error reporting matches exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.linker.program import Program
from repro.machine.executor import CONTROL_MNEMONICS, execute_data
from repro.machine.memory import Memory
from repro.machine.state import MachineState

# LR sentinel meaning "return from the outermost frame" — halts.
HALT_ADDRESS = 0xFFFF_FFFC

SYSCALL_EXIT = 0
SYSCALL_PUT_INT = 1
SYSCALL_PUT_CHAR = 2

IMPLEMENTATIONS = ("fast", "reference")


def branch_decision(state: MachineState, bo: int, bi: int) -> bool:
    """PowerPC BO/BI branch condition, including CTR decrement."""
    if not bo & 0b00100:
        state.ctr = (state.ctr - 1) & 0xFFFFFFFF
    ctr_ok = bool(bo & 0b00100) or ((state.ctr != 0) != bool(bo & 0b00010))
    cond_ok = bool(bo & 0b10000) or (state.cr_bit(bi) == ((bo >> 3) & 1))
    return ctr_ok and cond_ok


def do_syscall(state: MachineState) -> None:
    """Dispatch ``sc`` on r0; see :mod:`repro.compiler.runtime`."""
    code = state.read(0)
    if code == SYSCALL_EXIT:
        state.halted = True
        state.exit_code = state.read_signed(3)
    elif code == SYSCALL_PUT_INT:
        state.output.append(("int", state.read_signed(3)))
    elif code == SYSCALL_PUT_CHAR:
        state.output.append(("char", state.read(3) & 0xFF))
    else:
        raise SimulationError(f"unknown syscall {code}")


@dataclass
class RunResult:
    """Outcome of a program run.

    ``instructions_fetched`` counts fetch transactions against program
    memory — one per instruction uncompressed, one per stream item
    (codeword or escape) compressed — so the two engines' results are
    directly comparable.
    """

    state: MachineState
    steps: int
    instructions_fetched: int

    @property
    def output_text(self) -> str:
        return self.state.output_text()

    @property
    def exit_code(self) -> int:
        return self.state.exit_code


class Simulator:
    """Interprets a linked, uncompressed Program."""

    def __init__(
        self,
        program: Program,
        max_steps: int = 50_000_000,
        *,
        implementation: str = "fast",
    ) -> None:
        if implementation not in IMPLEMENTATIONS:
            raise ValueError(
                f"unknown simulator implementation {implementation!r}"
            )
        self.program = program
        self.max_steps = max_steps
        self.implementation = implementation
        self.state = MachineState()
        self.memory = Memory(program.data_image)
        self.pc = program.entry_index
        self.state.lr = HALT_ADDRESS
        self.fetches = 0  # fetch transactions (one per executed instruction)
        self.fetch_hook = None  # optional callable(byte_address, size_units)
        self.fetch_index_hook = None  # optional callable(instruction_index)

    # ------------------------------------------------------------------
    def _link_address(self) -> int:
        return self.program.address_of(self.pc + 1)

    def _to_index(self, address: int) -> int:
        if address == HALT_ADDRESS:
            self.state.halted = True
            return self.pc
        try:
            return self.program.index_of_address(address)
        except ValueError as exc:
            raise SimulationError(
                str(exc),
                orig_pc=self.program.address_of(self.pc),
                step=self.state.steps,
            ) from exc

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction (reference interpreter)."""
        if not 0 <= self.pc < len(self.program.text):
            raise SimulationError(
                f"PC index {self.pc} out of .text", step=self.state.steps
            )
        if self.fetch_hook is not None:
            self.fetch_hook(self.program.address_of(self.pc), 1)
        if self.fetch_index_hook is not None:
            self.fetch_index_hook(self.pc)
        self.fetches += 1
        ins = self.program.text[self.pc].instruction
        name = ins.mnemonic
        if name not in CONTROL_MNEMONICS:
            execute_data(ins, self.state, self.memory)
            self.pc += 1
            return
        self.state.steps += 1
        if name in ("b", "bl"):
            if name == "bl":
                self.state.lr = self._link_address()
            self.pc += ins.operand("target")
        elif name in ("bc", "bcl"):
            if name == "bcl":
                self.state.lr = self._link_address()
            taken = branch_decision(self.state, ins.operand("BO"), ins.operand("BI"))
            self.pc = self.pc + ins.operand("target") if taken else self.pc + 1
        elif name == "bclr":
            taken = branch_decision(self.state, ins.operand("BO"), ins.operand("BI"))
            self.pc = self._to_index(self.state.lr) if taken else self.pc + 1
        elif name in ("bcctr", "bcctrl"):
            taken = branch_decision(self.state, ins.operand("BO"), ins.operand("BI"))
            if name == "bcctrl":
                self.state.lr = self._link_address()
            self.pc = self._to_index(self.state.ctr) if taken else self.pc + 1
        elif name == "sc":
            do_syscall(self.state)
            self.pc += 1
        else:  # pragma: no cover - CONTROL_MNEMONICS is closed
            raise SimulationError(f"unhandled control instruction {name}")

    # Explicit alias: the reference single-step, regardless of the
    # engine selected for run().
    step_reference = step

    def step_fast(self) -> None:
        """Execute one instruction through the translation cache."""
        from repro.machine import fastpath

        fastpath.step_program_once(self)

    def run(self) -> RunResult:
        """Run until halt or the step budget is exhausted."""
        if self.implementation == "fast":
            from repro.machine import fastpath

            return fastpath.run_program_fast(self)
        return self._run_reference()

    def _run_reference(self) -> RunResult:
        while not self.state.halted:
            if self.state.steps >= self.max_steps:
                raise SimulationError(
                    f"{self.program.name}: exceeded {self.max_steps} steps",
                    orig_pc=self.program.address_of(self.pc),
                    step=self.state.steps,
                )
            self.step()
        return RunResult(self.state, self.state.steps, self.fetches)


def run_program(
    program: Program,
    max_steps: int = 50_000_000,
    *,
    implementation: str = "fast",
) -> RunResult:
    """Convenience: simulate ``program`` from its entry point to halt."""
    return Simulator(
        program, max_steps=max_steps, implementation=implementation
    ).run()


def profile_program(
    program: Program,
    max_steps: int = 50_000_000,
    *,
    implementation: str = "fast",
) -> list[int]:
    """Run ``program`` and return per-instruction execution counts.

    The profile feeds the compressor's ``position_weights`` objective
    (profile-guided dictionary selection for fetch traffic).  The fast
    engine counts whole-trace executions and expands them at the end;
    the reference engine counts through ``fetch_index_hook`` — neither
    pays the old address→index lookup per fetched instruction.
    """
    counts = [0] * len(program.text)
    simulator = Simulator(
        program, max_steps=max_steps, implementation=implementation
    )
    if implementation == "fast":
        from repro.machine import fastpath

        fastpath.run_program_profiled(simulator, counts)
    else:

        def hook(index: int) -> None:
            counts[index] += 1

        simulator.fetch_index_hook = hook
        simulator.run()
    return counts
