"""Architectural state: GPRs, CR, LR, CTR, and the output channel."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import bitutils
from repro.linker.program import STACK_TOP

# CR bit positions within a 4-bit field.
LT, GT, EQ, SO = 0, 1, 2, 3


@dataclass
class MachineState:
    """Registers and program status.

    GPRs hold unsigned 32-bit values; helpers convert signedness.  LR
    and CTR hold whatever the active fetch engine uses as a code
    address (byte addresses uncompressed, alignment units compressed).
    """

    gpr: list[int] = field(default_factory=lambda: [0] * 32)
    cr: int = 0  # 32 bits, field 0 at the MSB end
    lr: int = 0
    ctr: int = 0
    halted: bool = False
    exit_code: int = 0
    output: list[tuple[str, int]] = field(default_factory=list)
    steps: int = 0

    def __post_init__(self) -> None:
        self.gpr[1] = STACK_TOP - 64  # initial stack pointer

    # ------------------------------------------------------------------
    def read(self, register: int) -> int:
        return self.gpr[register]

    def read_signed(self, register: int) -> int:
        return bitutils.s32(self.gpr[register])

    def write(self, register: int, value: int) -> None:
        self.gpr[register] = bitutils.u32(value)

    # ------------------------------------------------------------------
    def set_cr_field(self, crf: int, lt: bool, gt: bool, eq: bool) -> None:
        bits = (lt << 3) | (gt << 2) | (eq << 1)
        shift = 28 - 4 * crf
        self.cr = (self.cr & ~(0xF << shift)) | (bits << shift)

    def cr_bit(self, bit_index: int) -> int:
        """CR bit numbered from the MSB end (PowerPC BI convention)."""
        return (self.cr >> (31 - bit_index)) & 1

    def compare_signed(self, crf: int, a: int, b: int) -> None:
        self.set_cr_field(crf, a < b, a > b, a == b)

    def compare_unsigned(self, crf: int, a: int, b: int) -> None:
        self.set_cr_field(crf, a < b, a > b, a == b)

    # ------------------------------------------------------------------
    def output_text(self) -> str:
        """Render the output channel as text (ints in decimal)."""
        parts = []
        for kind, value in self.output:
            if kind == "int":
                parts.append(str(value))
            else:
                parts.append(chr(value & 0xFF))
        return "".join(parts)
