"""Fetch-path timing model.

The paper's premise is that embedded systems "trade execution speed for
compression" and its future work plans to quantify the performance
cost.  This model estimates execution cycles for both processors under
a parametric front end:

* the instruction bus delivers ``bus_bytes`` per cycle from program
  memory;
* the core issues one instruction per cycle when supplied;
* expanding a codeword costs ``expand_latency`` extra cycles of
  dictionary lookup before its first instruction issues (subsequent
  instructions of the entry stream from the dictionary at one per
  cycle);
* fetch and issue overlap (a two-stage pipeline): per item the cost is
  ``max(fetch_cycles, issue_cycles)``.

On a wide bus the uncompressed machine wins slightly (no expansion
latency); on the narrow buses typical of the paper's embedded targets
the compressed machine fetches fewer bytes and comes out ahead — the
crossover the ``ext_speed`` experiment measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.compressor import CompressedProgram
from repro.linker.program import Program
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.simulator import Simulator


@dataclass(frozen=True)
class TimingParameters:
    bus_bytes: int = 4  # program-memory bytes deliverable per cycle
    expand_latency: int = 1  # dictionary lookup cycles per codeword


@dataclass(frozen=True)
class TimingEstimate:
    name: str
    cycles: float
    instructions: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


def time_uncompressed(
    program: Program, params: TimingParameters, max_steps: int = 50_000_000
) -> TimingEstimate:
    """Cycle estimate for the plain processor.

    Every instruction is one 4-byte fetch overlapped with one issue
    cycle: per-instruction cost is ``max(ceil(4 / bus), 1)``.
    """
    simulator = Simulator(program, max_steps=max_steps)
    result = simulator.run()
    per_instruction = max(math.ceil(4 / params.bus_bytes), 1)
    return TimingEstimate(program.name, per_instruction * result.steps, result.steps)


def time_compressed(
    compressed: CompressedProgram,
    params: TimingParameters,
    max_steps: int = 50_000_000,
) -> TimingEstimate:
    """Cycle estimate for the compressed-program processor.

    Per fetched item: ``max(fetch_cycles, instructions_issued)``, plus
    the dictionary-lookup latency for each codeword expansion.
    """
    simulator = CompressedSimulator(compressed, max_steps=max_steps)
    unit_bits = compressed.encoding.alignment_bits
    items_seen: list[tuple[int, int]] = []  # (size_units, instructions)

    def hook(byte_address: int, size_units: int) -> None:
        item = simulator._item()
        items_seen.append((size_units, len(item.instructions)))

    simulator.fetch_hook = hook
    result = simulator.run()

    cycles = 0.0
    for size_units, instructions in items_seen:
        fetch_bytes = size_units * unit_bits / 8.0
        fetch_cycles = math.ceil(fetch_bytes / params.bus_bytes)
        cycles += max(fetch_cycles, instructions)
    cycles += params.expand_latency * simulator.stats.codeword_expansions
    return TimingEstimate(compressed.program.name, cycles, result.steps)
