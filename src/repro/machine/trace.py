"""Execution tracing: disassembled instruction traces from either machine.

Useful for debugging compiler or compressor changes: capture the first
N executed instructions (with addresses and disassembly) from the plain
and the compressed simulator and diff them — compression must never
change the executed instruction *sequence*, only where it is fetched
from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compressor import CompressedProgram
from repro.isa.disassembler import format_instruction
from repro.linker.program import Program
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.simulator import Simulator


@dataclass(frozen=True)
class TraceEntry:
    """One executed instruction."""

    position: int  # dynamic instruction number
    location: str  # where it was fetched from
    text: str  # disassembly
    word: int

    def __str__(self) -> str:
        return f"{self.position:6d}  {self.location:16s} {self.text}"


def trace_program(program: Program, limit: int = 1000) -> list[TraceEntry]:
    """Execute ``program``, recording the first ``limit`` instructions."""
    simulator = Simulator(program)
    entries: list[TraceEntry] = []
    while not simulator.state.halted and len(entries) < limit:
        index = simulator.pc
        ins = program.text[index].instruction
        entries.append(
            TraceEntry(
                position=len(entries),
                location=f"{program.address_of(index):#010x}",
                text=format_instruction(ins, index, program.text_base),
                word=ins.encode(),
            )
        )
        simulator.step()
    return entries


def trace_compressed(
    compressed: CompressedProgram, limit: int = 1000
) -> list[TraceEntry]:
    """Execute a compressed image, recording the first ``limit``
    instructions with codeword provenance."""
    simulator = CompressedSimulator(compressed)
    entries: list[TraceEntry] = []
    while not simulator.state.halted and len(entries) < limit:
        item = simulator.items[simulator.item_index]
        ins = item.instructions[simulator.micro]
        if item.is_codeword:
            location = f"u{item.address}+{simulator.micro} (cw#{item.rank})"
        else:
            location = f"u{item.address}"
        entries.append(
            TraceEntry(
                position=len(entries),
                location=location,
                text=format_instruction(ins),
                word=ins.encode(),
            )
        )
        simulator.step()
    return entries


def traces_equivalent(
    program: Program, compressed: CompressedProgram, limit: int = 1000
) -> bool:
    """True when both machines execute the same instruction words.

    Branch offsets are rescaled by compression, so relative branches
    are compared by mnemonic only; everything else must match
    bit-for-bit.
    """
    plain = trace_program(program, limit)
    packed = trace_compressed(compressed, limit)
    if len(plain) != len(packed):
        return False
    from repro.isa.instruction import decode

    for a, b in zip(plain, packed):
        ins_a = decode(a.word)
        if ins_a.spec.is_relative_branch:
            if decode(b.word).mnemonic != ins_a.mnemonic:
                return False
        elif a.word != b.word:
            return False
    return True
