"""Stage-timing and metric hooks for pipeline instrumentation.

The library's hot paths (:mod:`repro.compiler.driver`,
:mod:`repro.core.compressor`) wrap their phases in
:func:`stage` blocks.  By default the context manager is a no-op —
no clock is read, no state is kept — so the plain library path pays
nothing and depends on nothing.  A consumer that wants per-stage wall
times (the batch service's :class:`repro.service.metrics.MetricsRegistry`,
a profiler, a test) installs a callback with :func:`set_stage_callback`
and receives ``(stage_name, seconds)`` for every instrumented block.

Stage names currently emitted:

=========================  ================================================
name                       where
=========================  ================================================
``compile``                :func:`repro.compiler.driver.compile_and_link`
``link``                   :func:`repro.compiler.driver.compile_and_link`
``dict_build``             :meth:`repro.core.compressor.Compressor.compress`
``tokenize``               :meth:`repro.core.compressor.Compressor.compress`
``branch_patch``           :meth:`repro.core.compressor.Compressor.compress`
``serialize``              :meth:`repro.core.compressor.Compressor.compress`
``jump_tables``            :meth:`repro.core.compressor.Compressor.compress`
``enumerate_candidates``   :func:`repro.core.candidates.enumerate_candidates`
                           (nested inside ``build_dictionary``)
``build_dictionary``       :func:`repro.core.greedy.build_dictionary`
                           (nested inside ``dict_build``)
``sim.predecode``          :class:`repro.machine.fastpath.ProgramTranslationCache`
                           / :class:`~repro.machine.fastpath.StreamTranslationCache`
                           (one-time thunk predecode of a program or stream)
=========================  ================================================

A second, parallel channel carries *point metrics* — named integer
observations that are counts rather than durations (candidates
enumerated, decode-cache hits).  Hot paths report them through
:func:`metric`; with no callback installed the call is a cheap early
return.  :meth:`MetricsRegistry.install` routes them into counters.

Metric names currently emitted:

=========================  ================================================
name                       where
=========================  ================================================
``candidates.count``       :func:`repro.core.candidates.enumerate_candidates`
``decode_cache.hits``      :meth:`repro.machine.decompressor.StreamDecoder`
``decode_cache.misses``    :meth:`repro.machine.decompressor.StreamDecoder`
``sim.trace_cache.hits``   :mod:`repro.machine.fastpath` run loops (trace
                           dispatches served from the translation cache)
``sim.trace_cache.misses`` :mod:`repro.machine.fastpath` run loops (traces
                           built during the run)
=========================  ================================================
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager

StageCallback = Callable[[str, float], None]
MetricCallback = Callable[[str, int], None]

_callback: StageCallback | None = None
_metric_callback: MetricCallback | None = None


def set_stage_callback(callback: StageCallback | None) -> StageCallback | None:
    """Install ``callback`` (or ``None`` to disable); returns the old one.

    The callback applies process-wide; callers that install one
    temporarily should restore the returned previous value.
    """
    global _callback
    previous = _callback
    _callback = callback
    return previous


def get_stage_callback() -> StageCallback | None:
    return _callback


def set_metric_callback(callback: MetricCallback | None) -> MetricCallback | None:
    """Install a point-metric callback (or ``None``); returns the old one.

    Like :func:`set_stage_callback`, this is process-wide and temporary
    installers should restore the previous value.
    """
    global _metric_callback
    previous = _metric_callback
    _metric_callback = callback
    return previous


def get_metric_callback() -> MetricCallback | None:
    return _metric_callback


def metric(name: str, value: int = 1) -> None:
    """Report one named count observation if a callback is installed."""
    callback = _metric_callback
    if callback is not None:
        callback(name, value)


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time one pipeline stage if a callback is installed; else no-op."""
    callback = _callback
    if callback is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        callback(name, time.perf_counter() - start)
