"""Structured observability: spans, recorders, exporters, run ledger.

The library's hot paths (:mod:`repro.compiler.driver`,
:mod:`repro.core.compressor`, :mod:`repro.machine.fastpath`, the batch
service) wrap their phases in :func:`span`/:func:`stage` blocks.  By
default both are no-ops — no clock is read, no state is kept — so the
plain library path pays nothing and depends on nothing.  A consumer
that wants structure installs a :class:`Recorder` (the batch service's
:class:`repro.service.metrics.MetricsRegistry` does this, as do the
``repro-observe`` / ``repro-bench`` CLIs) and receives complete span
trees and point-metric totals; exporters turn those into Chrome
``trace_event`` JSON, Prometheus text, or JSONL run-ledger records.

The original flat ``(stage, seconds)`` callback API
(:func:`set_stage_callback` / :func:`set_metric_callback`) is kept as a
compatibility shim: :func:`stage` still reports to it with exactly the
historical names below while also emitting a leaf span.

Stage names currently emitted:

=========================  ================================================
name                       where
=========================  ================================================
``compile``                :func:`repro.compiler.driver.compile_and_link`
``link``                   :func:`repro.compiler.driver.compile_and_link`
``dict_build``             :meth:`repro.core.compressor.Compressor.compress`
``tokenize``               :meth:`repro.core.compressor.Compressor.compress`
``branch_patch``           :meth:`repro.core.compressor.Compressor.compress`
``serialize``              :meth:`repro.core.compressor.Compressor.compress`
``jump_tables``            :meth:`repro.core.compressor.Compressor.compress`
``enumerate_candidates``   :func:`repro.core.candidates.enumerate_candidates`
                           (nested inside ``build_dictionary``)
``build_dictionary``       :func:`repro.core.greedy.build_dictionary`
                           (nested inside ``dict_build``)
``sim.predecode``          :class:`repro.machine.fastpath.ProgramTranslationCache`
                           / :class:`~repro.machine.fastpath.StreamTranslationCache`
                           (one-time thunk predecode of a program or stream)
=========================  ================================================

Hierarchical (span-only) names introduced on top of the table —
``compress`` (the whole pipeline, wrapping the five compressor
stages), ``job`` (one service :class:`~repro.service.jobs.CompressionJob`,
with ``label``/``encoding``/``verify``/``cache_hit`` attributes),
``verify`` / ``verify.differential`` / ``verify.campaign`` /
``verify.injection`` (the verification layer), and ``simulate`` (a
traced bounded simulation) — are *not* reported to the legacy
callback; they exist only as spans.

Metric names currently emitted:

=========================  ================================================
name                       where
=========================  ================================================
``candidates.count``       :func:`repro.core.candidates.enumerate_candidates`
``decode_cache.hits``      :meth:`repro.machine.decompressor.StreamDecoder`
``decode_cache.misses``    :meth:`repro.machine.decompressor.StreamDecoder`
``sim.trace_cache.hits``   :mod:`repro.machine.fastpath` run loops (trace
                           dispatches served from the translation cache)
``sim.trace_cache.misses`` :mod:`repro.machine.fastpath` run loops (traces
                           built during the run)
=========================  ================================================

See :doc:`docs/observability` for the span model, exporter formats,
the ledger schema, and ``repro-observe`` CLI examples.
"""

from repro.observe.spans import (
    MetricCallback,
    Span,
    StageCallback,
    current_span,
    get_metric_callback,
    get_stage_callback,
    metric,
    recording_active,
    set_metric_callback,
    set_stage_callback,
    span,
    stage,
)
from repro.observe.recorder import Recorder
from repro.observe.ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    make_record,
    make_run_id,
    read_ledger,
    validate_record,
)
from repro.observe.export import (
    chrome_trace_events,
    prometheus_snapshot,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "LEDGER_SCHEMA",
    "MetricCallback",
    "Recorder",
    "RunLedger",
    "Span",
    "StageCallback",
    "chrome_trace_events",
    "current_span",
    "get_metric_callback",
    "get_stage_callback",
    "make_record",
    "make_run_id",
    "metric",
    "prometheus_snapshot",
    "read_ledger",
    "recording_active",
    "set_metric_callback",
    "set_stage_callback",
    "span",
    "stage",
    "to_chrome_trace",
    "validate_chrome_trace",
    "validate_record",
    "write_chrome_trace",
]
