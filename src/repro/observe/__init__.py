"""Structured observability: spans, recorders, exporters, run ledger.

The library's hot paths (:mod:`repro.compiler.driver`,
:mod:`repro.core.compressor`, :mod:`repro.machine.fastpath`, the batch
service) wrap their phases in :func:`span`/:func:`stage` blocks.  By
default both are no-ops — no clock is read, no state is kept — so the
plain library path pays nothing and depends on nothing.  A consumer
that wants structure installs a :class:`Recorder` (the batch service's
:class:`repro.service.metrics.MetricsRegistry` does this, as do the
``repro-observe`` / ``repro-bench`` CLIs) and receives complete span
trees and point-metric totals; exporters turn those into Chrome
``trace_event`` JSON, Prometheus text, or JSONL run-ledger records.

The original flat ``(stage, seconds)`` callback API
(:func:`set_stage_callback` / :func:`set_metric_callback`) is kept as a
compatibility shim: :func:`stage` still reports to it with exactly the
historical names below while also emitting a leaf span.

Stage names currently emitted:

=========================  ================================================
name                       where
=========================  ================================================
``compile``                :func:`repro.compiler.driver.compile_and_link`
``link``                   :func:`repro.compiler.driver.compile_and_link`
``dict_build``             :meth:`repro.core.compressor.Compressor.compress`
``tokenize``               :meth:`repro.core.compressor.Compressor.compress`
``branch_patch``           :meth:`repro.core.compressor.Compressor.compress`
``serialize``              :meth:`repro.core.compressor.Compressor.compress`
``jump_tables``            :meth:`repro.core.compressor.Compressor.compress`
``enumerate_candidates``   :func:`repro.core.candidates.enumerate_candidates`
                           (nested inside ``build_dictionary``)
``build_dictionary``       :func:`repro.core.greedy.build_dictionary`
                           (nested inside ``dict_build``)
``sim.predecode``          :class:`repro.machine.fastpath.ProgramTranslationCache`
                           / :class:`~repro.machine.fastpath.StreamTranslationCache`
                           (one-time thunk predecode of a program or stream)
=========================  ================================================

Hierarchical (span-only) names introduced on top of the table —
``compress`` (the whole pipeline, wrapping the five compressor
stages), ``job`` (one service :class:`~repro.service.jobs.CompressionJob`,
with ``label``/``encoding``/``verify``/``cache_hit`` attributes),
``verify`` / ``verify.differential`` / ``verify.campaign`` /
``verify.injection`` (the verification layer), and ``simulate`` (a
traced bounded simulation) — are *not* reported to the legacy
callback; they exist only as spans.

Metric names currently emitted:

=========================  ================================================
name                       where
=========================  ================================================
``candidates.count``       :func:`repro.core.candidates.enumerate_candidates`
``decode_cache.hits``      :meth:`repro.machine.decompressor.StreamDecoder`
``decode_cache.misses``    :meth:`repro.machine.decompressor.StreamDecoder`
``sim.trace_cache.hits``   :mod:`repro.machine.fastpath` run loops (trace
                           dispatches served from the translation cache)
``sim.trace_cache.misses`` :mod:`repro.machine.fastpath` run loops (traces
                           built during the run)
``profiler.samples``       :meth:`repro.observe.profiler.SamplingProfiler.stop`
                           (stack samples collected this profiling run)
``blackbox.dumps``         :meth:`repro.observe.blackbox.FlightRecorder.dump`
                           (one per blackbox file written)
=========================  ================================================

The server additionally keeps per-tenant ``server.trace.count.<tenant>``
counters directly in its :class:`~repro.service.metrics.MetricsRegistry`
(one increment per admitted trace); the Prometheus exporter folds them
into a single ``tenant``-labeled family.

Distributed tracing rides on the same span machinery: root spans mint
W3C ``traceparent`` identity (:func:`make_trace_id` /
:func:`format_traceparent`), :func:`remote_context` parents roots
under an identity received over the wire, and
:func:`current_traceparent` renders the header to forward downstream.
The :mod:`~repro.observe.profiler` and :mod:`~repro.observe.blackbox`
modules add the sampling profiler and the crash flight recorder on
top.

See :doc:`docs/observability` for the span model, exporter formats,
the ledger schema, and ``repro-observe`` CLI examples.
"""

from repro.observe.spans import (
    MetricCallback,
    Span,
    StageCallback,
    current_span,
    current_traceparent,
    format_traceparent,
    get_metric_callback,
    get_stage_callback,
    live_spans,
    make_span_id,
    make_trace_id,
    metric,
    parse_traceparent,
    recording_active,
    remote_context,
    set_metric_callback,
    set_stage_callback,
    span,
    stage,
)
from repro.observe.recorder import Recorder
from repro.observe.ledger import (
    LEDGER_SCHEMA,
    SUPPORTED_SCHEMAS,
    RunLedger,
    make_record,
    make_run_id,
    read_ledger,
    validate_record,
)
from repro.observe.export import (
    chrome_trace_events,
    chrome_trace_from_records,
    lint_prometheus,
    prometheus_snapshot,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.observe.profiler import (
    SamplingProfiler,
    profile,
    validate_speedscope,
    write_speedscope,
)
from repro.observe.blackbox import (
    FlightRecorder,
    crash_dump,
    read_dumps,
    validate_blackbox,
)
from repro.observe import blackbox, profiler

__all__ = [
    "FlightRecorder",
    "LEDGER_SCHEMA",
    "MetricCallback",
    "Recorder",
    "RunLedger",
    "SUPPORTED_SCHEMAS",
    "SamplingProfiler",
    "Span",
    "StageCallback",
    "blackbox",
    "chrome_trace_events",
    "chrome_trace_from_records",
    "crash_dump",
    "current_span",
    "current_traceparent",
    "format_traceparent",
    "get_metric_callback",
    "get_stage_callback",
    "lint_prometheus",
    "live_spans",
    "make_record",
    "make_run_id",
    "make_span_id",
    "make_trace_id",
    "metric",
    "parse_traceparent",
    "profile",
    "profiler",
    "prometheus_snapshot",
    "read_dumps",
    "read_ledger",
    "recording_active",
    "remote_context",
    "set_metric_callback",
    "set_stage_callback",
    "span",
    "stage",
    "to_chrome_trace",
    "validate_blackbox",
    "validate_chrome_trace",
    "validate_record",
    "validate_speedscope",
    "write_chrome_trace",
    "write_speedscope",
]
