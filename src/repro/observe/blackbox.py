"""The crash flight recorder: a bounded ring of recent telemetry.

:class:`FlightRecorder` is a recorder (same ``on_span``/``on_metric``
duck type as :class:`repro.observe.recorder.Recorder`) that keeps the
last N span completions, metric deltas, and free-form notes in a
bounded :class:`collections.deque` — appends are lock-free under the
GIL and O(1), so it is safe to leave installed in production paths.

:func:`install` arms the recorder process-wide and chains it into the
crash surfaces: ``sys.excepthook``, ``threading.excepthook``, and
``SIGTERM``.  When any of them fires — or when chaos injection calls
:func:`crash_dump` just before raising a
:class:`~repro.chaos.faults.SimulatedCrash` — the ring is serialized
to ``$REPRO_OBSERVE_DIR/blackbox/`` as one self-describing JSON file,
so a guillotined worker leaves postmortem-grade evidence instead of
silence.  ``repro-observe blackbox`` dumps and merges recordings.

Previously-installed hooks are preserved and chained; :func:`uninstall`
restores them.  With nothing installed, :func:`crash_dump` is a no-op
returning ``None`` — chaos code may call it unconditionally.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from collections import deque
from pathlib import Path

from repro.observe import ledger as _ledger
from repro.observe import spans as _spans

BLACKBOX_DIRNAME = "blackbox"
BLACKBOX_SCHEMA = 1
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """Bounded ring of recent span events, metric deltas, and notes."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        directory: str | Path | None = None,
        process: str | None = None,
    ) -> None:
        self.capacity = capacity
        self._directory = Path(directory) if directory else None
        self.process = process or f"pid-{os.getpid()}"
        self.ring: deque[dict] = deque(maxlen=capacity)
        self.dumps = 0
        self.dropped = 0  # events pushed out of the full ring

    @property
    def directory(self) -> Path:
        """Dump target; tracks ``$REPRO_OBSERVE_DIR`` unless pinned."""
        if self._directory is not None:
            return self._directory
        return _ledger.default_directory() / BLACKBOX_DIRNAME

    # -- recorder duck type ---------------------------------------------
    def _push(self, event: dict) -> None:
        if len(self.ring) == self.capacity:
            self.dropped += 1
        self.ring.append(event)

    def on_span(self, root) -> None:
        self._push({
            "type": "span",
            "unix_time": time.time(),
            "span": root.to_dict(),
        })

    def on_metric(self, name: str, value: int) -> None:
        self._push({
            "type": "metric",
            "unix_time": time.time(),
            "name": name,
            "value": value,
        })

    def note(self, message: str, **data) -> None:
        """Record a free-form breadcrumb (e.g. 'entering stage X')."""
        event = {"type": "note", "unix_time": time.time(),
                 "message": message}
        if data:
            event["data"] = data
        self._push(event)

    def snapshot(self) -> list[dict]:
        return list(self.ring)

    # -- dumping --------------------------------------------------------
    def dump(self, reason: str, error: str | None = None) -> Path:
        """Serialize the ring to one blackbox file; returns its path.

        Never raises on the crash path is the caller's job — this
        method itself only touches the filesystem at the very end, and
        the CLI/validators treat every file independently, so a torn
        write loses one dump, not the recorder.
        """
        directory = self.directory
        directory.mkdir(parents=True, exist_ok=True)
        self.dumps += 1
        document = {
            "schema": BLACKBOX_SCHEMA,
            "reason": reason,
            "error": error,
            "process": self.process,
            "pid": os.getpid(),
            "unix_time": time.time(),
            "capacity": self.capacity,
            "dropped": self.dropped,
            "events": self.snapshot(),
        }
        path = directory / (
            f"blackbox-{os.getpid()}-{time.time_ns()}-{self.dumps}.json"
        )
        path.write_text(json.dumps(document, sort_keys=True) + "\n")
        try:
            _spans.metric("blackbox.dumps", 1)
        except Exception:  # pragma: no cover - crash path must not fail
            pass
        return path


def validate_blackbox(document: dict) -> list[str]:
    """Structural check of one blackbox dump; empty list = valid."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("schema") != BLACKBOX_SCHEMA:
        problems.append(f"unsupported schema {document.get('schema')!r}")
    for key, kinds in (
        ("reason", str), ("process", str), ("pid", int),
        ("unix_time", (int, float)), ("events", list),
    ):
        if not isinstance(document.get(key), kinds):
            problems.append(f"field {key!r} missing or mistyped")
    for index, event in enumerate(document.get("events") or []):
        if not isinstance(event, dict) or event.get("type") not in (
            "span", "metric", "note"
        ):
            problems.append(f"events[{index}] malformed")
    return problems


def read_dumps(directory: str | Path | None = None) -> list[dict]:
    """Load every parseable blackbox dump under ``directory``, oldest
    first; unparseable files are skipped (a torn crash write must not
    hide the good dumps next to it)."""
    directory = (
        Path(directory) if directory
        else _ledger.default_directory() / BLACKBOX_DIRNAME
    )
    dumps: list[dict] = []
    if not directory.is_dir():
        return dumps
    for path in sorted(directory.glob("blackbox-*.json")):
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not validate_blackbox(document):
            document["_path"] = str(path)
            dumps.append(document)
    dumps.sort(key=lambda doc: doc.get("unix_time", 0.0))
    return dumps


# ----------------------------------------------------------------------
# Process-wide installation: one armed recorder, chained crash hooks.
# ----------------------------------------------------------------------
_installed: FlightRecorder | None = None
_previous_excepthook = None
_previous_threading_hook = None
_previous_sigterm = None
_sigterm_armed = False


def installed() -> FlightRecorder | None:
    """The armed recorder, if any."""
    return _installed


def crash_dump(reason: str, error: str | None = None) -> Path | None:
    """Dump the armed recorder (no-op returning None when unarmed)."""
    recorder = _installed
    if recorder is None:
        return None
    return recorder.dump(reason, error)


def _excepthook(exc_type, exc, tb) -> None:
    crash_dump("unhandled_exception", f"{exc_type.__name__}: {exc}")
    (_previous_excepthook or sys.__excepthook__)(exc_type, exc, tb)


def _threading_hook(args) -> None:
    crash_dump(
        "unhandled_thread_exception",
        f"{args.exc_type.__name__}: {args.exc_value} "
        f"in {getattr(args.thread, 'name', '?')}",
    )
    (_previous_threading_hook or threading.__excepthook__)(args)


def _sigterm_handler(signum, frame) -> None:
    crash_dump("sigterm")
    previous = _previous_sigterm
    if callable(previous):
        previous(signum, frame)
    elif previous == signal.SIG_DFL:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        os.kill(os.getpid(), signal.SIGTERM)
    # SIG_IGN / None: swallow, matching the prior disposition.


def install(
    recorder: FlightRecorder | None = None,
    *,
    signals: bool = True,
) -> FlightRecorder:
    """Arm a flight recorder process-wide; returns it.

    Registers it with the span machinery (process-wide recorder) and
    chains ``sys.excepthook`` / ``threading.excepthook`` / ``SIGTERM``
    (``signals=False`` skips the signal handler — e.g. when not on the
    main thread).  Idempotent: installing while armed returns the
    already-armed recorder.
    """
    global _installed, _previous_excepthook, _previous_threading_hook
    global _previous_sigterm, _sigterm_armed
    if _installed is not None:
        return _installed
    recorder = recorder or FlightRecorder()
    _installed = recorder
    _spans._install_ambient(recorder)
    _previous_excepthook = sys.excepthook
    sys.excepthook = _excepthook
    _previous_threading_hook = threading.excepthook
    threading.excepthook = _threading_hook
    _sigterm_armed = False
    if signals:
        try:
            _previous_sigterm = signal.signal(
                signal.SIGTERM, _sigterm_handler
            )
            _sigterm_armed = True
        except ValueError:  # not the main thread
            _previous_sigterm = None
    return recorder


def uninstall() -> None:
    """Disarm the flight recorder and restore every chained hook."""
    global _installed, _previous_excepthook, _previous_threading_hook
    global _previous_sigterm, _sigterm_armed
    if _installed is None:
        return
    _spans._uninstall_ambient(_installed)
    if sys.excepthook is _excepthook:
        sys.excepthook = _previous_excepthook or sys.__excepthook__
    if threading.excepthook is _threading_hook:
        threading.excepthook = (
            _previous_threading_hook or threading.__excepthook__
        )
    if _sigterm_armed:
        try:
            if signal.getsignal(signal.SIGTERM) is _sigterm_handler:
                signal.signal(
                    signal.SIGTERM, _previous_sigterm or signal.SIG_DFL
                )
        except ValueError:  # pragma: no cover - not the main thread
            pass
    _installed = None
    _previous_excepthook = None
    _previous_threading_hook = None
    _previous_sigterm = None
    _sigterm_armed = False
