"""Trace and metrics exporters.

Two wire formats:

* **Chrome ``trace_event`` JSON** — the object form
  (``{"traceEvents": [...]}``) with balanced ``B``/``E`` duration
  events, loadable in Perfetto / ``chrome://tracing``.  Span attributes
  ride along as ``args``.  :func:`validate_chrome_trace` structurally
  checks a document (required keys, balanced begin/end per thread,
  monotonic timestamps) and is what the tests and the CI smoke job run
  against every emitted trace.

* **Prometheus text exposition** — :func:`prometheus_snapshot` renders
  a :class:`~repro.service.metrics.MetricsRegistry` (or its
  :meth:`as_dict` snapshot) as ``# TYPE``-annotated counter / summary /
  histogram families, with timer percentiles as ``quantile`` labels.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

from repro.observe.spans import Span

TRACE_CATEGORY = "repro"


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def chrome_trace_events(
    roots: list[Span], *, pid: int | None = None
) -> list[dict]:
    """Flatten span trees into ``B``/``E`` duration events."""
    pid = os.getpid() if pid is None else pid
    events: list[dict] = []

    def emit(node: Span) -> None:
        end_ns = node.end_ns if node.end_ns is not None else node.start_ns
        begin = {
            "name": node.name,
            "cat": TRACE_CATEGORY,
            "ph": "B",
            "ts": node.start_ns // 1_000,
            "pid": pid,
            "tid": node.thread_id,
        }
        if node.attrs:
            begin["args"] = {
                key: value for key, value in node.attrs.items()
            }
        events.append(begin)
        for child in sorted(node.children, key=lambda c: c.start_ns):
            emit(child)
        events.append({
            "name": node.name,
            "cat": TRACE_CATEGORY,
            "ph": "E",
            "ts": end_ns // 1_000,
            "pid": pid,
            "tid": node.thread_id,
        })

    for root in roots:
        emit(root)
    return events


def to_chrome_trace(
    roots: list[Span],
    *,
    metrics: dict[str, int] | None = None,
    pid: int | None = None,
) -> dict:
    """Build the Chrome trace JSON object for a list of span trees."""
    document: dict = {
        "traceEvents": chrome_trace_events(roots, pid=pid),
        "displayTimeUnit": "ms",
    }
    if metrics:
        document["otherData"] = {
            "metrics": {name: metrics[name] for name in sorted(metrics)}
        }
    return document


def write_chrome_trace(
    path: str | Path,
    roots: list[Span],
    *,
    metrics: dict[str, int] | None = None,
) -> Path:
    """Validate and write a Chrome trace file; returns the path."""
    document = to_chrome_trace(roots, metrics=metrics)
    problems = validate_chrome_trace(document)
    if problems:  # pragma: no cover - exporter invariant
        raise ValueError(
            "refusing to write malformed trace: " + "; ".join(problems)
        )
    path = Path(path)
    path.write_text(json.dumps(document, indent=1) + "\n")
    return path


_REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def validate_chrome_trace(document: dict) -> list[str]:
    """Structural well-formedness check; returns problems (empty = ok).

    Verified per ``(pid, tid)`` lane: every event carries the required
    keys, ``B``/``E`` events balance like parentheses with matching
    names, and timestamps never go backwards.
    """
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    stacks: dict[tuple, list[dict]] = {}
    last_ts: dict[tuple, float] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event #{index} is not an object")
            continue
        missing = [key for key in _REQUIRED_EVENT_KEYS if key not in event]
        if missing:
            problems.append(f"event #{index} missing keys {missing}")
            continue
        lane = (event["pid"], event["tid"])
        if event["ts"] < last_ts.get(lane, float("-inf")):
            problems.append(
                f"event #{index} ({event['name']}): timestamp {event['ts']} "
                f"goes backwards in lane {lane}"
            )
        last_ts[lane] = event["ts"]
        phase = event["ph"]
        if phase == "B":
            stacks.setdefault(lane, []).append(event)
        elif phase == "E":
            stack = stacks.get(lane)
            if not stack:
                problems.append(
                    f"event #{index} ({event['name']}): E without B"
                )
                continue
            begin = stack.pop()
            if begin["name"] != event["name"]:
                problems.append(
                    f"event #{index}: E {event['name']!r} closes "
                    f"B {begin['name']!r}"
                )
        elif phase not in ("i", "C", "M"):
            problems.append(f"event #{index}: unknown phase {phase!r}")
    for lane, stack in stacks.items():
        for begin in stack:
            problems.append(
                f"unclosed B event {begin['name']!r} in lane {lane}"
            )
    return problems


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _fmt(value: float) -> str:
    return f"{value:.9g}"


def prometheus_snapshot(registry) -> str:
    """Render a metrics registry in Prometheus text format.

    ``registry`` is a :class:`~repro.service.metrics.MetricsRegistry`
    or the dict its :meth:`as_dict` produces.  Counters become
    ``counter`` families, timers become ``summary`` families with
    p50/p90/p99 ``quantile`` labels, histograms become cumulative
    ``histogram`` families with ``le`` bucket labels.
    """
    snapshot = registry.as_dict() if hasattr(registry, "as_dict") else registry
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("timers", {})):
        data = snapshot["timers"][name]
        metric = _prom_name(name) + "_seconds"
        lines.append(f"# TYPE {metric} summary")
        for quantile, value in _timer_quantiles(data):
            lines.append(f'{metric}{{quantile="{quantile}"}} {_fmt(value)}')
        lines.append(f"{metric}_sum {_fmt(data['total_seconds'])}")
        lines.append(f"{metric}_count {data['count']}")
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(data["bounds"], data["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        cumulative += data["counts"][-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_fmt(data['sum'])}")
        lines.append(f"{metric}_count {data['total']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _timer_quantiles(data: dict) -> list[tuple[str, float]]:
    samples = sorted(data.get("samples", ()))
    if not samples:
        return []
    quantiles = []
    for quantile in (0.5, 0.9, 0.99):
        rank = max(0, min(len(samples) - 1,
                          round(quantile * len(samples)) - 1))
        quantiles.append((f"{quantile:g}", samples[rank]))
    return quantiles
