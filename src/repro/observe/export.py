"""Trace and metrics exporters.

Two wire formats:

* **Chrome ``trace_event`` JSON** — the object form
  (``{"traceEvents": [...]}``) with balanced ``B``/``E`` duration
  events, loadable in Perfetto / ``chrome://tracing``.  Span attributes
  ride along as ``args``.  :func:`validate_chrome_trace` structurally
  checks a document (required keys, balanced begin/end per thread,
  monotonic timestamps) and is what the tests and the CI smoke job run
  against every emitted trace.  :func:`chrome_trace_from_records`
  stitches several ledger records (one lane per record, typically one
  per process) into one document and draws ``s``/``f`` flow arrows
  between lanes wherever a root span's ``parent_span_id`` names a span
  recorded in another lane — the cross-process view of one trace id.

* **Prometheus text exposition** — :func:`prometheus_snapshot` renders
  a :class:`~repro.service.metrics.MetricsRegistry` (or its
  :meth:`as_dict` snapshot) as ``# HELP``/``# TYPE``-annotated counter
  / summary / histogram families, with timer percentiles as
  ``quantile`` labels and per-tenant ``server.trace.count.*`` counters
  folded into one ``tenant``-labeled family.
  :func:`lint_prometheus` checks a rendered exposition for HELP/TYPE
  pairing and duplicate families.
"""

from __future__ import annotations

import json
import math
import os
import re
from pathlib import Path

from repro.observe.spans import Span

TRACE_CATEGORY = "repro"


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def chrome_trace_events(
    roots: list[Span], *, pid: int | None = None
) -> list[dict]:
    """Flatten span trees into ``B``/``E`` duration events."""
    pid = os.getpid() if pid is None else pid
    events: list[dict] = []

    def emit(node: Span) -> None:
        end_ns = node.end_ns if node.end_ns is not None else node.start_ns
        begin = {
            "name": node.name,
            "cat": TRACE_CATEGORY,
            "ph": "B",
            "ts": node.start_ns // 1_000,
            "pid": pid,
            "tid": node.thread_id,
        }
        args = dict(node.attrs)
        if node.trace_id is not None:
            args["trace_id"] = node.trace_id
        if args:
            begin["args"] = args
        events.append(begin)
        for child in sorted(node.children, key=lambda c: c.start_ns):
            emit(child)
        events.append({
            "name": node.name,
            "cat": TRACE_CATEGORY,
            "ph": "E",
            "ts": end_ns // 1_000,
            "pid": pid,
            "tid": node.thread_id,
        })

    for root in roots:
        emit(root)
    return events


def to_chrome_trace(
    roots: list[Span],
    *,
    metrics: dict[str, int] | None = None,
    pid: int | None = None,
) -> dict:
    """Build the Chrome trace JSON object for a list of span trees."""
    document: dict = {
        "traceEvents": chrome_trace_events(roots, pid=pid),
        "displayTimeUnit": "ms",
    }
    if metrics:
        document["otherData"] = {
            "metrics": {name: metrics[name] for name in sorted(metrics)}
        }
    return document


def write_chrome_trace(
    path: str | Path,
    roots: list[Span],
    *,
    metrics: dict[str, int] | None = None,
) -> Path:
    """Validate and write a Chrome trace file; returns the path."""
    document = to_chrome_trace(roots, metrics=metrics)
    problems = validate_chrome_trace(document)
    if problems:  # pragma: no cover - exporter invariant
        raise ValueError(
            "refusing to write malformed trace: " + "; ".join(problems)
        )
    path = Path(path)
    path.write_text(json.dumps(document, indent=1) + "\n")
    return path


def _shift_tree(node: Span, delta_ns: int) -> None:
    node.start_ns += delta_ns
    if node.end_ns is not None:
        node.end_ns += delta_ns
    for child in node.children:
        _shift_tree(child, delta_ns)


def _flow_id(span_id: str) -> int:
    """A stable 63-bit flow-event id from a 16-hex span id."""
    return int(span_id, 16) & 0x7FFF_FFFF_FFFF_FFFF


def chrome_trace_from_records(records: list[dict]) -> dict:
    """Stitch ledger records into one multi-process Chrome trace.

    Each record becomes its own ``pid`` lane (timestamps are
    per-process monotonic clocks, so every lane is normalized to its
    own zero — the stitch shows structure and causality, not wall-clock
    alignment).  Wherever a root span's ``parent_span_id`` names a span
    recorded in *another* record, an ``s``/``f`` flow arrow is drawn
    from the parent to the child — in Perfetto that is the visible
    hand-off from client submit to server admission to worker
    execution, all sharing one ``trace_id``.
    """
    events: list[dict] = []
    trees: list[tuple[int, list[Span]]] = []
    located: dict[str, tuple[int, int, int]] = {}  # span_id → (pid, tid, ts)
    for pid, record in enumerate(records, start=1):
        roots = [Span.from_dict(doc) for doc in record.get("spans", [])]
        origin = min((root.start_ns for root in roots), default=0)
        for root in roots:
            _shift_tree(root, -origin)
            for node in root.walk():
                if node.span_id:
                    located[node.span_id] = (
                        pid, node.thread_id, node.start_ns // 1_000
                    )
        label = record.get("meta", {}).get("process") or record.get("kind")
        events.append({
            "name": "process_name", "ph": "M", "ts": 0,
            "pid": pid, "tid": 0,
            "args": {"name": f"{label} [{record.get('run_id')}]"},
        })
        trees.append((pid, roots))
    for pid, roots in trees:
        events.extend(chrome_trace_events(roots, pid=pid))
    for pid, roots in trees:
        for root in roots:
            parent = root.parent_span_id and located.get(root.parent_span_id)
            if not parent or parent[0] == pid:
                continue
            flow = _flow_id(root.span_id)
            source_pid, source_tid, source_ts = parent
            events.append({
                "name": "trace", "cat": TRACE_CATEGORY + ".flow",
                "ph": "s", "id": flow, "ts": source_ts,
                "pid": source_pid, "tid": source_tid,
            })
            events.append({
                "name": "trace", "cat": TRACE_CATEGORY + ".flow",
                "ph": "f", "bp": "e", "id": flow,
                "ts": root.start_ns // 1_000,
                "pid": pid, "tid": root.thread_id,
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


_REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def validate_chrome_trace(document: dict) -> list[str]:
    """Structural well-formedness check; returns problems (empty = ok).

    Verified per ``(pid, tid)`` lane: every event carries the required
    keys, ``B``/``E`` events balance like parentheses with matching
    names, and timestamps never go backwards.
    """
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    stacks: dict[tuple, list[dict]] = {}
    last_ts: dict[tuple, float] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event #{index} is not an object")
            continue
        missing = [key for key in _REQUIRED_EVENT_KEYS if key not in event]
        if missing:
            problems.append(f"event #{index} missing keys {missing}")
            continue
        lane = (event["pid"], event["tid"])
        phase = event["ph"]
        # Flow events (s/t/f) bind *across* lanes and are emitted after
        # the duration events they decorate, so they are exempt from
        # the per-lane monotonic-timestamp requirement.
        if phase not in ("s", "t", "f"):
            if event["ts"] < last_ts.get(lane, float("-inf")):
                problems.append(
                    f"event #{index} ({event['name']}): timestamp "
                    f"{event['ts']} goes backwards in lane {lane}"
                )
            last_ts[lane] = event["ts"]
        if phase == "B":
            stacks.setdefault(lane, []).append(event)
        elif phase == "E":
            stack = stacks.get(lane)
            if not stack:
                problems.append(
                    f"event #{index} ({event['name']}): E without B"
                )
                continue
            begin = stack.pop()
            if begin["name"] != event["name"]:
                problems.append(
                    f"event #{index}: E {event['name']!r} closes "
                    f"B {begin['name']!r}"
                )
        elif phase in ("s", "t", "f"):
            if "id" not in event:
                problems.append(
                    f"event #{index} ({event['name']}): flow event "
                    f"without an id"
                )
        elif phase not in ("i", "C", "M"):
            problems.append(f"event #{index}: unknown phase {phase!r}")
    for lane, stack in stacks.items():
        for begin in stack:
            problems.append(
                f"unclosed B event {begin['name']!r} in lane {lane}"
            )
    return problems


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _fmt(value: float) -> str:
    return f"{value:.9g}"


#: Per-tenant counter prefixes folded into one labeled family: a
#: counter named ``<prefix><tenant>`` renders as
#: ``<family>{<label>="<tenant>"}`` instead of one family per tenant.
_LABELED_COUNTER_FAMILIES = (
    ("server.trace.count.", "repro_server_trace_count", "tenant"),
)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def prometheus_snapshot(registry) -> str:
    """Render a metrics registry in Prometheus text format.

    ``registry`` is a :class:`~repro.service.metrics.MetricsRegistry`
    or the dict its :meth:`as_dict` produces.  Counters become
    ``counter`` families, timers become ``summary`` families with
    p50/p90/p99 ``quantile`` labels, histograms become cumulative
    ``histogram`` families with ``le`` bucket labels.  Every family
    carries a ``# HELP``/``# TYPE`` pair, and per-tenant
    ``server.trace.count.*`` counters fold into a single
    ``tenant``-labeled family.
    """
    snapshot = registry.as_dict() if hasattr(registry, "as_dict") else registry
    lines: list[str] = []
    plain: dict[str, int] = {}
    labeled: dict[str, list[tuple[str, str, int]]] = {}
    for name, value in snapshot.get("counters", {}).items():
        for prefix, family, label in _LABELED_COUNTER_FAMILIES:
            if name.startswith(prefix) and len(name) > len(prefix):
                labeled.setdefault(family, []).append(
                    (label, name[len(prefix):], value)
                )
                break
        else:
            plain[name] = value
    for name in sorted(plain):
        metric = _prom_name(name)
        lines.append(f"# HELP {metric} Monotonic counter {name!r}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {plain[name]}")
    for family in sorted(labeled):
        lines.append(f"# HELP {family} Per-tenant monotonic counter.")
        lines.append(f"# TYPE {family} counter")
        for label, key, value in sorted(labeled[family]):
            lines.append(
                f'{family}{{{label}="{_escape_label(key)}"}} {value}'
            )
    for name in sorted(snapshot.get("timers", {})):
        data = snapshot["timers"][name]
        metric = _prom_name(name) + "_seconds"
        lines.append(
            f"# HELP {metric} Timer {name!r} in seconds (reservoir "
            f"quantiles)."
        )
        lines.append(f"# TYPE {metric} summary")
        for quantile, value in _timer_quantiles(data):
            lines.append(f'{metric}{{quantile="{quantile}"}} {_fmt(value)}')
        lines.append(f"{metric}_sum {_fmt(data['total_seconds'])}")
        lines.append(f"{metric}_count {data['count']}")
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        metric = _prom_name(name)
        lines.append(f"# HELP {metric} Histogram {name!r}.")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(data["bounds"], data["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        cumulative += data["counts"][-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_fmt(data['sum'])}")
        lines.append(f"{metric}_count {data['total']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _timer_quantiles(data: dict) -> list[tuple[str, float]]:
    """Nearest-rank (ceil) quantiles over the reservoir — always an
    observed sample, never an extrapolation past the max."""
    samples = sorted(data.get("samples", ()))
    if not samples:
        return []
    quantiles = []
    for quantile in (0.5, 0.9, 0.99):
        rank = math.ceil(quantile * len(samples)) - 1
        rank = max(0, min(len(samples) - 1, rank))
        quantiles.append((f"{quantile:g}", samples[rank]))
    return quantiles


_METADATA_RE = re.compile(r"^# (HELP|TYPE) (\S+)(?: (.*))?$")
_SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? \S+$")
_PROM_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")
_SAMPLE_SUFFIXES = ("_sum", "_count", "_bucket")


def lint_prometheus(text: str) -> list[str]:
    """Exposition-format lint; returns problems (empty = clean).

    Checked: every ``# TYPE`` has a matching ``# HELP`` (and vice
    versa), no family declares HELP or TYPE twice, TYPE values are
    legal, and every sample belongs to a declared family (accounting
    for the ``_sum``/``_count``/``_bucket`` suffixes of summaries and
    histograms).
    """
    problems: list[str] = []
    helps: dict[str, int] = {}
    types: dict[str, str] = {}
    samples: list[tuple[int, str]] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        meta = _METADATA_RE.match(line)
        if meta:
            keyword, family, rest = meta.groups()
            if keyword == "HELP":
                if family in helps:
                    problems.append(f"line {number}: duplicate HELP {family}")
                helps[family] = number
                if not (rest or "").strip():
                    problems.append(f"line {number}: empty HELP {family}")
            else:
                if family in types:
                    problems.append(f"line {number}: duplicate TYPE {family}")
                types[family] = (rest or "").strip()
                if types[family] not in _PROM_TYPES:
                    problems.append(
                        f"line {number}: TYPE {family} is "
                        f"{types[family]!r}, not one of {_PROM_TYPES}"
                    )
            continue
        if line.startswith("#"):
            continue  # plain comment
        sample = _SAMPLE_RE.match(line)
        if sample is None:
            problems.append(f"line {number}: unparseable sample {line!r}")
            continue
        samples.append((number, sample.group(1)))
    for family in types:
        if family not in helps:
            problems.append(f"family {family}: TYPE without HELP")
    for family in helps:
        if family not in types:
            problems.append(f"family {family}: HELP without TYPE")
    for number, name in samples:
        candidates = [name] + [
            name[: -len(suffix)]
            for suffix in _SAMPLE_SUFFIXES
            if name.endswith(suffix)
        ]
        if not any(candidate in types for candidate in candidates):
            problems.append(
                f"line {number}: sample {name} has no # TYPE metadata"
            )
    return problems
