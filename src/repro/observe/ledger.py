"""The JSONL run ledger: one record per pipeline run.

Every traced run — a compress, a simulate, a verify campaign, a bench
measurement — appends **one JSON line** to ``ledger.jsonl`` under a
configurable directory (``REPRO_OBSERVE_DIR`` or ``.repro-observe``).
A record carries the run identity and outcome plus the full span tree
and point-metric totals, so later tooling (``repro-observe report`` /
``diff``) can reconstruct where the time went without rerunning
anything.

Record schema (version 2)::

    {
      "schema": 2,
      "run_id": "4f6a0c2d9b1e",          # unique per record
      "kind": "compress",                 # compress|simulate|verify|bench.*
      "program": "gcc",                   # or null
      "encoding": "nibble",               # or null
      "outcome": "ok",                    # "ok" | "error"
      "error": null,                      # message when outcome == "error"
      "wall_seconds": 0.1234,
      "unix_time": 1754300000.0,
      "trace_id": "32-hex or null",       # distributed trace identity
      "parent_span_id": "16-hex or null", # remote parent, when stitched
      "spans": [ {"name", "start_us", "duration_us", "trace_id?",
                  "span_id?", "parent_span_id?", "attrs?",
                  "children?"} , ... ],
      "metrics": {"candidates.count": 1234, ...},
      "meta": {...}                       # free-form extras
    }

Version 1 records (no trace fields) remain readable: validation
accepts both versions, and readers treat the trace fields as null.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path

from repro.errors import ReproError
from repro.observe.spans import Span

LEDGER_SCHEMA = 2
#: Every schema version :func:`validate_record` accepts on read —
#: version 1 predates trace-context propagation and simply lacks the
#: ``trace_id``/``parent_span_id`` fields.
SUPPORTED_SCHEMAS = (1, 2)
LEDGER_FILENAME = "ledger.jsonl"
DEFAULT_DIR_ENV = "REPRO_OBSERVE_DIR"
DEFAULT_DIR = ".repro-observe"

OUTCOMES = ("ok", "error")


def default_directory() -> Path:
    return Path(os.environ.get(DEFAULT_DIR_ENV, DEFAULT_DIR))


def make_run_id() -> str:
    return uuid.uuid4().hex[:12]


def make_record(
    kind: str,
    *,
    program: str | None = None,
    encoding: str | None = None,
    spans: list[Span] | list[dict] | None = None,
    metrics: dict[str, int] | None = None,
    outcome: str = "ok",
    error: str | None = None,
    wall_seconds: float | None = None,
    run_id: str | None = None,
    meta: dict | None = None,
    trace_id: str | None = None,
    parent_span_id: str | None = None,
) -> dict:
    """Build one schema-2 ledger record (spans may be Span objects).

    ``trace_id``/``parent_span_id`` default to the first root span's
    identity, so a record built from a recorded tree carries its
    distributed trace identity without the caller threading it through.
    """
    serialized = [
        node.to_dict() if isinstance(node, Span) else node
        for node in (spans or [])
    ]
    if wall_seconds is None:
        wall_seconds = sum(
            (node.get("duration_us") or 0) / 1e6 for node in serialized
        )
    if trace_id is None:
        for node in serialized:
            if node.get("trace_id"):
                trace_id = node["trace_id"]
                if parent_span_id is None:
                    parent_span_id = node.get("parent_span_id")
                break
    return {
        "schema": LEDGER_SCHEMA,
        "run_id": run_id or make_run_id(),
        "kind": kind,
        "program": program,
        "encoding": encoding,
        "outcome": outcome,
        "error": error,
        "wall_seconds": wall_seconds,
        "unix_time": time.time(),
        "trace_id": trace_id,
        "parent_span_id": parent_span_id,
        "spans": serialized,
        "metrics": dict(metrics or {}),
        "meta": dict(meta or {}),
    }


def validate_record(record: dict) -> list[str]:
    """Schema check for one ledger record; returns problems (empty = ok)."""
    problems: list[str] = []
    if not isinstance(record, dict):
        return ["record is not an object"]
    if record.get("schema") not in SUPPORTED_SCHEMAS:
        problems.append(f"unsupported schema {record.get('schema')!r}")
    for key, kinds in (
        ("run_id", str), ("kind", str), ("outcome", str),
        ("wall_seconds", (int, float)), ("spans", list), ("metrics", dict),
    ):
        if not isinstance(record.get(key), kinds):
            problems.append(f"field {key!r} missing or mistyped")
    for key in ("trace_id", "parent_span_id"):
        value = record.get(key)
        if value is not None and not isinstance(value, str):
            problems.append(f"field {key!r} mistyped")
    if record.get("outcome") not in OUTCOMES:
        problems.append(f"outcome {record.get('outcome')!r} not in {OUTCOMES}")
    for index, node in enumerate(record.get("spans") or []):
        problems.extend(_validate_span(node, f"spans[{index}]"))
    return problems


def _validate_span(node, where: str) -> list[str]:
    if not isinstance(node, dict):
        return [f"{where} is not an object"]
    problems = []
    if not isinstance(node.get("name"), str):
        problems.append(f"{where}.name missing")
    if not isinstance(node.get("start_us"), int):
        problems.append(f"{where}.start_us missing")
    duration = node.get("duration_us")
    if duration is not None and not isinstance(duration, int):
        problems.append(f"{where}.duration_us mistyped")
    for index, child in enumerate(node.get("children", [])):
        problems.extend(_validate_span(child, f"{where}.children[{index}]"))
    return problems


class RunLedger:
    """Append-only JSONL ledger under one directory."""

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory else default_directory()

    @property
    def path(self) -> Path:
        return self.directory / LEDGER_FILENAME

    def append(self, record: dict) -> dict:
        """Validate and append one record; returns it."""
        problems = validate_record(record)
        if problems:
            raise ReproError(
                "refusing to append malformed ledger record: "
                + "; ".join(problems)
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    def read(self) -> list[dict]:
        return read_ledger(self.path)


def read_ledger(path: str | Path) -> list[dict]:
    """Load every record from a ledger file (strict: bad lines raise)."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(f"{path}:{number}: corrupt ledger line: {exc}")
        problems = validate_record(record)
        if problems:
            raise ReproError(
                f"{path}:{number}: invalid record: " + "; ".join(problems)
            )
        records.append(record)
    return records
