"""A sampling profiler that attributes stacks to live spans.

:class:`SamplingProfiler` runs a daemon thread that wakes at a
configurable rate (default :data:`DEFAULT_HZ`, a prime so the sampler
never phase-locks with periodic work), snapshots every thread's Python
stack via :func:`sys._current_frames`, and aggregates *collapsed*
stacks — ``frame;frame;frame → count`` — the classic flamegraph form.

Two attribution layers ride on each sample:

* **Span identity** — while the profiler runs, the span machinery
  keeps a per-thread map of the innermost open span
  (:func:`repro.observe.spans.live_spans`); a sample landing in a
  thread with an open span is rooted under a synthetic
  ``span:<name>`` frame, so the flamegraph groups by pipeline stage
  and :meth:`SamplingProfiler.attribution` can report what fraction
  of CPU time landed inside *named* work.
* **Trace/fusion identity** — the fastpath run loops publish "which
  (possibly fused) trace is this thread executing"
  (:func:`repro.machine.fastpath.live_trace_markers`); samples landing
  inside a trace body gain a leaf ``trace:<kind>:<start>[:fused]``
  frame, so "which superinstruction is hot" is a queryable fact —
  the measurement the ROADMAP's profile-guided compression item needs.

The profiler is strictly off by default; when off, the only residue in
the rest of the codebase is one falsy global check per span and per
fast run.  :func:`write_speedscope` emits the aggregate as a
speedscope-compatible ``"sampled"`` profile (``repro-observe flame``
is the CLI wrapper) and :func:`validate_speedscope` structurally
checks one before it is written.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path

from repro.observe import spans as _spans

#: Default sampling rate.  A prime, so the sampler drifts relative to
#: any periodic work instead of aliasing against it.
DEFAULT_HZ = 97
#: Frames kept per sample, leaf-ward; deeper stacks are truncated at
#: the root and marked with one ``(truncated)`` frame.
MAX_STACK_DEPTH = 64

SPAN_FRAME_PREFIX = "span:"
TRACE_FRAME_PREFIX = "trace:"
SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def _frame_label(frame) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{code.co_name}"


class SamplingProfiler:
    """Background stack sampler with span and trace attribution.

    Use :meth:`start`/:meth:`stop`, or the :func:`profile` context
    manager.  All aggregate accessors are safe to call while the
    sampler runs; the usual pattern is start → work → stop → export.
    """

    def __init__(
        self, hz: int = DEFAULT_HZ, *, max_depth: int = MAX_STACK_DEPTH
    ) -> None:
        if hz <= 0:
            raise ValueError("hz must be positive")
        self.hz = hz
        self.interval = 1.0 / hz
        self.max_depth = max_depth
        self.samples = 0          # thread-stacks recorded
        self.attributed = 0       # of which landed inside a named span
        self.wakeups = 0          # sampler iterations
        self._stacks: dict[tuple[str, ...], int] = {}
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        from repro.machine import fastpath  # circular-safe at call time

        _spans._enable_live_tracking()
        fastpath.enable_trace_tagging()
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> int:
        """Stop sampling; reports ``profiler.samples`` and returns it."""
        if self._thread is None:
            return self.samples
        from repro.machine import fastpath

        self._stop_event.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        fastpath.disable_trace_tagging()
        _spans._disable_live_tracking()
        if self.samples:
            _spans.metric("profiler.samples", self.samples)
        return self.samples

    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop_event.wait(self.interval):
            self._sample(own)

    def _sample(self, own_ident: int) -> None:
        from repro.machine import fastpath

        frames = sys._current_frames()
        live = _spans.live_spans() if _spans._live_tracking else {}
        markers = fastpath.live_trace_markers()
        with self._lock:
            self.wakeups += 1
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                stack: list[str] = []
                node = frame
                while node is not None:
                    stack.append(_frame_label(node))
                    node = node.f_back
                stack.reverse()  # root first
                if len(stack) > self.max_depth:
                    stack = ["(truncated)"] + stack[-self.max_depth:]
                span = live.get(ident)
                if span is not None:
                    stack.insert(0, SPAN_FRAME_PREFIX + span.name)
                    self.attributed += 1
                marker = markers.get(ident)
                if marker is not None:
                    kind, start, fused = marker
                    label = f"{TRACE_FRAME_PREFIX}{kind}:{start}"
                    if fused:
                        label += ":fused"
                    stack.append(label)
                key = tuple(stack)
                self._stacks[key] = self._stacks.get(key, 0) + 1
                self.samples += 1

    # -- aggregates -----------------------------------------------------
    def collapsed(self) -> list[str]:
        """Collapsed stacks in flamegraph.pl form, sorted hot-first."""
        with self._lock:
            items = sorted(
                self._stacks.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return [f"{';'.join(stack)} {count}" for stack, count in items]

    def attribution(self) -> dict:
        """Sample counts and the named-span attribution fraction."""
        with self._lock:
            samples, attributed = self.samples, self.attributed
        return {
            "samples": samples,
            "attributed": attributed,
            "fraction": (attributed / samples) if samples else 0.0,
        }

    def speedscope(self, name: str = "repro profile") -> dict:
        """The aggregate as a speedscope ``"sampled"`` profile object."""
        with self._lock:
            items = sorted(self._stacks.items())
        frame_index: dict[str, int] = {}
        frames: list[dict] = []
        samples: list[list[int]] = []
        weights: list[int] = []
        for stack, count in items:
            indexed = []
            for label in stack:
                if label not in frame_index:
                    frame_index[label] = len(frames)
                    frames.append({"name": label})
                indexed.append(frame_index[label])
            samples.append(indexed)
            weights.append(count)
        total = sum(weights)
        return {
            "$schema": SPEEDSCOPE_SCHEMA,
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "none",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
            "name": name,
            "exporter": "repro-observe",
        }


@contextmanager
def profile(
    hz: int = DEFAULT_HZ, *, max_depth: int = MAX_STACK_DEPTH
) -> Iterator[SamplingProfiler]:
    """Run a :class:`SamplingProfiler` around a block."""
    profiler = SamplingProfiler(hz, max_depth=max_depth)
    profiler.start()
    try:
        yield profiler
    finally:
        profiler.stop()


def validate_speedscope(document: dict) -> list[str]:
    """Structural check of a speedscope document; empty list = valid."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("$schema") != SPEEDSCOPE_SCHEMA:
        problems.append("missing or wrong $schema")
    frames = (document.get("shared") or {}).get("frames")
    if not isinstance(frames, list):
        return problems + ["shared.frames is not a list"]
    for index, frame in enumerate(frames):
        if not isinstance(frame, dict) or not isinstance(
            frame.get("name"), str
        ):
            problems.append(f"frame #{index} has no name")
    profiles = document.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        return problems + ["profiles missing or empty"]
    for number, profile_doc in enumerate(profiles):
        where = f"profiles[{number}]"
        if not isinstance(profile_doc, dict):
            problems.append(f"{where} is not an object")
            continue
        if profile_doc.get("type") != "sampled":
            problems.append(f"{where}.type is not 'sampled'")
            continue
        samples = profile_doc.get("samples")
        weights = profile_doc.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            problems.append(f"{where}: samples/weights missing")
            continue
        if len(samples) != len(weights):
            problems.append(f"{where}: samples/weights length mismatch")
        for position, sample in enumerate(samples):
            if not all(
                isinstance(index, int) and 0 <= index < len(frames)
                for index in sample
            ):
                problems.append(
                    f"{where}.samples[{position}] indexes out of range"
                )
                break
        total = sum(weight for weight in weights if isinstance(weight, int))
        if profile_doc.get("endValue") != total:
            problems.append(f"{where}.endValue != sum(weights)")
    return problems


def write_speedscope(
    path: str | Path, profiler: SamplingProfiler, *, name: str = "repro profile"
) -> Path:
    """Validate and write a profiler's speedscope export; returns path."""
    document = profiler.speedscope(name)
    problems = validate_speedscope(document)
    if problems:  # pragma: no cover - exporter invariant
        raise ValueError(
            "refusing to write malformed speedscope profile: "
            + "; ".join(problems)
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=1) + "\n")
    return path
