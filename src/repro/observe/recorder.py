"""The :class:`Recorder`: buffered span trees + point metrics per run.

A Recorder is the unit of observation: install one (context-scoped by
default, process-wide on request), run some pipeline work, and read
back the complete span trees and metric totals it witnessed.  Multiple
recorders may be installed concurrently — each receives every run
started while it was in effect, and context-scoped recorders in
different contexts receive disjoint views.  This replaces the fragile
"swap the process-wide callback and restore it on exit" pattern the
batch service used to rely on.

Typical use::

    from repro.observe import Recorder

    with Recorder() as recorder:
        compressor.compress(program)       # spans recorded
    tree = recorder.spans[0]               # the 'compress' root span
    recorder.metrics["candidates.count"]   # point-metric total
"""

from __future__ import annotations

import threading

from repro.observe import spans as _spans
from repro.observe.spans import Span


class Recorder:
    """Buffers completed root spans and point-metric totals.

    Thread-safe: a recorder installed process-wide (or shared across
    copied contexts) may receive spans and metrics from several threads
    at once.
    """

    def __init__(self, name: str | None = None) -> None:
        self.name = name
        self._lock = threading.Lock()
        self.spans: list[Span] = []
        self.metrics: dict[str, int] = {}
        self._context_token = None
        self._ambient = False

    # -- delivery hooks (called by the span machinery) -------------------
    def on_span(self, root: Span) -> None:
        with self._lock:
            self.spans.append(root)

    def on_metric(self, name: str, value: int) -> None:
        with self._lock:
            self.metrics[name] = self.metrics.get(name, 0) + value

    # -- installation ----------------------------------------------------
    def install(self, *, process_wide: bool = False) -> "Recorder":
        """Start observing.  Context-scoped unless ``process_wide``."""
        if self._context_token is not None or self._ambient:
            raise RuntimeError("recorder is already installed")
        if process_wide:
            _spans._install_ambient(self)
            self._ambient = True
        else:
            self._context_token = _spans._install_context(self)
        return self

    def uninstall(self) -> None:
        """Stop observing (idempotent)."""
        if self._ambient:
            _spans._uninstall_ambient(self)
            self._ambient = False
        elif self._context_token is not None:
            _spans._uninstall_context(self._context_token)
            self._context_token = None

    def __enter__(self) -> "Recorder":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # -- readback --------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self.metrics.clear()

    def stage_seconds(self) -> dict[str, float]:
        """Total seconds per span name, summed across all buffered trees.

        One entry per distinct span name — the hierarchical analogue of
        the old flat ``(stage, seconds)`` capture.
        """
        totals: dict[str, float] = {}
        with self._lock:
            roots = list(self.spans)
        for root in roots:
            for node in root.walk():
                totals[node.name] = (
                    totals.get(node.name, 0.0) + node.duration_seconds
                )
        return totals

    def capture(self) -> dict:
        """JSON-ready snapshot: serialized span trees + metric totals."""
        with self._lock:
            return {
                "spans": [root.to_dict() for root in self.spans],
                "metrics": dict(self.metrics),
            }
