"""Rendering and comparison over span trees and ledger records.

Backs ``repro-observe report`` (self/total time trees, top-N metrics)
and ``repro-observe diff`` (stage-time regressions between two
ledgers).  ``diff`` also understands the committed
``BENCH_compression.json`` trajectory: :func:`records_from_bench`
converts each (program, encoding) stage breakdown into synthetic
``bench.compress`` records so a fresh bench ledger can be compared
against the committed baseline with the same code path.
"""

from __future__ import annotations

from repro.observe.spans import Span


def _as_span(node) -> Span:
    return node if isinstance(node, Span) else Span.from_dict(node)


def render_tree(roots, *, min_ms: float = 0.0) -> str:
    """Self/total wall-time tree, one line per span."""
    lines = [f"{'total':>10}  {'self':>10}  span"]
    for root in roots:
        _render_node(_as_span(root), lines, depth=0, min_seconds=min_ms / 1e3)
    return "\n".join(lines)


def _render_node(node: Span, lines: list[str], *, depth: int,
                 min_seconds: float) -> None:
    if node.duration_seconds < min_seconds and depth > 0:
        return
    attrs = ""
    if node.attrs:
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(node.attrs.items())
        )
        attrs = f"  [{rendered}]"
    lines.append(
        f"{node.duration_seconds * 1e3:>8.2f}ms  "
        f"{node.self_seconds * 1e3:>8.2f}ms  "
        f"{'  ' * depth}{node.name}{attrs}"
    )
    for child in sorted(node.children, key=lambda c: c.start_ns):
        _render_node(child, lines, depth=depth + 1, min_seconds=min_seconds)


def aggregate_stage_seconds(roots) -> dict[str, float]:
    """Total seconds per span name across a list of trees."""
    totals: dict[str, float] = {}
    for root in roots:
        for node in _as_span(root).walk():
            totals[node.name] = totals.get(node.name, 0.0) + node.duration_seconds
    return totals


def top_metrics(records: list[dict], count: int = 10) -> list[tuple[str, int]]:
    """Largest point-metric totals across a set of ledger records."""
    totals: dict[str, int] = {}
    for record in records:
        for name, value in record.get("metrics", {}).items():
            totals[name] = totals.get(name, 0) + value
    ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:count]


def render_report(records: list[dict], *, top: int = 10,
                  min_ms: float = 0.0) -> str:
    """Full ``repro-observe report`` body for a set of ledger records."""
    if not records:
        return "(no ledger records)"
    sections = []
    for record in records:
        header = (
            f"run {record['run_id']}  kind={record['kind']}"
            f"  program={record.get('program') or '-'}"
            f"  encoding={record.get('encoding') or '-'}"
            f"  outcome={record['outcome']}"
            f"  wall={record['wall_seconds']:.4f}s"
        )
        body = render_tree(record.get("spans", []), min_ms=min_ms)
        sections.append(header + "\n" + body)
    metrics = top_metrics(records, top)
    if metrics:
        width = max(len(name) for name, _ in metrics)
        lines = [f"top {len(metrics)} metrics:"]
        lines += [
            f"  {name:<{width}}  {value:>12,}" for name, value in metrics
        ]
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


# ----------------------------------------------------------------------
# Ledger diff
# ----------------------------------------------------------------------
def _group_key(record: dict) -> tuple:
    return (record["kind"], record.get("program"), record.get("encoding"))


def latest_by_key(records: list[dict]) -> dict[tuple, dict]:
    """The last record per (kind, program, encoding) — file order wins."""
    grouped: dict[tuple, dict] = {}
    for record in records:
        grouped[_group_key(record)] = record
    return grouped


def diff_ledgers(
    baseline: list[dict],
    current: list[dict],
    *,
    factor: float = 1.5,
    min_seconds: float = 0.002,
) -> tuple[list[str], list[str]]:
    """Compare two record sets; returns (report lines, regressions).

    Runs are matched by (kind, program, encoding), taking the latest
    record on each side.  A stage regresses when its current total
    exceeds ``factor`` × baseline *and* the absolute growth exceeds
    ``min_seconds`` (sub-millisecond stages jitter too much to guard).
    """
    lines: list[str] = []
    regressions: list[str] = []
    base_by_key = latest_by_key(baseline)
    current_by_key = latest_by_key(current)
    for key in sorted(
        current_by_key,
        key=lambda k: tuple(str(part) for part in k),
    ):
        label = "/".join(str(part) for part in key if part is not None)
        base = base_by_key.get(key)
        if base is None:
            lines.append(f"{label}: no baseline run (skipped)")
            continue
        base_stages = aggregate_stage_seconds(base.get("spans", []))
        current_stages = aggregate_stage_seconds(
            current_by_key[key].get("spans", [])
        )
        for stage in sorted(set(base_stages) | set(current_stages)):
            base_s = base_stages.get(stage)
            current_s = current_stages.get(stage)
            if base_s is None or current_s is None:
                lines.append(
                    f"{label}: stage {stage!r} only on "
                    f"{'current' if base_s is None else 'baseline'} side"
                )
                continue
            ratio = current_s / base_s if base_s > 0 else float("inf")
            lines.append(
                f"{label}: {stage:<22s} {base_s * 1e3:>9.2f}ms -> "
                f"{current_s * 1e3:>9.2f}ms ({ratio:>5.2f}x)"
            )
            if (
                current_s > factor * base_s
                and current_s - base_s > min_seconds
            ):
                regressions.append(
                    f"{label}: stage {stage} {current_s * 1e3:.2f}ms > "
                    f"{factor:g}x baseline {base_s * 1e3:.2f}ms"
                )
    return lines, regressions


def records_from_bench(document: dict) -> list[dict]:
    """Synthesize ``bench.compress`` records from a bench trajectory.

    Accepts a full ``BENCH_compression.json`` document ({"runs": ...})
    or a single run document ({"programs": ...}).  Each (program,
    encoding) ``stage_seconds`` map becomes one record whose spans are
    flat leaves, which is exactly what :func:`diff_ledgers` aggregates.
    """
    run_docs = (
        list(document.get("runs", {}).values())
        if "runs" in document
        else [document]
    )
    records = []
    for run_doc in run_docs:
        for program, doc in run_doc.get("programs", {}).items():
            for encoding, enc_doc in doc.get("encodings", {}).items():
                stages = enc_doc.get("stage_seconds")
                if not stages:
                    continue
                cursor = 0
                spans = []
                for name, seconds in stages.items():
                    duration = int(seconds * 1e6)
                    spans.append({
                        "name": name,
                        "start_us": cursor,
                        "duration_us": duration,
                    })
                    cursor += duration
                records.append({
                    "schema": 1,
                    "run_id": f"bench:{program}:{encoding}",
                    "kind": "bench.compress",
                    "program": program,
                    "encoding": encoding,
                    "outcome": "ok",
                    "error": None,
                    "wall_seconds": enc_doc.get(
                        "compress_seconds", cursor / 1e6
                    ),
                    "unix_time": 0.0,
                    "spans": spans,
                    "metrics": {
                        "candidates.count": enc_doc.get("candidates_count", 0)
                    },
                    "meta": {},
                })
    return records
