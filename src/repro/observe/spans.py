"""Hierarchical spans, the recorder registry, and the compat shim.

A :class:`Span` is one timed region with a name, free-form attributes,
and children.  :func:`span` opens one as a context manager; nesting is
tracked through a :mod:`contextvars` variable, so concurrently running
contexts (service pool jobs, ``contextvars.copy_context``-launched
threads) each maintain their own span stack and never interleave.

Delivery model
--------------

Completed spans are delivered to *recorders* (any object with
``on_span(root)`` / ``on_metric(name, value)``, see
:class:`repro.observe.recorder.Recorder`).  Recorders install either

* **context-scoped** (the default) — visible only to code running in
  the installing context and contexts copied from it, which is what
  gives two concurrent recorders disjoint-by-run views; or
* **process-wide** — visible everywhere, for whole-process profiling.

The set of recorders in effect is snapshotted when a *root* span opens
and travels with the tree: the full tree is delivered to exactly those
recorders when the root closes, so a recorder never observes half a
run, and a recorder uninstalled mid-run still receives the runs it
witnessed starting.  Point metrics reported inside a span go to the
owning tree's snapshot; outside any span they go to the recorders in
effect at call time.

With no recorder installed and no legacy callback set, :func:`span`,
:func:`stage`, and :func:`metric` are no-ops — no clock is read, no
object is allocated — so uninstrumented library use stays free.

Trace context
-------------

Every recorded *root* span carries W3C-style trace identity: a 32-hex
``trace_id`` (minted at the root, inherited by children), a 16-hex
``span_id`` per span, and an optional ``parent_span_id``.  A process
that received a ``traceparent`` header enters
:func:`remote_context` before opening spans; roots opened inside it
inherit the remote ``trace_id`` and parent under the remote span, so
one trace id stitches client retries, server admission, executor
stages, and worker-side spans into a single distributed tree.
:func:`current_traceparent` renders the header to forward downstream.

Compatibility shim
------------------

The original flat API — :func:`set_stage_callback` /
:func:`set_metric_callback` receiving ``(name, seconds)`` /
``(name, value)`` pairs — is preserved verbatim: :func:`stage` is now a
leaf-span constructor that *additionally* invokes the legacy stage
callback with the same names and semantics as before.
"""

from __future__ import annotations

import os
import re
import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar

StageCallback = Callable[[str, float], None]
MetricCallback = Callable[[str, int], None]

_EMPTY: tuple = ()

# ----------------------------------------------------------------------
# W3C trace-context identity (the `traceparent` header: version 00,
# 32-hex trace id, 16-hex span id, 2-hex flags).
# ----------------------------------------------------------------------
_TRACEPARENT_RE = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def make_trace_id() -> str:
    """A fresh 32-hex trace id (never all zeros)."""
    value = os.urandom(16).hex()
    return value if value != "0" * 32 else make_trace_id()


def make_span_id() -> str:
    """A fresh 16-hex span id (never all zeros)."""
    value = os.urandom(8).hex()
    return value if value != "0" * 16 else make_span_id()


def format_traceparent(
    trace_id: str, span_id: str, flags: int = 1
) -> str:
    """Render a ``traceparent`` header value (version 00)."""
    return f"00-{trace_id}-{span_id}-{flags:02x}"


def parse_traceparent(text: str | None) -> tuple[str, str, int] | None:
    """Parse a ``traceparent`` header into ``(trace_id, span_id,
    flags)``; None for anything malformed (never raises — a bad header
    from the wire must not fail a request)."""
    if not isinstance(text, str):
        return None
    match = _TRACEPARENT_RE.match(text.strip().lower())
    if match is None:
        return None
    trace_id, span_id, flags = match.groups()
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return trace_id, span_id, int(flags, 16)


class Span:
    """One timed, attributed region of a trace tree."""

    __slots__ = (
        "name", "attrs", "start_ns", "end_ns", "children",
        "thread_id", "_recorders",
        "trace_id", "span_id", "parent_span_id",
    )

    def __init__(self, name: str, attrs: dict, start_ns: int) -> None:
        self.name = name
        self.attrs = attrs
        self.start_ns = start_ns
        self.end_ns: int | None = None
        self.children: list[Span] = []
        self.thread_id = threading.get_ident()
        self._recorders: tuple = _EMPTY
        #: W3C trace identity: minted at the root (or inherited from a
        #: remote context), shared by every span of one tree.  None on
        #: hand-built spans that never went through :func:`span`.
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_span_id: str | None = None

    # -- durations ------------------------------------------------------
    @property
    def duration_seconds(self) -> float:
        """Total wall time, children included (0.0 while still open)."""
        if self.end_ns is None:
            return 0.0
        return (self.end_ns - self.start_ns) / 1e9

    @property
    def self_seconds(self) -> float:
        """Wall time not attributed to any child span."""
        return max(
            0.0,
            self.duration_seconds
            - sum(child.duration_seconds for child in self.children),
        )

    # -- traversal / serialization --------------------------------------
    def walk(self) -> Iterator["Span"]:
        """Yield this span then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """JSON-ready form (microsecond precision, recursive)."""
        doc: dict = {
            "name": self.name,
            "start_us": self.start_ns // 1_000,
            "duration_us": (
                (self.end_ns - self.start_ns) // 1_000
                if self.end_ns is not None
                else None
            ),
        }
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
            doc["span_id"] = self.span_id
            if self.parent_span_id is not None:
                doc["parent_span_id"] = self.parent_span_id
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.children:
            doc["children"] = [child.to_dict() for child in self.children]
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        span = cls(doc["name"], dict(doc.get("attrs", {})),
                   doc["start_us"] * 1_000)
        duration = doc.get("duration_us")
        if duration is not None:
            span.end_ns = span.start_ns + duration * 1_000
        span.trace_id = doc.get("trace_id")
        span.span_id = doc.get("span_id")
        span.parent_span_id = doc.get("parent_span_id")
        span.children = [
            cls.from_dict(child) for child in doc.get("children", [])
        ]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_seconds * 1e3:.3f}ms, "
            f"{len(self.children)} children)"
        )


# ----------------------------------------------------------------------
# Recorder registry: a context-scoped tuple plus a process-wide tuple,
# both copy-on-write so the hot-path read is a plain load.
# ----------------------------------------------------------------------
_current_span: ContextVar[Span | None] = ContextVar(
    "repro_observe_span", default=None
)
#: (trace_id, span_id, flags) from a ``traceparent`` received over the
#: wire; root spans opened inside :func:`remote_context` parent here.
_remote_parent: ContextVar[tuple | None] = ContextVar(
    "repro_observe_remote_parent", default=None
)
_context_recorders: ContextVar[tuple] = ContextVar(
    "repro_observe_recorders", default=_EMPTY
)
_ambient_lock = threading.Lock()
_ambient_recorders: tuple = _EMPTY

# Legacy flat callbacks (compat shim).
_callback: StageCallback | None = None
_metric_callback: MetricCallback | None = None


def _effective_recorders() -> tuple:
    return _ambient_recorders + _context_recorders.get()


def recording_active() -> bool:
    """True when at least one recorder would observe a new root span."""
    return bool(_ambient_recorders) or bool(_context_recorders.get())


def _install_context(recorder) -> object:
    return _context_recorders.set(_context_recorders.get() + (recorder,))


def _uninstall_context(token) -> None:
    _context_recorders.reset(token)


def _install_ambient(recorder) -> None:
    global _ambient_recorders
    with _ambient_lock:
        _ambient_recorders = _ambient_recorders + (recorder,)


def _uninstall_ambient(recorder) -> None:
    global _ambient_recorders
    with _ambient_lock:
        _ambient_recorders = tuple(
            existing for existing in _ambient_recorders
            if existing is not recorder
        )


def current_span() -> Span | None:
    """The innermost open span in this context (None outside any)."""
    return _current_span.get()


@contextmanager
def remote_context(traceparent: str | None) -> Iterator[None]:
    """Parent root spans under a remote ``traceparent`` for this block.

    Malformed or missing headers are silently ignored (the block runs
    untraced-by-remote, roots mint their own trace ids) — a bad header
    must never fail the work it arrived with.
    """
    parsed = parse_traceparent(traceparent)
    if parsed is None:
        yield
        return
    token = _remote_parent.set(parsed)
    try:
        yield
    finally:
        _remote_parent.reset(token)


def current_traceparent() -> str | None:
    """The ``traceparent`` to forward downstream from this context:
    the innermost open span's identity, else the remote parent, else
    None."""
    current = _current_span.get()
    if current is not None and current.trace_id is not None:
        return format_traceparent(current.trace_id, current.span_id)
    remote = _remote_parent.get()
    if remote is not None:
        return format_traceparent(remote[0], remote[1], remote[2])
    return None


# ----------------------------------------------------------------------
# Live-span tracking: a per-thread map of the innermost open span,
# maintained only while a consumer (the sampling profiler, the flight
# recorder) has switched it on — the default span path never touches
# it beyond one falsy global check.
# ----------------------------------------------------------------------
_live_tracking = 0
_live_spans: dict[int, Span] = {}


def _enable_live_tracking() -> None:
    global _live_tracking
    with _ambient_lock:
        _live_tracking += 1


def _disable_live_tracking() -> None:
    global _live_tracking
    with _ambient_lock:
        _live_tracking = max(0, _live_tracking - 1)
        if not _live_tracking:
            _live_spans.clear()


def live_spans() -> dict[int, Span]:
    """Snapshot of thread id → innermost open span (empty unless a
    live-tracking consumer is installed)."""
    return dict(_live_spans)


# ----------------------------------------------------------------------
# The instrumentation API.
# ----------------------------------------------------------------------
@contextmanager
def span(name: str, /, **attrs) -> Iterator[Span | None]:
    """Open one span; yields the :class:`Span` (or None when inactive).

    A root span (no enclosing span) snapshots the recorders in effect;
    the finished tree is delivered to that snapshot when it closes.
    Child spans attach to their parent and inherit its snapshot.  With
    no recorder in effect a root ``span`` is a complete no-op.
    """
    parent = _current_span.get()
    if parent is None:
        recorders = _effective_recorders()
        if not recorders:
            yield None
            return
    else:
        recorders = parent._recorders
    current = Span(name, attrs, time.perf_counter_ns())
    current._recorders = recorders
    if parent is not None:
        current.trace_id = parent.trace_id
        current.parent_span_id = parent.span_id
    else:
        remote = _remote_parent.get()
        if remote is not None:
            current.trace_id, current.parent_span_id = remote[0], remote[1]
        else:
            current.trace_id = make_trace_id()
    current.span_id = make_span_id()
    token = _current_span.set(current)
    if _live_tracking:
        _live_spans[current.thread_id] = current
    try:
        yield current
    finally:
        current.end_ns = time.perf_counter_ns()
        _current_span.reset(token)
        if _live_tracking:
            if parent is not None and parent.thread_id == current.thread_id:
                _live_spans[current.thread_id] = parent
            else:
                _live_spans.pop(current.thread_id, None)
        if parent is not None:
            parent.children.append(current)
        else:
            for recorder in recorders:
                recorder.on_span(current)


@contextmanager
def stage(name: str, /, **attrs) -> Iterator[None]:
    """Time one pipeline stage (compat shim; emits a leaf span).

    Exactly the historical contract: with a legacy stage callback
    installed it receives ``(name, seconds)``; with recorders in effect
    the same region is additionally recorded as a span.  With neither,
    this is a no-op.
    """
    callback = _callback
    if callback is None:
        if _current_span.get() is None and not _effective_recorders():
            yield
            return
        with span(name, **attrs):
            yield
        return
    start = time.perf_counter()
    try:
        with span(name, **attrs):
            yield
    finally:
        callback(name, time.perf_counter() - start)


def metric(name: str, value: int = 1) -> None:
    """Report one named count observation to the callback and recorders."""
    callback = _metric_callback
    if callback is not None:
        callback(name, value)
    current = _current_span.get()
    recorders = (
        current._recorders if current is not None else _effective_recorders()
    )
    for recorder in recorders:
        recorder.on_metric(name, value)


# ----------------------------------------------------------------------
# Legacy flat-callback API (kept verbatim for external installers).
# ----------------------------------------------------------------------
def set_stage_callback(callback: StageCallback | None) -> StageCallback | None:
    """Install ``callback`` (or ``None`` to disable); returns the old one.

    The callback applies process-wide; callers that install one
    temporarily should restore the returned previous value.  New code
    should install a :class:`~repro.observe.recorder.Recorder` instead —
    recorders compose, callbacks overwrite each other.
    """
    global _callback
    previous = _callback
    _callback = callback
    return previous


def get_stage_callback() -> StageCallback | None:
    return _callback


def set_metric_callback(callback: MetricCallback | None) -> MetricCallback | None:
    """Install a point-metric callback (or ``None``); returns the old one.

    Like :func:`set_stage_callback`, this is process-wide and temporary
    installers should restore the previous value.
    """
    global _metric_callback
    previous = _metric_callback
    _metric_callback = callback
    return previous


def get_metric_callback() -> MetricCallback | None:
    return _metric_callback
