"""Performance measurement for the compression pipeline.

:mod:`repro.perf.bench` drives timed sweeps over the workload suite —
dictionary construction (fast vs reference), full compression with
per-stage breakdowns from the :mod:`repro.observe` hooks, stream
decoding (cold vs decode-cache warm), and bounded simulation — and
emits the machine-readable ``BENCH_compression.json`` trajectory file
consumed by the CI regression guard.  The ``repro-bench`` CLI
(:mod:`repro.tools.bench_cli`) is the front end.
"""

from repro.perf.bench import (
    BENCH_FILENAME,
    SCHEMA,
    check_regression,
    load_baseline,
    merge_baseline,
    run_bench,
    run_key,
)

__all__ = [
    "BENCH_FILENAME",
    "SCHEMA",
    "check_regression",
    "load_baseline",
    "merge_baseline",
    "run_bench",
    "run_key",
]
