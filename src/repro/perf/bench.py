"""The ``repro-bench`` measurement harness.

One *run* times, per (program, encoding):

* ``dict_fast`` / ``dict_reference`` — end-to-end dictionary
  construction (candidate enumeration + greedy selection), best of
  ``repeats``, for the production fast path and for
  :func:`~repro.core.greedy.greedy_reference`.  The fast path is also
  timed *cold* (per-program candidate store evicted first), since the
  store is shared across an encoding sweep in any real workload;
* ``compress`` — the full pipeline through
  :class:`~repro.core.compressor.Compressor`, with the per-stage wall
  times captured from the :mod:`repro.observe` stage hooks;
* ``decode`` — walking the serialized stream into fetch items, cold
  (decode cache cleared) and warm (served from the cache);
* ``simulate`` — a bounded execution of the compressed image,
  reporting instructions issued per second.

Every fast-path measurement is gated on **byte-identical output**: the
greedy results and the serialized images of the fast and reference
pipelines are compared and the verdict recorded in the JSON
(``identical_greedy`` / ``identical_image``).

Results nest under a :func:`run_key` derived from the configuration
(programs, scale, encodings), so one committed ``BENCH_compression.json``
holds both the full-suite trajectory and the CI smoke configuration;
:func:`check_regression` compares same-key runs and powers the CI
``bench-smoke`` guard.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

from repro.core.compressor import Compressor
from repro.core.encodings import Encoding, make_encoding
from repro.core.greedy import build_dictionary, greedy_reference
from repro.errors import ReproError, SimulationError
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.decompressor import (
    StreamDecoder,
    clear_decode_cache,
    decode_cache_stats,
)
from repro.service.metrics import MetricsRegistry
from repro.service.pool import run_batch
from repro.workloads import build_benchmark

BENCH_FILENAME = "BENCH_compression.json"
SCHEMA = 1

DEFAULT_ENCODINGS = ("nibble", "baseline", "onebyte")


def run_key(programs: list[str], scale: float, encodings: list[str]) -> str:
    """Stable key for one benchmark configuration."""
    return (
        f"programs={','.join(sorted(programs))};scale={scale:g};"
        f"encodings={','.join(encodings)}"
    )


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _same_greedy(a, b) -> bool:
    return (
        a.dictionary.entries == b.dictionary.entries
        and a.replacements == b.replacements
        and a.step_savings_bits == b.step_savings_bits
    )


def _evict_program_caches(program) -> None:
    """Drop the per-program candidate store and block maps (cold runs)."""
    program._analysis_cache.clear()


def _bench_encoding(
    program,
    encoding: Encoding,
    *,
    repeats: int,
    simulate: bool,
    simulate_steps: int,
) -> dict:
    result: dict = {}

    # Dictionary construction: fast (cold + warm) vs reference.
    _evict_program_caches(program)
    result["dict_fast_cold_seconds"] = _best(
        lambda: build_dictionary(program, encoding), 1
    )
    result["dict_fast_seconds"] = _best(
        lambda: build_dictionary(program, encoding), repeats
    )
    result["dict_reference_seconds"] = _best(
        lambda: greedy_reference(program, encoding), repeats
    )
    result["dict_speedup"] = (
        result["dict_reference_seconds"] / result["dict_fast_seconds"]
        if result["dict_fast_seconds"] > 0
        else float("inf")
    )
    fast_greedy = build_dictionary(program, encoding)
    ref_greedy = greedy_reference(program, encoding)
    result["identical_greedy"] = _same_greedy(fast_greedy, ref_greedy)

    # Full pipeline, with the observe stage breakdown from one cold run
    # (caches evicted so candidate enumeration shows up in the stage
    # timers) and the headline wall time as best-of-repeats.
    _evict_program_caches(program)
    compressor = Compressor(encoding=encoding)
    registry = MetricsRegistry()
    with registry.installed():
        start = time.perf_counter()
        compressed = compressor.compress(program)
        single_wall = time.perf_counter() - start
    result["compress_seconds"] = min(
        single_wall,
        _best(lambda: compressor.compress(program), max(repeats - 1, 0))
        if repeats > 1
        else single_wall,
    )
    snapshot = registry.as_dict()
    result["stage_seconds"] = {
        name.removeprefix("stage."): data["total_seconds"]
        for name, data in snapshot["timers"].items()
    }
    result["candidates_count"] = snapshot["counters"].get("candidates.count", 0)

    # Byte-identical image gate for the fast greedy path.
    reference_image = Compressor(
        encoding=encoding, greedy_implementation="reference"
    ).compress(program)
    result["identical_image"] = (
        compressed.stream == reference_image.stream
        and compressed.dictionary.entries == reference_image.dictionary.entries
        and bytes(compressed.data_image) == bytes(reference_image.data_image)
    )
    result["original_bytes"] = compressed.original_bytes
    result["compressed_bytes"] = compressed.compressed_bytes
    result["compression_ratio"] = compressed.compression_ratio

    # Stream decode: cold, then served by the decode cache.
    total_units = compressed.total_units()

    def decode_once():
        StreamDecoder(
            compressed.stream, compressed.dictionary, encoding, total_units
        ).decode_all_indexed()

    clear_decode_cache()
    result["decode_cold_seconds"] = _best(decode_once, 1)
    result["decode_warm_seconds"] = _best(decode_once, repeats)
    result["decode_cache"] = decode_cache_stats()

    if simulate:
        simulator = CompressedSimulator(compressed, max_steps=simulate_steps)
        start = time.perf_counter()
        try:
            simulator.run()
        except SimulationError:
            pass  # hit the step bound — expected for a timing probe
        seconds = time.perf_counter() - start
        issued = simulator.stats.instructions_issued
        result["simulate_seconds"] = seconds
        result["simulate_instructions"] = issued
        result["simulate_insn_per_second"] = issued / seconds if seconds else 0.0
    return result


def _bench_workers(
    programs: list[str], scale: float, encodings: list[str], workers: int
) -> dict:
    """Parallel sweep over the same configuration via the service pool."""
    from repro.service.jobs import ENCODING_NAMES, CompressionJob

    jobs = [
        CompressionJob(benchmark=name, scale=scale, encoding=enc, verify="none")
        for name in programs
        for enc in encodings
        if enc in ENCODING_NAMES
    ]
    registry = MetricsRegistry()
    start = time.perf_counter()
    results = run_batch(jobs, processes=workers, metrics=registry)
    wall = time.perf_counter() - start
    snapshot = registry.as_dict()
    return {
        "workers": workers,
        "jobs": len(jobs),
        "failed": sum(1 for r in results if not r.ok),
        "wall_seconds": wall,
        "job_wall_seconds": [round(r.wall_seconds, 6) for r in results],
        "stage_seconds": {
            name.removeprefix("stage."): data["total_seconds"]
            for name, data in snapshot["timers"].items()
            if name.startswith("stage.")
        },
    }


def run_bench(
    programs: list[str],
    scale: float = 1.0,
    encodings: list[str] | None = None,
    *,
    repeats: int = 3,
    workers: int = 0,
    simulate: bool = True,
    simulate_steps: int = 200_000,
) -> dict:
    """Measure one configuration; returns the run document."""
    encodings = list(encodings or DEFAULT_ENCODINGS)
    if repeats < 1:
        raise ReproError("repeats must be >= 1")
    run_start = time.perf_counter()
    program_docs: dict[str, dict] = {}
    for name in programs:
        start = time.perf_counter()
        program = build_benchmark(name, scale)
        compile_seconds = time.perf_counter() - start
        doc: dict = {
            "instructions": len(program.text),
            "compile_seconds": compile_seconds,
            "encodings": {},
        }
        for encoding_name in encodings:
            encoding = make_encoding(encoding_name)
            doc["encodings"][encoding_name] = _bench_encoding(
                program,
                encoding,
                repeats=repeats,
                simulate=simulate,
                simulate_steps=simulate_steps,
            )
        program_docs[name] = doc

    largest = max(program_docs, key=lambda n: program_docs[n]["instructions"])
    largest_speedups = [
        enc_doc["dict_speedup"]
        for enc_doc in program_docs[largest]["encodings"].values()
    ]
    all_speedups = [
        enc_doc["dict_speedup"]
        for doc in program_docs.values()
        for enc_doc in doc["encodings"].values()
    ]
    all_identical = all(
        enc_doc["identical_greedy"] and enc_doc["identical_image"]
        for doc in program_docs.values()
        for enc_doc in doc["encodings"].values()
    )
    run_doc = {
        "config": {
            "programs": list(programs),
            "scale": scale,
            "encodings": encodings,
            "repeats": repeats,
            "simulate": simulate,
            "simulate_steps": simulate_steps,
        },
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "programs": program_docs,
        "aggregate": {
            "largest_program": largest,
            "dict_speedup_largest": min(largest_speedups),
            "dict_speedup_min": min(all_speedups),
            "dict_speedup_max": max(all_speedups),
            "identical_everywhere": all_identical,
            "wall_seconds": time.perf_counter() - run_start,
        },
    }
    if workers > 0:
        run_doc["workers"] = _bench_workers(programs, scale, encodings, workers)
    return run_doc


# ----------------------------------------------------------------------
# Baseline file handling and the regression guard.
# ----------------------------------------------------------------------
def load_baseline(path: str | Path) -> dict:
    """Read a ``BENCH_compression.json`` document (``{}`` shell if empty)."""
    path = Path(path)
    if not path.exists() or not path.read_text().strip():
        return {"schema": SCHEMA, "runs": {}}
    document = json.loads(path.read_text())
    if document.get("schema") != SCHEMA:
        raise ReproError(
            f"{path}: unsupported bench schema {document.get('schema')!r}"
        )
    return document


def merge_baseline(document: dict, key: str, run_doc: dict) -> dict:
    """Insert/replace one run under ``key``; returns the document."""
    document.setdefault("schema", SCHEMA)
    document.setdefault("runs", {})[key] = run_doc
    return document


def check_regression(
    current: dict, baseline: dict, *, factor: float = 2.0
) -> list[str]:
    """Compare a run against its same-key baseline run.

    Returns human-readable violations for every (program, encoding)
    whose ``compress_seconds`` exceeds ``factor`` × the baseline value.
    Entries missing from the baseline are skipped — a new program or
    encoding cannot regress.
    """
    violations = []
    for name, doc in current.get("programs", {}).items():
        base_doc = baseline.get("programs", {}).get(name)
        if base_doc is None:
            continue
        for encoding_name, enc_doc in doc.get("encodings", {}).items():
            base_enc = base_doc.get("encodings", {}).get(encoding_name)
            if base_enc is None:
                continue
            current_s = enc_doc.get("compress_seconds")
            base_s = base_enc.get("compress_seconds")
            if current_s is None or not base_s:
                continue
            if current_s > factor * base_s:
                violations.append(
                    f"{name}/{encoding_name}: compress {current_s:.4f}s > "
                    f"{factor:g}x baseline {base_s:.4f}s"
                )
    return violations
