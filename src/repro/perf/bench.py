"""The ``repro-bench`` measurement harness.

One *run* times, per (program, encoding):

* ``dict_fast`` / ``dict_reference`` — end-to-end dictionary
  construction (candidate enumeration + greedy selection), best of
  ``repeats``, for the production fast path and for
  :func:`~repro.core.greedy.greedy_reference`.  The fast path is also
  timed *cold* (per-program candidate store evicted first), since the
  store is shared across an encoding sweep in any real workload;
* ``compress`` — the full pipeline through
  :class:`~repro.core.compressor.Compressor`, with the per-stage wall
  times captured from the :mod:`repro.observe` stage hooks;
* ``decode`` — walking the serialized stream into fetch items, cold
  (decode cache cleared) and warm (served from the cache), plus a
  head-to-head of the table-driven bulk decoder
  (:mod:`repro.machine.bulkdecode`) against the item-at-a-time
  reference walk, gated on identical items
  (``decode_identical_items``);
* ``simulate`` — a bounded execution of the compressed image through
  both the predecoded fast engine and the reference interpreter,
  reporting instructions issued per second and the speedup.

Per program (once, not per encoding) a ``simulation`` block times the
*uncompressed* simulator the same way: cold vs warm predecode, fast vs
reference bounded runs (steps per second), and ``profile_program``
end-to-end — the numbers behind the fast path's ≥5x/≥3x targets.

Every fast-path measurement is gated on **byte-identical output**: the
greedy results and the serialized images of the fast and reference
pipelines are compared and the verdict recorded in the JSON
(``identical_greedy`` / ``identical_image``); likewise the fast and
reference simulations must end in identical architectural state
(``identical_state`` / ``simulate_identical_state``).

Results nest under a :func:`run_key` derived from the configuration
(programs, scale, encodings), so one committed ``BENCH_compression.json``
holds both the full-suite trajectory and the CI smoke configuration;
:func:`check_regression` compares same-key runs and powers the CI
``bench-smoke`` guard.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

from repro.core.compressor import Compressor
from repro.core.encodings import Encoding, make_encoding
from repro.core.greedy import build_dictionary, greedy_reference
from repro.errors import ReproError, SimulationError
from repro.machine import fastpath
from repro.machine.compressed_sim import CompressedSimulator
from repro.machine.decompressor import (
    StreamDecoder,
    clear_decode_cache,
    decode_cache_stats,
)
from repro.machine.simulator import Simulator, profile_program
from repro.observe import Recorder, RunLedger, make_record
from repro.service.metrics import MetricsRegistry
from repro.service.pool import run_batch
from repro.workloads import build_benchmark

BENCH_FILENAME = "BENCH_compression.json"
SCHEMA = 1

DEFAULT_ENCODINGS = ("nibble", "baseline", "onebyte")


def run_key(programs: list[str], scale: float, encodings: list[str]) -> str:
    """Stable key for one benchmark configuration."""
    return (
        f"programs={','.join(sorted(programs))};scale={scale:g};"
        f"encodings={','.join(encodings)}"
    )


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _same_greedy(a, b) -> bool:
    return (
        a.dictionary.entries == b.dictionary.entries
        and a.replacements == b.replacements
        and a.step_savings_bits == b.step_savings_bits
    )


def _evict_program_caches(program) -> None:
    """Drop the per-program candidate store and block maps (cold runs)."""
    program._analysis_cache.clear()


def _states_equal(a, b) -> bool:
    """Full architectural-state comparison for the identity gates."""
    return (
        a.gpr == b.gpr
        and a.cr == b.cr
        and a.lr == b.lr
        and a.ctr == b.ctr
        and a.steps == b.steps
        and a.halted == b.halted
        and a.exit_code == b.exit_code
        and a.output == b.output
    )


def _bench_simulation(
    program, *, repeats: int, simulate_steps: int, fastpath_enabled: bool
) -> dict:
    """Uncompressed-simulator timings for one program."""
    doc: dict = {}

    def run_once(implementation):
        simulator = Simulator(
            program, max_steps=simulate_steps, implementation=implementation
        )
        start = time.perf_counter()
        try:
            simulator.run()
        except SimulationError:
            pass  # hit the step bound — expected for a timing probe
        return simulator, time.perf_counter() - start

    reference_sim, reference_best = run_once("reference")
    for _ in range(repeats - 1):
        reference_best = min(reference_best, run_once("reference")[1])
    steps = reference_sim.state.steps
    doc["steps"] = steps
    doc["reference_seconds"] = reference_best
    doc["reference_steps_per_second"] = (
        steps / reference_best if reference_best else 0.0
    )
    if not fastpath_enabled:
        return doc

    # Predecode: cold (translation cache evicted), then served warm.
    program._analysis_cache.pop("fastpath", None)
    start = time.perf_counter()
    cache = fastpath.program_cache(program)
    doc["predecode_cold_seconds"] = time.perf_counter() - start
    doc["predecode_warm_seconds"] = _best(
        lambda: fastpath.program_cache(program), repeats
    )

    fast_sim, fast_cold = run_once("fast")  # traces built during this run
    doc["fast_cold_seconds"] = fast_cold
    fast_best = fast_cold
    for _ in range(repeats - 1):
        fast_best = min(fast_best, run_once("fast")[1])
    doc["fast_seconds"] = fast_best
    doc["fast_steps_per_second"] = steps / fast_best if fast_best else 0.0
    doc["speedup"] = (
        reference_best / fast_best if fast_best > 0 else float("inf")
    )
    doc["identical_state"] = (
        _states_equal(fast_sim.state, reference_sim.state)
        and fast_sim.pc == reference_sim.pc
    )
    doc["trace_cache"] = cache.stats()

    # Superinstruction fusion footprint: how much the active plan
    # shrank the trace bodies this program actually built.
    from repro.machine import fusion

    fusion_stats = fusion.fusion_stats()
    trace_insns = sum(t.body_insns for t in cache.traces.values())
    trace_thunks = sum(len(t.body) for t in cache.traces.values())
    doc["fusion"] = {
        "enabled": fusion_stats["enabled"],
        "planned_pairs": len(fusion_stats["pairs"]),
        "compiled_thunks": fusion_stats["compiled"],
        "trace_instructions": trace_insns,
        "trace_thunks": trace_thunks,
        "body_shrink": (
            1.0 - trace_thunks / trace_insns if trace_insns else 0.0
        ),
    }

    # Control-fusion footprint: adjacent compare+branch sites in .text
    # vs the sites whose traces actually fused the pair, weighted by
    # measured execution counts.  The profile gets a much higher bound
    # than the timing probes — accuracy matters more than wall time
    # here, and the fast engine makes a full run cheap; if even that
    # bound truncates, the dynamic weights honestly read zero.
    try:
        counts = profile_program(
            program, max_steps=max(simulate_steps, 2_000_000)
        )
    except SimulationError:
        counts = [0] * len(program.text)
    doc["fusion_control"] = fastpath.control_fusion_report(program, counts)

    # profile_program end-to-end (the ext_dynamic / weighted-greedy
    # front end): whole-trace counting vs the index-hook reference.
    def profile_once(implementation):
        try:
            profile_program(
                program,
                max_steps=simulate_steps,
                implementation=implementation,
            )
        except SimulationError:
            pass

    doc["profile_fast_seconds"] = _best(
        lambda: profile_once("fast"), repeats
    )
    doc["profile_reference_seconds"] = _best(
        lambda: profile_once("reference"), repeats
    )
    doc["profile_speedup"] = (
        doc["profile_reference_seconds"] / doc["profile_fast_seconds"]
        if doc["profile_fast_seconds"] > 0
        else float("inf")
    )
    return doc


def _bench_encoding(
    program,
    encoding: Encoding,
    *,
    repeats: int,
    simulate: bool,
    simulate_steps: int,
    fastpath_enabled: bool = True,
    ledger: RunLedger | None = None,
) -> dict:
    result: dict = {}

    # Dictionary construction: fast (cold + warm) vs reference.
    _evict_program_caches(program)
    result["dict_fast_cold_seconds"] = _best(
        lambda: build_dictionary(program, encoding), 1
    )
    result["dict_fast_seconds"] = _best(
        lambda: build_dictionary(program, encoding), repeats
    )
    result["dict_reference_seconds"] = _best(
        lambda: greedy_reference(program, encoding), repeats
    )
    result["dict_speedup"] = (
        result["dict_reference_seconds"] / result["dict_fast_seconds"]
        if result["dict_fast_seconds"] > 0
        else float("inf")
    )
    fast_greedy = build_dictionary(program, encoding)
    ref_greedy = greedy_reference(program, encoding)
    result["identical_greedy"] = _same_greedy(fast_greedy, ref_greedy)

    # Full pipeline, with the observe span tree from one cold run
    # (caches evicted so candidate enumeration shows up in the stage
    # breakdown) and the headline wall time as best-of-repeats.  The
    # captured tree is what lands in the run ledger, so
    # ``repro-observe diff`` can compare bench runs.
    _evict_program_caches(program)
    compressor = Compressor(encoding=encoding)
    recorder = Recorder()
    with recorder:
        start = time.perf_counter()
        compressed = compressor.compress(program)
        single_wall = time.perf_counter() - start
    result["compress_seconds"] = min(
        single_wall,
        _best(lambda: compressor.compress(program), max(repeats - 1, 0))
        if repeats > 1
        else single_wall,
    )
    result["stage_seconds"] = recorder.stage_seconds()
    result["candidates_count"] = recorder.metrics.get("candidates.count", 0)
    if ledger is not None:
        ledger.append(make_record(
            "bench.compress",
            program=program.name,
            encoding=encoding.name,
            spans=recorder.spans,
            metrics=recorder.metrics,
            wall_seconds=single_wall,
            meta={"instructions": len(program.text)},
        ))

    # Byte-identical image gate for the fast greedy path.
    reference_image = Compressor(
        encoding=encoding, greedy_implementation="reference"
    ).compress(program)
    result["identical_image"] = (
        compressed.stream == reference_image.stream
        and compressed.dictionary.entries == reference_image.dictionary.entries
        and bytes(compressed.data_image) == bytes(reference_image.data_image)
    )
    result["original_bytes"] = compressed.original_bytes
    result["compressed_bytes"] = compressed.compressed_bytes
    result["compression_ratio"] = compressed.compression_ratio

    # Stream decode: cold, then served by the decode cache.
    total_units = compressed.total_units()

    def decode_once():
        StreamDecoder(
            compressed.stream, compressed.dictionary, encoding, total_units
        ).decode_all_indexed()

    clear_decode_cache()
    result["decode_cold_seconds"] = _best(decode_once, 1)
    result["decode_warm_seconds"] = _best(decode_once, repeats)
    result["decode_cache"] = decode_cache_stats()

    # Bulk decoder vs the reference walk, cache out of the picture: one
    # decoder reused so dictionary predecode is paid once, bulk timed
    # cold (classification tables rebuilt) and warm (tables resident).
    from repro.machine import bulkdecode

    decoder = StreamDecoder(
        compressed.stream, compressed.dictionary, encoding, total_units
    )
    bulkdecode.clear_tables()
    result["decode_bulk_cold_seconds"] = _best(
        lambda: bulkdecode.decode_stream(decoder), 1
    )
    result["decode_bulk_seconds"] = _best(
        lambda: bulkdecode.decode_stream(decoder), repeats
    )
    result["decode_reference_seconds"] = _best(
        decoder.decode_all_reference, repeats
    )
    result["decode_bulk_speedup"] = (
        result["decode_reference_seconds"] / result["decode_bulk_seconds"]
        if result["decode_bulk_seconds"] > 0
        else float("inf")
    )
    bulk_items = bulkdecode.decode_stream(decoder)
    result["decode_identical_items"] = (
        list(bulk_items) == decoder.decode_all_reference()
    )
    result["decode_backend"] = bulkdecode.backend()
    result["decode_items"] = len(bulk_items)
    result["decode_items_per_second"] = (
        len(bulk_items) / result["decode_bulk_seconds"]
        if result["decode_bulk_seconds"] > 0
        else 0.0
    )

    # Columnar fetch path: the parallel arrays the translation layer
    # binds thunks from, timed without the FetchItem tuple
    # materialization that ``decode_stream`` adds on top.
    result["decode_columnar_seconds"] = _best(
        lambda: bulkdecode.decode_stream_columnar(decoder), repeats
    )
    columns = bulkdecode.decode_stream_columnar(decoder)
    result["decode_columnar_items_per_second"] = (
        len(columns) / result["decode_columnar_seconds"]
        if result["decode_columnar_seconds"] > 0
        else 0.0
    )
    result["decode_columnar_speedup"] = (
        result["decode_bulk_seconds"] / result["decode_columnar_seconds"]
        if result["decode_columnar_seconds"] > 0
        else float("inf")
    )
    result["decode_columnar_identical"] = (
        list(columns.items()) == decoder.decode_all_reference()
    )

    if ledger is not None:
        # The decode comparison as a ledger record: one synthetic span
        # per timed path, so ``repro-observe diff`` tracks decode drift
        # the same way it tracks compress-stage drift.
        ledger.append(make_record(
            "bench.decode",
            program=program.name,
            encoding=encoding.name,
            spans=[
                {
                    "name": f"decode.{path}",
                    "start_us": 0,
                    "duration_us": int(result[key] * 1e6),
                }
                for path, key in (
                    ("reference", "decode_reference_seconds"),
                    ("bulk", "decode_bulk_seconds"),
                    ("columnar", "decode_columnar_seconds"),
                )
            ],
            metrics={"decode.items": result["decode_items"]},
            meta={
                "backend": result["decode_backend"],
                "bulk_speedup": result["decode_bulk_speedup"],
                "columnar_speedup": result["decode_columnar_speedup"],
                "identical": (
                    result["decode_identical_items"]
                    and result["decode_columnar_identical"]
                ),
            },
        ))

    if simulate:

        def simulate_once(implementation):
            simulator = CompressedSimulator(
                compressed,
                max_steps=simulate_steps,
                implementation=implementation,
            )
            start = time.perf_counter()
            try:
                simulator.run()
            except SimulationError:
                pass  # hit the step bound — expected for a timing probe
            return simulator, time.perf_counter() - start

        reference_sim, reference_seconds = simulate_once("reference")
        for _ in range(repeats - 1):
            reference_seconds = min(
                reference_seconds, simulate_once("reference")[1]
            )
        issued = reference_sim.stats.instructions_issued
        result["simulate_instructions"] = issued
        result["simulate_reference_seconds"] = reference_seconds
        result["simulate_reference_insn_per_second"] = (
            issued / reference_seconds if reference_seconds else 0.0
        )
        # Legacy headline keys follow the engine a plain run would use.
        result["simulate_seconds"] = reference_seconds
        result["simulate_insn_per_second"] = result[
            "simulate_reference_insn_per_second"
        ]
        if fastpath_enabled:
            fast_sim, fast_cold = simulate_once("fast")
            result["simulate_fast_cold_seconds"] = fast_cold
            fast_seconds = fast_cold
            for _ in range(repeats - 1):
                fast_seconds = min(fast_seconds, simulate_once("fast")[1])
            result["simulate_fast_seconds"] = fast_seconds
            result["simulate_fast_insn_per_second"] = (
                issued / fast_seconds if fast_seconds else 0.0
            )
            result["simulate_speedup"] = (
                reference_seconds / fast_seconds
                if fast_seconds > 0
                else float("inf")
            )
            result["simulate_identical_state"] = _states_equal(
                fast_sim.state, reference_sim.state
            ) and (fast_sim.item_index, fast_sim.micro) == (
                reference_sim.item_index,
                reference_sim.micro,
            )
            result["simulate_seconds"] = fast_seconds
            result["simulate_insn_per_second"] = result[
                "simulate_fast_insn_per_second"
            ]
    return result


def _bench_workers(
    programs: list[str], scale: float, encodings: list[str], workers: int
) -> dict:
    """Parallel sweep over the same configuration via the service pool."""
    from repro.service.jobs import ENCODING_NAMES, CompressionJob

    jobs = [
        CompressionJob(benchmark=name, scale=scale, encoding=enc, verify="none")
        for name in programs
        for enc in encodings
        if enc in ENCODING_NAMES
    ]
    registry = MetricsRegistry()
    start = time.perf_counter()
    results = run_batch(jobs, processes=workers, metrics=registry)
    wall = time.perf_counter() - start
    snapshot = registry.as_dict()
    return {
        "workers": workers,
        "jobs": len(jobs),
        "failed": sum(1 for r in results if not r.ok),
        "wall_seconds": wall,
        "job_wall_seconds": [round(r.wall_seconds, 6) for r in results],
        "stage_seconds": {
            name.removeprefix("stage."): data["total_seconds"]
            for name, data in snapshot["timers"].items()
            if name.startswith("stage.")
        },
    }


def run_bench(
    programs: list[str],
    scale: float = 1.0,
    encodings: list[str] | None = None,
    *,
    repeats: int = 3,
    workers: int = 0,
    simulate: bool = True,
    simulate_steps: int = 200_000,
    fastpath_enabled: bool = True,
    ledger: RunLedger | None = None,
) -> dict:
    """Measure one configuration; returns the run document.

    With a ``ledger``, every per-(program, encoding) compress run
    appends one ``bench.compress`` record (full span tree + metrics),
    each decode comparison one ``bench.decode`` record (synthetic spans
    from the timed paths), and each simulated program one
    ``bench.fusion`` record (plan footprint + control coverage) — all
    comparable later with ``repro-observe diff``.
    """
    encodings = list(encodings or DEFAULT_ENCODINGS)
    if repeats < 1:
        raise ReproError("repeats must be >= 1")
    from repro.machine import bulkdecode

    bulkdecode.reset_bulk_stats()
    run_start = time.perf_counter()
    program_docs: dict[str, dict] = {}
    for name in programs:
        start = time.perf_counter()
        program = build_benchmark(name, scale)
        compile_seconds = time.perf_counter() - start
        doc: dict = {
            "instructions": len(program.text),
            "compile_seconds": compile_seconds,
            "encodings": {},
        }
        if simulate:
            doc["simulation"] = _bench_simulation(
                program,
                repeats=repeats,
                simulate_steps=simulate_steps,
                fastpath_enabled=fastpath_enabled,
            )
            if ledger is not None:
                sim = doc["simulation"]
                fusion_doc = sim.get("fusion", {})
                control_doc = sim.get("fusion_control", {})
                # Fusion footprint as a ledger record, so plan drift
                # (fewer compiled thunks, shrinking control coverage)
                # shows up in ``repro-observe diff`` next to timing.
                ledger.append(make_record(
                    "bench.fusion",
                    program=name,
                    spans=[],
                    metrics={
                        "fusion.planned_pairs": int(
                            fusion_doc.get("planned_pairs", 0)
                        ),
                        "fusion.compiled_thunks": int(
                            fusion_doc.get("compiled_thunks", 0)
                        ),
                        "fusion.trace_thunks": int(
                            fusion_doc.get("trace_thunks", 0)
                        ),
                    },
                    wall_seconds=0.0,
                    meta={
                        "fusion": fusion_doc,
                        "fusion_control": control_doc,
                    },
                ))
        for encoding_name in encodings:
            encoding = make_encoding(encoding_name)
            doc["encodings"][encoding_name] = _bench_encoding(
                program,
                encoding,
                repeats=repeats,
                simulate=simulate,
                simulate_steps=simulate_steps,
                fastpath_enabled=fastpath_enabled,
                ledger=ledger,
            )
        program_docs[name] = doc

    largest = max(program_docs, key=lambda n: program_docs[n]["instructions"])
    largest_speedups = [
        enc_doc["dict_speedup"]
        for enc_doc in program_docs[largest]["encodings"].values()
    ]
    all_speedups = [
        enc_doc["dict_speedup"]
        for doc in program_docs.values()
        for enc_doc in doc["encodings"].values()
    ]
    all_identical = all(
        enc_doc["identical_greedy"] and enc_doc["identical_image"]
        for doc in program_docs.values()
        for enc_doc in doc["encodings"].values()
    )
    sim_identical = all(
        flag
        for doc in program_docs.values()
        for flag in (
            [doc["simulation"].get("identical_state", True)]
            if "simulation" in doc
            else []
        )
        + [
            enc_doc.get("simulate_identical_state", True)
            for enc_doc in doc["encodings"].values()
        ]
    )
    decode_speedups = [
        enc_doc["decode_bulk_speedup"]
        for doc in program_docs.values()
        for enc_doc in doc["encodings"].values()
        if "decode_bulk_speedup" in enc_doc
    ]
    decode_identical = all(
        enc_doc.get("decode_identical_items", True)
        and enc_doc.get("decode_columnar_identical", True)
        for doc in program_docs.values()
        for enc_doc in doc["encodings"].values()
    )
    aggregate = {
        "largest_program": largest,
        "dict_speedup_largest": min(largest_speedups),
        "dict_speedup_min": min(all_speedups),
        "dict_speedup_max": max(all_speedups),
        "identical_everywhere": all_identical,
        "sim_identical_everywhere": sim_identical,
        "decode_identical_everywhere": decode_identical,
    }
    if decode_speedups:
        aggregate["decode_speedup_min"] = min(decode_speedups)
        aggregate["decode_speedup_max"] = max(decode_speedups)
    largest_sim = program_docs[largest].get("simulation", {})
    if "speedup" in largest_sim:
        aggregate["sim_speedup_largest"] = largest_sim["speedup"]
    compressed_speedups = [
        enc_doc["simulate_speedup"]
        for enc_doc in program_docs[largest]["encodings"].values()
        if "simulate_speedup" in enc_doc
    ]
    if compressed_speedups:
        aggregate["compressed_sim_speedup_largest"] = min(compressed_speedups)
    control_coverages = [
        doc["simulation"]["fusion_control"]["coverage"]
        for doc in program_docs.values()
        if "fusion_control" in doc.get("simulation", {})
    ]
    if control_coverages:
        aggregate["control_fusion_coverage_min"] = min(control_coverages)
    aggregate["wall_seconds"] = time.perf_counter() - run_start
    run_doc = {
        "config": {
            "programs": list(programs),
            "scale": scale,
            "encodings": encodings,
            "repeats": repeats,
            "simulate": simulate,
            "simulate_steps": simulate_steps,
            "fastpath": fastpath_enabled,
        },
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "programs": program_docs,
        "aggregate": aggregate,
        # Per-reason bulk-decoder fallback counters across the whole
        # run (reset at entry): nonzero reasons explain every decode
        # that took the reference walk instead of the table path.
        "bulk_decode": bulkdecode.bulk_stats(),
    }
    if workers > 0:
        run_doc["workers"] = _bench_workers(programs, scale, encodings, workers)
    return run_doc


# ----------------------------------------------------------------------
# Baseline file handling and the regression guard.
# ----------------------------------------------------------------------
def load_baseline(path: str | Path) -> dict:
    """Read a ``BENCH_compression.json`` document (``{}`` shell if empty)."""
    path = Path(path)
    if not path.exists() or not path.read_text().strip():
        return {"schema": SCHEMA, "runs": {}}
    document = json.loads(path.read_text())
    if document.get("schema") != SCHEMA:
        raise ReproError(
            f"{path}: unsupported bench schema {document.get('schema')!r}"
        )
    return document


def merge_baseline(document: dict, key: str, run_doc: dict) -> dict:
    """Insert/replace one run under ``key``; returns the document."""
    document.setdefault("schema", SCHEMA)
    document.setdefault("runs", {})[key] = run_doc
    return document


def check_regression(
    current: dict, baseline: dict, *, factor: float = 2.0
) -> list[str]:
    """Compare a run against its same-key baseline run.

    Returns human-readable violations for every (program, encoding)
    whose ``compress_seconds`` exceeds ``factor`` × the baseline value,
    and for every simulation or decode throughput (program-level
    steps/sec, encoding-level insn/sec and decoded items/sec, the bulk
    decode speedup ratio) that drops below baseline / ``factor``.
    When both runs carry a ``service`` block (``repro-bench --load``),
    its p50/p99 submit-to-terminal latency and job throughput are
    guarded the same way.  Entries missing from the baseline are
    skipped — a new program, encoding, or metric cannot regress.
    """
    violations = []

    def guard_throughput(label: str, current_doc: dict, base_doc: dict,
                         key: str) -> None:
        current_v = current_doc.get(key)
        base_v = base_doc.get(key)
        if not current_v or not base_v:
            return
        if current_v * factor < base_v:
            violations.append(
                f"{label}: {key} {current_v:,.0f}/s < "
                f"baseline {base_v:,.0f}/s / {factor:g}"
            )

    for name, doc in current.get("programs", {}).items():
        base_doc = baseline.get("programs", {}).get(name)
        if base_doc is None:
            continue
        sim, base_sim = doc.get("simulation"), base_doc.get("simulation")
        if sim and base_sim:
            for key in ("fast_steps_per_second", "reference_steps_per_second"):
                guard_throughput(f"{name}/simulation", sim, base_sim, key)
            current_fc = sim.get("fusion_control", {}).get("coverage")
            base_fc = base_sim.get("fusion_control", {}).get("coverage")
            if current_fc is not None and base_fc and current_fc * factor < base_fc:
                violations.append(
                    f"{name}/simulation: control fusion coverage "
                    f"{current_fc:.1%} < baseline {base_fc:.1%} / {factor:g}"
                )
        for encoding_name, enc_doc in doc.get("encodings", {}).items():
            base_enc = base_doc.get("encodings", {}).get(encoding_name)
            if base_enc is None:
                continue
            current_s = enc_doc.get("compress_seconds")
            base_s = base_enc.get("compress_seconds")
            if current_s is not None and base_s:
                if current_s > factor * base_s:
                    violations.append(
                        f"{name}/{encoding_name}: compress {current_s:.4f}s > "
                        f"{factor:g}x baseline {base_s:.4f}s"
                    )
            for key in (
                "simulate_fast_insn_per_second",
                "simulate_insn_per_second",
                "decode_items_per_second",
                "decode_columnar_items_per_second",
            ):
                guard_throughput(
                    f"{name}/{encoding_name}", enc_doc, base_enc, key
                )
            current_r = enc_doc.get("decode_bulk_speedup")
            base_r = base_enc.get("decode_bulk_speedup")
            if current_r and base_r and current_r * factor < base_r:
                violations.append(
                    f"{name}/{encoding_name}: decode bulk speedup "
                    f"{current_r:.2f}x < baseline {base_r:.2f}x / {factor:g}"
                )
    violations.extend(
        _check_service_regression(
            current.get("service"), baseline.get("service"), factor=factor
        )
    )
    return violations


def _check_service_regression(
    service: dict | None, baseline: dict | None, *, factor: float
) -> list[str]:
    """Latency/throughput guards for the ``--load`` service block."""
    if not service or not baseline:
        return []  # load harness not run on both sides — nothing to compare
    violations = []
    latency = service.get("latency") or {}
    base_latency = baseline.get("latency") or {}
    for quantile in ("p50", "p99"):
        current_v = latency.get(quantile)
        base_v = base_latency.get(quantile)
        if not current_v or not base_v:
            continue
        if current_v > factor * base_v:
            violations.append(
                f"service: latency {quantile} {current_v * 1e3:.2f}ms > "
                f"{factor:g}x baseline {base_v * 1e3:.2f}ms"
            )
    current_tp = service.get("throughput_jobs_per_second")
    base_tp = baseline.get("throughput_jobs_per_second")
    if current_tp and base_tp and current_tp * factor < base_tp:
        violations.append(
            f"service: throughput {current_tp:,.1f} jobs/s < "
            f"baseline {base_tp:,.1f} jobs/s / {factor:g}"
        )
    return violations
