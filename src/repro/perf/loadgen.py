"""Measured load harness for the :mod:`repro.server` front end.

:func:`run_load` self-hosts a :class:`~repro.server.app.CompressionServer`
on an ephemeral port, drives it over real HTTP from client threads, and
returns the ``service`` block that ``repro-bench --load`` stores in
``BENCH_compression.json``:

* a **warmup** pass submits every distinct (benchmark, encoding) spec
  once and waits for its artifact, so the measured phase exercises the
  warm cache — the block records the measured-phase hit rate, which
  must be 1.0 for repeat submissions of identical specs;
* the **measured** phase is either *closed-loop* (``clients`` threads,
  each submit→wait-for-terminal-SSE→repeat until ``jobs`` total) or
  *open-loop* (a dispatcher submits at ``rate`` jobs/sec regardless of
  completions, waiters collect the terminal events);
* per-job latency is submit-to-terminal-SSE wall time, recorded in a
  :class:`~repro.service.metrics.MetricsRegistry` timer whose
  reservoir yields the reported p50/p90/p99;
* a **hog** tenant with a deliberately tight quota bursts submissions
  at the end, so the block always demonstrates 429 + ``Retry-After``
  admission control and the rejection counters it feeds.

Everything speaks plain :mod:`http.client` — the harness is also an
integration test of the wire protocol, not just of the Python API.
"""

from __future__ import annotations

import http.client
import json
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import observe
from repro.errors import ReproError
from repro.server.app import ServerConfig, serve
from repro.server.quotas import QuotaSpec
from repro.server.routes import TENANT_HEADER, TRACEPARENT_HEADER
from repro.server.sse import TERMINAL_EVENTS
from repro.service.metrics import MetricsRegistry

#: Socket timeout for client connections.  SSE streams send a
#: keep-alive comment every 30s, so this bounds *silence*, not job
#: duration.
CLIENT_TIMEOUT = 120.0


@dataclass
class LoadConfig:
    """One load-harness run; ``repro-bench --load-*`` flags map 1:1."""

    benchmarks: list[str] = field(default_factory=lambda: ["compress", "li"])
    encodings: list[str] = field(default_factory=lambda: ["nibble"])
    scale: float = 0.3
    verify: str = "full"
    mode: str = "closed"  # "closed" | "open"
    jobs: int = 200
    clients: int = 4  # closed-loop concurrency
    rate: float = 50.0  # open-loop submissions per second
    tenants: list[str] = field(default_factory=lambda: ["alpha", "beta"])
    hog_burst: int = 8  # over-quota submissions from the hog tenant
    hog_quota: QuotaSpec = field(default_factory=lambda: QuotaSpec(1.0, 2))
    # Self-hosted server shape.  The measured tenants get a quota wide
    # enough that admission control never throttles the latency probe;
    # the hog tenant demonstrates throttling separately.
    server_quota: QuotaSpec = field(
        default_factory=lambda: QuotaSpec(2000.0, 4000)
    )
    shards: int = 4
    concurrency: int = 2
    max_queue_depth: int = 512
    cache_dir: str | Path | None = None  # None = fresh temp dir

    def specs(self) -> list[dict]:
        return [
            {
                "benchmark": benchmark,
                "encoding": encoding,
                "scale": self.scale,
                "verify": self.verify,
            }
            for benchmark in self.benchmarks
            for encoding in self.encodings
        ]


class HostedServer:
    """A :class:`CompressionServer` on its own thread + event loop."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.server = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        import asyncio

        def on_ready(server):
            self.server = server
            self._ready.set()

        try:
            asyncio.run(serve(self.config, ready=on_ready))
        except BaseException as exc:  # surfaced to the waiting client
            self._error = exc
            self._ready.set()

    def __enter__(self) -> "HostedServer":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise ReproError(f"load-harness server failed: {self._error}")
        if self.server is None:
            raise ReproError("load-harness server did not start within 30s")
        return self

    def __exit__(self, *exc_info) -> None:
        if self.server is not None:
            self.server.request_shutdown()
        self._thread.join(timeout=60)

    @property
    def address(self) -> tuple[str, int]:
        return self.config.host, self.server.port


# ----------------------------------------------------------------------
# HTTP client primitives (stdlib only; one connection per request, the
# server speaks Connection: close).
# ----------------------------------------------------------------------
def _request(
    address: tuple[str, int],
    method: str,
    target: str,
    *,
    body: dict | None = None,
    tenant: str | None = None,
    extra_headers: dict | None = None,
):
    """Returns ``(status, headers, parsed_json_or_None)``."""
    conn = http.client.HTTPConnection(*address, timeout=CLIENT_TIMEOUT)
    headers = {}
    payload = None
    if body is not None:
        payload = json.dumps(body)
        headers["Content-Type"] = "application/json"
    if tenant is not None:
        headers[TENANT_HEADER] = tenant
    if extra_headers:
        headers.update(extra_headers)
    try:
        conn.request(method, target, payload, headers)
        response = conn.getresponse()
        raw = response.read()
        document = None
        if raw:
            try:
                document = json.loads(raw)
            except json.JSONDecodeError:
                document = None
        return response.status, dict(response.getheaders()), document
    finally:
        conn.close()


def stream_events(
    address: tuple[str, int], job_id: str, tenant: str
) -> list[dict]:
    """GET the job's SSE stream; returns events up to the terminal one."""
    conn = http.client.HTTPConnection(*address, timeout=CLIENT_TIMEOUT)
    events: list[dict] = []
    try:
        conn.request(
            "GET", f"/v1/jobs/{job_id}/events", headers={TENANT_HEADER: tenant}
        )
        response = conn.getresponse()
        if response.status != 200:
            raise ReproError(
                f"events stream for {job_id}: HTTP {response.status}"
            )
        kind = None
        data_lines: list[str] = []
        while True:
            line = response.readline()
            if not line:
                break  # server closed the stream
            text = line.decode("utf-8").rstrip("\r\n")
            if not text:  # blank line = end of one event
                if kind is not None:
                    data = json.loads("\n".join(data_lines) or "{}")
                    events.append({"kind": kind, "data": data})
                    if kind in TERMINAL_EVENTS:
                        return events
                kind, data_lines = None, []
                continue
            if text.startswith(":"):
                continue  # keep-alive comment
            name, _, value = text.partition(":")
            value = value.removeprefix(" ")
            if name == "event":
                kind = value
            elif name == "data":
                data_lines.append(value)
        return events
    finally:
        conn.close()


#: Ceiling on a single honored Retry-After wait, so a miscomputed
#: header cannot park a load-gen thread for minutes.
RETRY_AFTER_CAP = 5.0


def submit_and_wait(
    address: tuple[str, int],
    spec: dict,
    tenant: str,
    *,
    max_throttle_retries: int = 8,
    sleep=time.sleep,
) -> tuple[str, float, dict]:
    """Submit one job and block until its terminal SSE event.

    A 429 is not terminal: the client honors ``Retry-After`` (capped at
    :data:`RETRY_AFTER_CAP` seconds) and resubmits, up to
    ``max_throttle_retries`` waits — being rate limited is back-pressure
    to absorb, not an error to report.  Returns ``(outcome,
    latency_seconds, detail)`` where outcome is the terminal event kind
    (``completed``/``failed``/``cancelled``) or ``rejected`` when the
    throttle budget is spent, and detail carries the terminal event
    data (or the refusal document) plus ``"submit_retries"``, the
    number of honored waits and ``"trace_id"``, the W3C trace id the
    harness minted for the job (constant across throttle retries, so
    every server-side span of every attempt stitches into one trace).
    """
    start = time.perf_counter()
    trace_id = observe.make_trace_id()
    traceparent = observe.format_traceparent(trace_id, observe.make_span_id())
    retries = 0
    while True:
        status, headers, document = _request(
            address, "POST", "/v1/jobs", body=spec, tenant=tenant,
            extra_headers={TRACEPARENT_HEADER: traceparent},
        )
        if status != 429:
            break
        if retries >= max_throttle_retries:
            return "rejected", time.perf_counter() - start, {
                "reason": (document or {}).get("reason"),
                "retry_after": headers.get("Retry-After"),
                "submit_retries": retries,
                "trace_id": trace_id,
            }
        try:
            delay = float(headers.get("Retry-After", 1))
        except ValueError:
            delay = 1.0
        sleep(max(0.0, min(delay, RETRY_AFTER_CAP)))
        retries += 1
    if status != 202:
        raise ReproError(
            f"submit for tenant {tenant}: HTTP {status} {document}"
        )
    events = stream_events(address, document["job_id"], tenant)
    latency = time.perf_counter() - start
    if not events or events[-1]["kind"] not in TERMINAL_EVENTS:
        raise ReproError(
            f"job {document['job_id']}: SSE stream ended without a "
            f"terminal event"
        )
    terminal = events[-1]
    return terminal["kind"], latency, {
        **terminal["data"],
        "submit_retries": retries,
        "trace_id": document.get("trace_id") or trace_id,
    }


# ----------------------------------------------------------------------
# Phases.
# ----------------------------------------------------------------------
def _warmup(address, specs: list[dict], tenant: str) -> dict:
    start = time.perf_counter()
    built = 0
    for spec in specs:
        outcome, _, data = submit_and_wait(address, spec, tenant)
        if outcome != "completed":
            raise ReproError(
                f"warmup job {spec} ended {outcome}: {data.get('error')}"
            )
        if not data.get("cache_hit"):
            built += 1
    return {
        "jobs": len(specs),
        "built": built,
        "seconds": time.perf_counter() - start,
    }


def _closed_loop(
    address, config: LoadConfig, registry: MetricsRegistry,
    rows: list[dict] | None = None,
) -> None:
    """``clients`` threads, each submit→wait→repeat; ``jobs`` total."""
    specs = config.specs()
    cursor = {"next": 0}
    lock = threading.Lock()

    def take() -> int | None:
        with lock:
            index = cursor["next"]
            if index >= config.jobs:
                return None
            cursor["next"] = index + 1
            return index

    errors: list[str] = []

    def client(worker: int) -> None:
        while True:
            index = take()
            if index is None:
                return
            spec = specs[index % len(specs)]
            tenant = config.tenants[index % len(config.tenants)]
            try:
                outcome, latency, data = submit_and_wait(
                    address, spec, tenant
                )
            except ReproError as exc:
                with lock:
                    errors.append(str(exc))
                return
            _record(registry, outcome, latency, data, tenant, rows)

    threads = [
        threading.Thread(target=client, args=(worker,), daemon=True)
        for worker in range(max(1, config.clients))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise ReproError(f"closed-loop clients failed: {errors[0]}")


def _open_loop(
    address, config: LoadConfig, registry: MetricsRegistry,
    rows: list[dict] | None = None,
) -> None:
    """Submit at a fixed rate; waiter threads collect terminal events."""
    specs = config.specs()
    interval = 1.0 / config.rate if config.rate > 0 else 0.0
    errors: list[str] = []
    lock = threading.Lock()
    waiters: list[threading.Thread] = []

    def wait_one(spec: dict, tenant: str, submitted: float) -> None:
        try:
            outcome, _, data = submit_and_wait(address, spec, tenant)
        except ReproError as exc:
            with lock:
                errors.append(str(exc))
            return
        # Open-loop latency includes queueing behind the arrival
        # process, measured from the intended arrival time.
        _record(
            registry, outcome, time.perf_counter() - submitted, data,
            tenant, rows,
        )

    next_arrival = time.perf_counter()
    for index in range(config.jobs):
        now = time.perf_counter()
        if now < next_arrival:
            time.sleep(next_arrival - now)
        spec = specs[index % len(specs)]
        tenant = config.tenants[index % len(config.tenants)]
        thread = threading.Thread(
            target=wait_one,
            args=(spec, tenant, next_arrival),
            daemon=True,
        )
        thread.start()
        waiters.append(thread)
        next_arrival += interval
    for thread in waiters:
        thread.join()
    if errors:
        raise ReproError(f"open-loop waiters failed: {errors[0]}")


def _record(
    registry: MetricsRegistry,
    outcome: str,
    latency: float,
    data: dict,
    tenant: str | None = None,
    rows: list[dict] | None = None,
) -> None:
    if rows is not None:
        # One attribution row per measured job; list.append is atomic
        # under the GIL, so the client threads share the list lock-free.
        rows.append({
            "trace_id": data.get("trace_id"),
            "outcome": outcome,
            "latency_seconds": latency,
            "cache_hit": bool(data.get("cache_hit")),
            "tenant": tenant,
            "submit_retries": data.get("submit_retries", 0),
        })
    retries = data.get("submit_retries", 0)
    if retries:
        registry.counter("load.submit_retries").inc(retries)
    if outcome == "rejected":
        reason = data.get("reason") or "quota"
        registry.counter(f"load.rejected.{reason}").inc()
        return
    registry.counter(f"load.{outcome}").inc()
    if outcome == "completed":
        registry.timer("load.latency").observe(latency)
        if data.get("cache_hit"):
            registry.counter("load.cache_hits").inc()
        else:
            registry.counter("load.cache_misses").inc()
        if data.get("meta", {}).get("verify") == "full":
            registry.counter("load.verified_full").inc()
    elif outcome == "failed":
        error = data.get("error") or ""
        if "VerificationError" in error:
            registry.counter("load.divergences").inc()


#: Rows kept in the ``tail_latency`` attribution table.
TAIL_ROWS = 10


def _tail_latency(rows: list[dict]) -> list[dict]:
    """The slowest completed jobs, each carrying its trace id.

    The bench doc's answer to "why is p99 what it is": feed a row's
    ``trace_id`` to ``repro-observe stitch`` and read the actual span
    tree of that slow job instead of guessing from aggregates.
    """
    completed = [row for row in rows if row["outcome"] == "completed"]
    completed.sort(key=lambda row: row["latency_seconds"], reverse=True)
    return completed[:TAIL_ROWS]


def _hog_burst(address, config: LoadConfig, registry: MetricsRegistry) -> dict:
    """Burst over-quota submissions; the server must throttle with 429."""
    spec = config.specs()[0]
    statuses: list[int] = []
    retry_after = None
    for _ in range(config.hog_burst):
        status, headers, document = _request(
            address, "POST", "/v1/jobs", body=spec, tenant="hog"
        )
        statuses.append(status)
        if status == 429:
            registry.counter("load.rejected.quota").inc()
            retry_after = headers.get("Retry-After", retry_after)
    return {
        "burst": config.hog_burst,
        "accepted": statuses.count(202),
        "rejected": statuses.count(429),
        "retry_after_seconds": (
            int(retry_after) if retry_after is not None else None
        ),
        "quota": {
            "rate": config.hog_quota.rate,
            "burst": config.hog_quota.burst,
        },
    }


# ----------------------------------------------------------------------
# The harness entry point.
# ----------------------------------------------------------------------
def run_load(config: LoadConfig) -> dict:
    """Run the harness; returns the ``service`` block for the bench doc."""
    if config.mode not in ("closed", "open"):
        raise ReproError(f"unknown load mode {config.mode!r}")
    if not config.tenants:
        raise ReproError("load harness needs at least one tenant")

    registry = MetricsRegistry()
    with tempfile.TemporaryDirectory(prefix="repro-load-") as scratch:
        cache_dir = config.cache_dir or Path(scratch) / "cache"
        server_config = ServerConfig(
            host="127.0.0.1",
            port=0,
            cache_dir=cache_dir,
            shards=config.shards,
            concurrency=config.concurrency,
            max_queue_depth=config.max_queue_depth,
            quota=config.server_quota,
            tenant_quotas={"hog": config.hog_quota},
            default_verify=config.verify,
        )
        with HostedServer(server_config) as hosted:
            address = hosted.address
            warmup = _warmup(address, config.specs(), config.tenants[0])

            rows: list[dict] = []
            measured_start = time.perf_counter()
            if config.mode == "closed":
                _closed_loop(address, config, registry, rows)
            else:
                _open_loop(address, config, registry, rows)
            measured_wall = time.perf_counter() - measured_start

            hog = _hog_burst(address, config, registry)
            _, _, stats = _request(address, "GET", "/v1/stats")

    latency = registry.timer("load.latency")
    latency_quantiles = latency.percentiles()
    counters = registry.as_dict()["counters"]
    completed = counters.get("load.completed", 0)
    hits = counters.get("load.cache_hits", 0)
    misses = counters.get("load.cache_misses", 0)
    lookups = hits + misses
    return {
        "mode": config.mode,
        "tenants": list(config.tenants),
        "clients": config.clients if config.mode == "closed" else None,
        "rate_per_second": config.rate if config.mode == "open" else None,
        "spec": {
            "benchmarks": list(config.benchmarks),
            "encodings": list(config.encodings),
            "scale": config.scale,
            "verify": config.verify,
        },
        "warmup": warmup,
        "jobs": {
            "requested": config.jobs,
            "completed": completed,
            "failed": counters.get("load.failed", 0),
            "cancelled": counters.get("load.cancelled", 0),
            "rejected_quota": counters.get("load.rejected.quota", 0),
            "rejected_queue": counters.get("load.rejected.queue_full", 0),
            "submit_retries": counters.get("load.submit_retries", 0),
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "measured_hit_rate": hits / lookups if lookups else 0.0,
        },
        "latency": {
            "count": latency.count,
            "quantile_samples": latency_quantiles.pop("count"),
            "mean_seconds": latency.mean_seconds,
            **latency_quantiles,
        },
        "tail_latency": _tail_latency(rows),
        "throughput_jobs_per_second": (
            completed / measured_wall if measured_wall > 0 else 0.0
        ),
        "measured_wall_seconds": measured_wall,
        "divergences": counters.get("load.divergences", 0),
        "hog": hog,
        "server": {
            "shards": config.shards,
            "concurrency": config.concurrency,
            "queue_depth_cap": config.max_queue_depth,
            "stats": stats,
        },
    }
