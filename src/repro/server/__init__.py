"""The networked compression service: asyncio HTTP front end.

``repro.server`` grows the local batch service (:mod:`repro.service`)
into an actual server:

* :mod:`repro.server.app` — :class:`CompressionServer`, the asyncio
  application: submission, worker tasks over a thread executor,
  graceful drain;
* :mod:`repro.server.http` — a minimal stdlib HTTP/1.1 layer (strict,
  bounded parser; fixed and SSE responses);
* :mod:`repro.server.routes` — the endpoint table
  (``POST /v1/jobs``, SSE ``/v1/jobs/{id}/events``, artifact fetch,
  stats, Prometheus text);
* :mod:`repro.server.sse` — server-sent events derived from the
  per-job observe span trees (stage names + cache-hit attributes);
* :mod:`repro.server.sharding` — :class:`ShardedArtifactCache`,
  content-key-prefix sharding of the artifact store with transparent
  layout migration;
* :mod:`repro.server.quotas` — per-tenant token buckets and
  queue-depth admission control (429 + ``Retry-After``);
* :mod:`repro.server.ledger` — the persistent job ledger
  (manifest / append-only state-store split) that lets a restarted
  server resume interrupted jobs.

The ``repro-server`` CLI (:mod:`repro.tools.server_cli`) runs it; the
``repro-bench --load`` harness (:mod:`repro.perf.loadgen`) measures it.
"""

from repro.server.app import (
    CompressionServer,
    JobState,
    ServerConfig,
    parse_spec,
    serve,
)
from repro.server.ledger import JobLedger, JobRecord, make_job_id
from repro.server.quotas import (
    AdmissionController,
    Decision,
    QuotaSpec,
    TokenBucket,
    parse_quota,
    parse_tenant_quota,
)
from repro.server.sharding import (
    MigrationReport,
    ShardedArtifactCache,
    migrate_layout,
    shard_index,
)
from repro.server.sse import format_event, parse_stream, span_events

__all__ = [
    "AdmissionController",
    "CompressionServer",
    "Decision",
    "JobLedger",
    "JobRecord",
    "JobState",
    "MigrationReport",
    "QuotaSpec",
    "ServerConfig",
    "ShardedArtifactCache",
    "TokenBucket",
    "format_event",
    "make_job_id",
    "migrate_layout",
    "parse_quota",
    "parse_spec",
    "parse_stream",
    "parse_tenant_quota",
    "serve",
    "shard_index",
    "span_events",
]
