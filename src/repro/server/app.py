"""The asyncio compression server.

:class:`CompressionServer` is the networked front end over the
existing service layer: it accepts compile+compress job submissions
over HTTP (:mod:`repro.server.routes`), runs them through
:func:`repro.service.pool.execute_job` on a bounded thread executor,
stores artifacts in a :class:`~repro.server.sharding.ShardedArtifactCache`,
journals every job transition in a
:class:`~repro.server.ledger.JobLedger`, and streams per-job progress
as server-sent events derived from the job's observe span tree.

Lifecycle
---------

* :meth:`start` opens the ledger, **re-queues jobs interrupted by the
  previous shutdown** (their specs are persisted in the state store),
  spawns ``concurrency`` worker tasks, and binds the listening socket;
* submissions pass the :class:`~repro.server.quotas.AdmissionController`
  (per-tenant token bucket + server-wide queue-depth gate) before they
  are ledgered and queued — a refusal is an HTTP 429 with
  ``Retry-After``, counted in metrics, and never ledgered;
* :meth:`shutdown` (the SIGTERM/SIGINT path) stops accepting
  submissions (503), **drains** every accepted job, compacts and
  flushes the ledger, and returns — the CLI then exits 0.

Concurrency model: the event loop owns all bookkeeping (job table,
event logs, ledger); compile+compress runs on executor threads, which
touch only the sharded cache (internally locked) and return plain
data.  SSE readers are loop coroutines woken through each job's
``changed`` event, so no locks are needed on the event log.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro import observe
from repro.chaos.process import apply_worker_fault
from repro.errors import ReproError, ServiceError, TransientError
from repro.observe import Recorder
from repro.server.http import (
    HttpError,
    error_response,
    read_request,
)
from repro.server.ledger import JobLedger, JobRecord, make_job_id
from repro.server.quotas import AdmissionController, Decision, QuotaSpec
from repro.server.routes import build_router, handle_events
from repro.server.sharding import ShardedArtifactCache
from repro.server.sse import span_events
from repro.service.fsio import Filesystem
from repro.service.jobs import CompressionJob
from repro.service.metrics import MetricsRegistry
from repro.service.pool import execute_job
from repro.service.scrub import CacheScrubber

#: Fields accepted in an HTTP job spec (prebuilt ``program`` jobs are
#: process-local objects and cannot cross the wire).
SPEC_FIELDS = {
    "benchmark", "source", "scale", "encoding", "max_codewords",
    "max_entry_len", "verify", "name",
}


@dataclass
class ServerConfig:
    """Everything the server needs to run; CLI flags map 1:1."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port from .port
    cache_dir: str | Path = ".repro-server-cache"
    state_dir: str | Path | None = None  # default: <cache_dir>/state
    shards: int = 4
    concurrency: int = 2
    max_queue_depth: int = 64
    quota: QuotaSpec = field(default_factory=lambda: QuotaSpec(20.0, 40))
    tenant_quotas: dict[str, QuotaSpec] = field(default_factory=dict)
    max_disk_bytes: int | None = None
    default_verify: str = "stream"
    #: Filesystem seam under cache + ledger (chaos campaigns inject a
    #: FaultyFilesystem here); None = the real filesystem.
    fs: Filesystem | None = None
    #: A repro.chaos ChaosSchedule driving worker/connection faults;
    #: None = no fault injection (production).
    chaos: object | None = None
    #: Execution attempts per job before it fails terminally.  Attempt
    #: 2+ happens only for transient failures (worker crash, timeout).
    job_attempts: int = 2
    #: Per-attempt wall-clock limit (seconds); None = unlimited.  A
    #: timed-out attempt counts as transient and is retried.
    job_timeout: float | None = None
    #: Per-connection limit on reading the request (slow-loris guard);
    #: exceeded → 408 and the connection is closed.
    read_timeout: float | None = 10.0
    #: Seconds between background cache-scrub steps; None = no scrubber.
    scrub_interval: float | None = None
    #: Files verified per scrub step.
    scrub_batch: int = 16
    #: Directory for the observe JSONL run ledger; one ``server.job``
    #: record (span tree + trace identity) is appended per executed
    #: job.  None = no observe ledger (the durable event ledger under
    #: ``state_dir`` is unaffected either way).
    observe_dir: str | Path | None = None

    def resolved_state_dir(self) -> Path:
        if self.state_dir is not None:
            return Path(self.state_dir)
        return Path(self.cache_dir) / "state"


class JobState:
    """One accepted job: spec, live status, and its event log."""

    __slots__ = (
        "job_id", "job", "tenant", "key", "status", "events", "changed",
        "error", "meta", "cache_hit", "attempts", "created", "wall_seconds",
        "traceparent", "trace_id",
    )

    def __init__(
        self, job_id: str, job: CompressionJob, tenant: str, key: str
    ) -> None:
        self.job_id = job_id
        self.job = job
        self.tenant = tenant
        self.key = key
        self.status = "queued"
        self.events: list[dict] = []
        self.changed = asyncio.Event()
        self.error: str | None = None
        self.meta: dict = {}
        self.cache_hit = False
        self.attempts = 0
        self.created = time.time()
        self.wall_seconds = 0.0
        #: W3C trace identity: the client's ``traceparent`` header when
        #: one arrived with the submit, else minted at admission so
        #: every job is traceable.  Constant across retry attempts.
        self.traceparent: str | None = None
        self.trace_id: str | None = None

    def add_event(self, kind: str, data: dict) -> None:
        """Append one event and wake every SSE stream on this job."""
        self.events.append({"kind": kind, "data": data})
        waiters, self.changed = self.changed, asyncio.Event()
        waiters.set()

    def summary(self) -> dict:
        return {
            "job_id": self.job_id,
            "label": self.job.label,
            "tenant": self.tenant,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "key": self.key,
            "trace_id": self.trace_id,
        }

    def document(self) -> dict:
        return {
            **self.summary(),
            "encoding": self.job.encoding,
            "verify": self.job.verify_level,
            "attempts": self.attempts,
            "error": self.error,
            "meta": dict(self.meta),
            "events": len(self.events),
            "wall_seconds": self.wall_seconds,
        }


@dataclass
class SubmitOutcome:
    """What a submission produced: an accepted job or a refusal."""

    decision: Decision
    state: JobState | None = None
    #: True when an idempotent submit matched an existing live job for
    #: the same (tenant, content key) instead of queueing a new one.
    deduplicated: bool = False

    @property
    def admitted(self) -> bool:
        return self.decision.admitted


def _consume_abandoned(future) -> None:
    """Retrieve (and drop) the result of an abandoned executor future."""
    if not future.cancelled():
        future.exception()


def parse_spec(spec: dict, *, default_verify: str = "stream") -> CompressionJob:
    """Validate an HTTP job spec into a :class:`CompressionJob` (400s)."""
    if not isinstance(spec, dict):
        raise HttpError(400, "job spec must be a JSON object")
    unknown = set(spec) - SPEC_FIELDS
    if unknown:
        raise HttpError(400, f"unknown job fields {sorted(unknown)}")
    merged = {"verify": default_verify, **spec}
    try:
        return CompressionJob(**merged)
    except ServiceError as exc:
        raise HttpError(400, f"invalid job spec: {exc}")


class CompressionServer:
    """The asyncio HTTP front end over the compression service."""

    def __init__(
        self, config: ServerConfig, *, metrics: MetricsRegistry | None = None
    ) -> None:
        self.config = config
        self.metrics = metrics or MetricsRegistry()
        self.cache = ShardedArtifactCache(
            config.cache_dir, config.shards,
            max_disk_bytes=config.max_disk_bytes,
            fs=config.fs,
        )
        self.ledger = JobLedger(
            config.resolved_state_dir(), shards=config.shards,
            fs=config.fs,
        )
        self.admission = AdmissionController(
            default_quota=config.quota,
            tenant_quotas=dict(config.tenant_quotas),
            max_queue_depth=config.max_queue_depth,
        )
        self.router = build_router()
        self.jobs: dict[str, JobState] = {}
        self._by_key: dict[tuple[str, str], str] = {}  # (tenant, key) → job_id
        self.scrubber = CacheScrubber(self.cache)
        self._scrub_task: asyncio.Task | None = None
        self.draining = False
        self._queue: asyncio.Queue[JobState | None] = asyncio.Queue()
        self._workers: list[asyncio.Task] = []
        self._connections: set[asyncio.Task] = set()
        self._server: asyncio.base_events.Server | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, config.concurrency),
            thread_name_prefix="repro-job",
        )
        self._shutdown_event = asyncio.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started_monotonic = time.monotonic()
        self._completed = 0
        self.resumed_jobs = 0

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._started_monotonic = time.monotonic()
        self._resume_interrupted()
        for _ in range(max(1, self.config.concurrency)):
            self._workers.append(asyncio.create_task(self._worker()))
        if self.config.scrub_interval is not None:
            self._scrub_task = asyncio.create_task(self._scrub_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def request_shutdown(self) -> None:
        """Signal-safe shutdown trigger (callable from any thread)."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._shutdown_event.set)

    async def run_until_shutdown(self) -> None:
        await self._shutdown_event.wait()
        await self.shutdown()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting, drain accepted jobs, flush + compact ledger."""
        if self.draining:
            return
        self.draining = True  # submissions now answer 503
        if self._server is not None:
            self._server.close()
        if not drain:
            # Cancel everything still queued (the drained default never
            # does this; accepted work completes).
            pending: list[JobState] = []
            while True:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is not None:
                    pending.append(item)
            for state in pending:
                self._cancel(state, "server shutdown without drain")
        for _ in self._workers:
            self._queue.put_nowait(None)  # sentinel after remaining work
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers.clear()
        # Let in-flight connections (e.g. SSE streams reading the final
        # events) finish before tearing the loop down.
        if self._connections:
            await asyncio.gather(*list(self._connections),
                                 return_exceptions=True)
        if self._scrub_task is not None:
            self._scrub_task.cancel()
            await asyncio.gather(self._scrub_task, return_exceptions=True)
            self._scrub_task = None
        self._executor.shutdown(wait=True)
        try:
            self.ledger.compact()
        except OSError:
            # A failing disk must not block shutdown; the append log
            # still holds everything the compaction would have.
            self.metrics.counter("ledger.write_errors").inc()
        self.ledger.close()
        if self._server is not None:
            await self._server.wait_closed()

    async def _scrub_loop(self) -> None:
        """Low-duty background integrity scan over the artifact store."""
        interval = self.config.scrub_interval or 1.0
        while True:
            await asyncio.sleep(interval)
            before = self.scrubber.report.quarantined
            try:
                self.scrubber.step(self.config.scrub_batch)
            except OSError:
                self.metrics.counter("scrub.errors").inc()
                continue
            found = self.scrubber.report.quarantined - before
            if found:
                self.metrics.counter("scrub.quarantined").inc(found)

    def _ledger_record(self, job_id: str, event: str, **fields) -> None:
        """Ledger append that survives a failing disk.

        The in-memory job table stays authoritative for live clients;
        a lost ledger line costs restart-resumability for that one
        transition, which is strictly better than a worker task dying
        mid-job (that would *lose* the job).
        """
        try:
            self.ledger.record(job_id, event, **fields)
        except OSError:
            self.metrics.counter("ledger.write_errors").inc()

    def _resume_interrupted(self) -> None:
        """Re-queue jobs the previous process accepted but never finished."""
        for record in self.ledger.resumable():
            try:
                job = parse_spec(
                    record.spec, default_verify=self.config.default_verify
                )
            except HttpError as exc:
                self._ledger_record(
                    record.job_id, "failed",
                    error=f"unresumable spec: {exc}",
                )
                continue
            state = JobState(record.job_id, job, record.tenant,
                             record.key or job.content_key())
            self.jobs[state.job_id] = state
            self._by_key[(state.tenant, state.key)] = state.job_id
            state.add_event("queued", {
                "job_id": state.job_id, "tenant": state.tenant,
                "key": state.key, "position": self._queue.qsize(),
                "resumed": True,
            })
            self._queue.put_nowait(state)
            self.metrics.counter("jobs.resumed").inc()
            self.resumed_jobs += 1

    # -- submission ----------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def service_rate(self) -> float:
        elapsed = time.monotonic() - self._started_monotonic
        return self._completed / elapsed if elapsed > 0 else 0.0

    def submit(
        self, spec: dict, tenant: str, *, idempotent: bool = False,
        traceparent: str | None = None,
    ) -> SubmitOutcome:
        if self.draining:
            raise HttpError(503, "server is draining; resubmit elsewhere")
        job = parse_spec(spec, default_verify=self.config.default_verify)
        key = job.content_key()
        if idempotent:
            # A client retrying an ack it never saw must not enqueue the
            # job twice: match on (tenant, content key) against any job
            # that is still live or already done.
            existing_id = self._by_key.get((tenant, key))
            existing = self.jobs.get(existing_id) if existing_id else None
            if existing is not None and existing.status in (
                "queued", "running", "completed"
            ):
                self.metrics.counter("jobs.deduplicated").inc()
                return SubmitOutcome(
                    decision=Decision(admitted=True, reason="deduplicated"),
                    state=existing, deduplicated=True,
                )
        decision = self.admission.admit(
            tenant, self.queue_depth, service_rate=self.service_rate()
        )
        if not decision.admitted:
            name = ("quota.rejected" if decision.reason == "quota"
                    else "queue.rejected")
            self.metrics.counter(name).inc()
            self.metrics.counter("jobs.rejected").inc()
            return SubmitOutcome(decision=decision)
        state = JobState(make_job_id(), job, tenant, key)
        # Admission pins the job's distributed trace identity: a valid
        # client header wins; otherwise the server mints one, so every
        # admitted job is traceable end to end either way.
        parsed = observe.parse_traceparent(traceparent)
        if parsed is not None:
            state.traceparent = traceparent
            state.trace_id = parsed[0]
        else:
            state.trace_id = observe.make_trace_id()
            state.traceparent = observe.format_traceparent(
                state.trace_id, observe.make_span_id()
            )
        self.jobs[state.job_id] = state
        self._by_key[(tenant, key)] = state.job_id
        self._ledger_record(
            state.job_id, "submitted",
            tenant=tenant, key=state.key, spec=dict(spec),
            trace_id=state.trace_id,
        )
        state.add_event("queued", {
            "job_id": state.job_id, "tenant": tenant, "key": state.key,
            "position": self.queue_depth, "trace_id": state.trace_id,
        })
        self._queue.put_nowait(state)
        self.metrics.counter("jobs.submitted").inc()
        self.metrics.counter(f"server.trace.count.{tenant}").inc()
        return SubmitOutcome(decision=decision, state=state)

    def job_state(self, job_id: str) -> JobState:
        state = self.jobs.get(job_id)
        if state is None:
            raise HttpError(404, f"unknown job {job_id}")
        return state

    def job_states(self) -> list[JobState]:
        return list(self.jobs.values())

    # -- execution -----------------------------------------------------
    async def _worker(self) -> None:
        while True:
            state = await self._queue.get()
            if state is None:
                return
            if state.status == "cancelled":
                continue
            try:
                await self._attempt(state)
            except Exception as exc:  # noqa: BLE001 — last-ditch guard
                # A worker task must never die holding a job: that job
                # would be acknowledged and then silently lost, which is
                # exactly the outcome the chaos gate forbids.
                self.metrics.counter("worker.guard_trips").inc()
                self._fail(state, f"internal: {type(exc).__name__}: {exc}")

    async def _attempt(self, state: JobState) -> None:
        state.status = "running"
        state.attempts += 1
        self._ledger_record(state.job_id, "started")
        state.add_event("started", {
            "job_id": state.job_id, "attempt": state.attempts,
        })
        loop = asyncio.get_running_loop()
        try:
            future = loop.run_in_executor(
                self._executor, self._run_job, state.job, state.key,
                state.traceparent,
            )
            if self.config.job_timeout is not None:
                outcome = await asyncio.wait_for(
                    asyncio.shield(future), self.config.job_timeout
                )
            else:
                outcome = await future
        except (TransientError, asyncio.TimeoutError) as exc:
            if not future.done():
                # A timed-out attempt leaves its executor thread running
                # to completion; consume whatever it eventually raises so
                # it cannot leak a never-retrieved-exception warning.
                future.add_done_callback(_consume_abandoned)
            reason = (f"{type(exc).__name__}: {exc}" if str(exc)
                      else "attempt timed out")
            self._retry_or_fail(state, reason)
            return
        except ReproError as exc:
            self._fail(state, f"{type(exc).__name__}: {exc}")
            return
        except Exception as exc:  # noqa: BLE001 — job bug, not server bug
            self._fail(state, f"{type(exc).__name__}: {exc}")
            return
        cache_hit, blob, meta, spans, snapshot, wall = outcome
        self.metrics.merge(snapshot)
        self.metrics.counter(
            "cache.hits" if cache_hit else "cache.misses"
        ).inc()
        if not cache_hit:
            self.cache.put(state.key, blob, meta)
        state.cache_hit = cache_hit
        state.meta = meta
        state.wall_seconds = wall
        state.status = "completed"
        self._completed += 1
        self.metrics.counter("jobs.completed").inc()
        self.metrics.timer("job.wall").observe(wall)
        self.metrics.histogram("job.seconds").observe(wall)
        self._ledger_record(
            state.job_id, "completed", cache_hit=cache_hit, meta=meta,
            wall_seconds=wall,
        )
        self._observe_record(state, spans, wall)
        for event in span_events(state.job_id, spans):
            state.add_event(event["kind"], event["data"])
        state.add_event("completed", {
            "job_id": state.job_id, "cache_hit": cache_hit,
            "wall_seconds": wall, "meta": meta,
            "trace_id": state.trace_id,
        })

    def _observe_record(
        self, state: JobState, spans: list[dict], wall: float
    ) -> None:
        """Append one ``server.job`` record to the observe run ledger.

        Best-effort: the ledger is telemetry, so a full disk or an
        injected filesystem fault here must not fail the job that just
        completed.
        """
        if self.config.observe_dir is None:
            return
        try:
            ledger = observe.RunLedger(self.config.observe_dir)
            ledger.append(observe.make_record(
                "server.job",
                program=state.job.label,
                encoding=state.job.encoding,
                spans=spans,
                wall_seconds=wall,
                trace_id=state.trace_id,
                meta={
                    "process": "server",
                    "job_id": state.job_id,
                    "tenant": state.tenant,
                    "cache_hit": state.cache_hit,
                    "attempts": state.attempts,
                },
            ))
        except Exception:  # noqa: BLE001 — telemetry must not fail jobs
            self.metrics.counter("observe.ledger_errors").inc()

    def _retry_or_fail(self, state: JobState, reason: str) -> None:
        """Requeue a transiently failed attempt, or fail it terminally."""
        if state.attempts >= self.config.job_attempts or self.draining:
            # When draining there are only shutdown sentinels behind us
            # in the queue — requeueing would strand the job (and every
            # SSE stream on it) forever.
            self._fail(state, reason)
            return
        state.status = "queued"
        self.metrics.counter("jobs.retried").inc()
        state.add_event("retrying", {
            "job_id": state.job_id, "attempt": state.attempts,
            "error": reason,
        })
        self._queue.put_nowait(state)

    def _run_job(
        self, job: CompressionJob, key: str, traceparent: str | None = None
    ):
        """Executor-thread body: cache lookup, else compile+compress.

        Returns ``(cache_hit, blob, meta, span_dicts, metrics_snapshot,
        wall_seconds)``.  The observe recorder is installed in this
        thread's context, so the captured span tree is exactly this
        job's — concurrent jobs on other threads never interleave.  The
        job's ``traceparent`` parents the recorded spans under the
        remote (client-side) trace, one trace id across the wire.
        """
        start = time.perf_counter()
        if self.config.chaos is not None:
            # Worker-plane faults: kill (raises immediately), hang
            # (sleeps past job_timeout, then raises — no side effects),
            # slow_start.  Keyed by content key for determinism.
            apply_worker_fault(self.config.chaos, key)
        entry = self.cache.get(key)
        if entry is not None:
            with Recorder() as recorder:
                with observe.remote_context(traceparent):
                    with observe.span(
                        "job", label=job.label, encoding=job.encoding,
                        verify=job.verify_level, cache_hit=True,
                    ):
                        pass
            spans = [root.to_dict() for root in recorder.spans]
            return (True, entry.blob, entry.meta, spans, {},
                    time.perf_counter() - start)
        with Recorder() as recorder:
            with observe.remote_context(traceparent):
                blob, meta, snapshot = execute_job(job)
        spans = [root.to_dict() for root in recorder.spans]
        return (False, blob, meta, spans, snapshot,
                time.perf_counter() - start)

    def _fail(self, state: JobState, error: str) -> None:
        state.status = "failed"
        state.error = error
        self.metrics.counter("jobs.failed").inc()
        if "VerificationError" in error:
            self.metrics.counter("verify.failures").inc()
        self._ledger_record(state.job_id, "failed", error=error)
        state.add_event("failed", {"job_id": state.job_id, "error": error})

    def _cancel(self, state: JobState, reason: str) -> None:
        state.status = "cancelled"
        self.metrics.counter("jobs.cancelled").inc()
        self._ledger_record(state.job_id, "cancelled", reason=reason)
        state.add_event("cancelled", {
            "job_id": state.job_id, "reason": reason,
        })

    async def rederive_artifact(self, state: JobState):
        """Recompute a completed job's artifact after a cache loss.

        Eviction, quarantine, or disk failure between completion and
        download means the bytes are gone — but the spec is not, and
        jobs are deterministic, so the artifact is re-derivable on
        demand.  Returns the fresh cache entry (also re-stored).
        """
        loop = asyncio.get_running_loop()
        blob, meta, snapshot = await loop.run_in_executor(
            self._executor, execute_job, state.job
        )
        self.metrics.merge(snapshot)
        self.metrics.counter("cache.rederived").inc()
        return self.cache.put(state.key, blob, meta)

    # -- chaos (connection plane) --------------------------------------
    def chaos_connection_fault(self, site: str, op: str) -> str | None:
        """Ask the installed schedule for a connection-plane fault.

        Status-document polls are exempt: the client's poll cadence is
        wall-clock-dependent (it polls *until* the job is terminal), so
        faulting that route would advance the schedule's counters a
        timing-dependent number of times and break seed-replay
        determinism.  The plane still covers submit acks, SSE frames,
        and artifact downloads — all of which have deterministic
        request sequences under a serial campaign.
        """
        if self.config.chaos is None or site.endswith(":status"):
            return None
        return self.config.chaos.decide("connection", site, op)

    def _connection_site(self, request, params: dict) -> str:
        """A seed-stable identity for this request (never a uuid)."""
        leaf = request.path.rstrip("/").rsplit("/", 1)[-1]
        job_id = params.get("job_id")
        if job_id is not None:
            if leaf == job_id:
                leaf = "status"  # GET /v1/jobs/{id}: the leaf is the uuid
            state = self.jobs.get(job_id)
            if state is not None:
                return f"{state.key}:{leaf}"
        return request.path

    # -- HTTP ----------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            await self._serve_one(reader, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away mid-response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(self, reader, writer) -> None:
        try:
            if self.config.read_timeout is not None:
                request = await asyncio.wait_for(
                    read_request(reader), self.config.read_timeout
                )
            else:
                request = await read_request(reader)
        except asyncio.TimeoutError:
            # Slow-loris defence: a connection may not hold a reader
            # slot open by dribbling (or never sending) its request.
            self.metrics.counter("http.read_timeouts").inc()
            writer.write(error_response(
                408, "request not received within the read deadline"
            ))
            await writer.drain()
            return
        except HttpError as exc:
            writer.write(error_response(exc.status, str(exc)))
            await writer.drain()
            return
        if request is None:
            return
        self.metrics.counter("http.requests").inc()
        site = request.path
        try:
            handler, params = self.router.resolve(request.method, request.path)
            site = self._connection_site(request, params)
            if handler is handle_events:
                await handler(self, request, params, writer)
                return
            payload = await handler(self, request, params)
        except HttpError as exc:
            payload = error_response(exc.status, str(exc))
        except ReproError as exc:
            payload = error_response(500, f"{type(exc).__name__}: {exc}")
        fault = self.chaos_connection_fault(site, "response")
        if fault == "stall":
            await asyncio.sleep(self.config.chaos.stall_seconds)
        elif fault == "reset":
            # Send a prefix of the response, then hard-reset the socket
            # mid-payload — the client sees a torn read, never an ack it
            # can trust.
            writer.write(payload[: max(1, len(payload) // 2)])
            await writer.drain()
            writer.transport.abort()
            return
        writer.write(payload)
        await writer.drain()

    # -- introspection -------------------------------------------------
    def stats_document(self) -> dict:
        by_status: dict[str, int] = {}
        for state in self.jobs.values():
            by_status[state.status] = by_status.get(state.status, 0) + 1
        cache_stats = self.cache.stats
        snapshot = self.metrics.as_dict()
        wall = self.metrics.timer("job.wall")
        wall_quantiles = wall.percentiles()
        return {
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "draining": self.draining,
            "queue_depth": self.queue_depth,
            "jobs": by_status,
            "resumed": self.resumed_jobs,
            "counters": snapshot["counters"],
            "job_wall": {
                "count": wall.count,
                "quantile_samples": wall_quantiles.pop("count"),
                "mean_seconds": wall.mean_seconds,
                **wall_quantiles,
            },
            "cache": {
                **cache_stats.as_dict(),
                "shards": self.cache.shards,
                "shard_sizes": self.cache.shard_sizes(),
                "disk_bytes": self.cache.disk_bytes(),
                "migrated_artifacts": self.cache.migration.moved,
                "read_only_shards": self.cache.read_only_shards(),
            },
            "scrub": self.scrubber.report.as_dict(),
            "ledger": {
                "recovered_bytes": self.ledger.recovered_bytes,
            },
        }


async def serve(
    config: ServerConfig,
    *,
    ready=None,
    install_signal_handlers: bool = False,
) -> CompressionServer:
    """Start a server, optionally publish readiness, run to shutdown.

    ``ready`` is called with the started :class:`CompressionServer`
    once the socket is bound (the load harness and tests use it to
    learn the ephemeral port).  With ``install_signal_handlers`` the
    loop's SIGTERM/SIGINT trigger the graceful drain path.
    """
    server = CompressionServer(config)
    await server.start()
    if install_signal_handlers:
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # platform without loop signal support
    if ready is not None:
        ready(server)
    await server.run_until_shutdown()
    return server
