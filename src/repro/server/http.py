"""A minimal asyncio HTTP/1.1 layer (stdlib only, no new deps).

Just enough protocol for the compression service: request-line +
headers + ``Content-Length`` bodies in, fixed responses or streamed
``text/event-stream`` responses out, one request per connection
(``Connection: close`` — the clients this serves are job submitters
and SSE listeners, not browsers hammering keep-alive).

The parser is deliberately strict and bounded: header and body size
limits, no chunked *request* bodies, no pipelining.  Anything
malformed raises :class:`HttpError`, which the connection handler in
:mod:`repro.server.app` turns into a plain-text 4xx and a closed
connection.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ServiceError

MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

SERVER_NAME = "repro-server"

REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict", 413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HttpError(ServiceError):
    """A malformed or unserviceable request (maps to one 4xx/5xx)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]  # keys lower-cased
    body: bytes = b""

    def json(self) -> dict:
        """The body as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            document = json.loads(self.body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(document, dict):
            raise HttpError(400, "request body must be a JSON object")
        return document

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = MAX_BODY_BYTES
) -> Request | None:
    """Parse one request; ``None`` on a clean EOF before any bytes."""
    try:
        request_line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request line")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long")
    if len(request_line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version}")

    headers: dict[str, str] = {}
    total = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(400, "truncated headers")
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpError(400, "headers too large")
        if line in (b"\r\n", b"\n"):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding", "").lower() == "chunked":
        raise HttpError(400, "chunked request bodies are not supported")
    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length {length_text!r}")
    if length < 0 or length > max_body:
        raise HttpError(413, f"body of {length} bytes exceeds limit")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "body shorter than Content-Length")

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method.upper(), target=target, path=unquote(split.path),
        query=query, headers=headers, body=body,
    )


def response_head(
    status: int,
    *,
    content_type: str = "application/json",
    content_length: int | None = None,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Status line + headers (+ blank line) for one response."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Server: {SERVER_NAME}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if content_length is not None:
        lines.append(f"Content-Length: {content_length}")
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def response(
    status: int,
    body: bytes | str | dict,
    *,
    content_type: str | None = None,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """One complete response.  Dict bodies are JSON-encoded."""
    if isinstance(body, dict):
        payload = (json.dumps(body, sort_keys=True) + "\n").encode()
        content_type = content_type or "application/json"
    elif isinstance(body, str):
        payload = body.encode()
        content_type = content_type or "text/plain; charset=utf-8"
    else:
        payload = body
        content_type = content_type or "application/octet-stream"
    return response_head(
        status,
        content_type=content_type,
        content_length=len(payload),
        extra_headers=extra_headers,
    ) + payload


def error_response(status: int, message: str) -> bytes:
    return response(status, {"error": message, "status": status})


def sse_head(extra_headers: dict[str, str] | None = None) -> bytes:
    """Response head opening a server-sent-event stream."""
    return response_head(
        200,
        content_type="text/event-stream; charset=utf-8",
        extra_headers={"Cache-Control": "no-store", **(extra_headers or {})},
    )
