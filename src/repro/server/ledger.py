"""The persistent server-side job ledger.

Two files under one state directory, split the way tldr-swinton splits
``manifest.py`` from ``state_store.py``:

* ``manifest.json`` — written **once** when the directory is created:
  the identity of the store (schema version, pipeline version, shard
  count, creation time).  Immutable; a mismatch on open means the
  state directory belongs to an incompatible server build and is
  refused rather than silently reinterpreted.
* ``state.jsonl`` — the **append-only state store**: one JSON line per
  job state transition (``submitted`` → ``started`` → ``completed`` /
  ``failed`` / ``cancelled``).  Appends are flushed eagerly, so the
  ledger survives a SIGKILL mid-batch with at most the final
  in-progress line lost.

Restart semantics
-----------------

:meth:`JobLedger.replay` folds the transition log into one
:class:`JobRecord` per job.  Jobs whose final state is non-terminal
(``submitted``/``started``) were interrupted by the previous shutdown
or crash; :meth:`JobLedger.resumable` hands them back to the server,
which re-queues them from their persisted spec — a restart resumes
cleanly instead of dropping accepted work.

:meth:`JobLedger.compact` rewrites the state store as one ``snapshot``
line per job (atomic temp-file + ``os.replace``), which the graceful
shutdown path runs after draining so the log does not grow without
bound across restarts.

Torn-tail recovery
------------------

A crash mid-append (or a torn disk write) leaves a final line that is
not valid JSON — and, worse, usually has **no trailing newline**, so a
naive append-after-restart would concatenate the next record onto the
torn fragment and corrupt *two* records.  :meth:`JobLedger.recover`
runs before the first post-restart append: it keeps the longest valid
line-prefix of the state store, moves everything after it into
``state.jsonl.quarantine`` (evidence, never replayed), and truncates
the state store to the clean prefix.  All disk I/O goes through the
:class:`repro.service.fsio.Filesystem` seam so chaos campaigns and
crash-point property tests can exercise every one of these write
points.
"""

from __future__ import annotations

import json
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ServiceError
from repro.service.fsio import DEFAULT_FS, Filesystem
from repro.service.jobs import PIPELINE_VERSION

MANIFEST_FILENAME = "manifest.json"
STATE_FILENAME = "state.jsonl"
QUARANTINE_FILENAME = "state.jsonl.quarantine"
LEDGER_SCHEMA = 1

#: Transition events, in lifecycle order.  ``snapshot`` is the
#: compaction pseudo-event carrying a collapsed record.
EVENTS = ("submitted", "started", "completed", "failed", "cancelled",
          "snapshot")
TERMINAL = ("completed", "failed", "cancelled")


def make_job_id() -> str:
    return f"job-{uuid.uuid4().hex[:12]}"


@dataclass
class JobRecord:
    """The folded state of one job, reconstructed from the log."""

    job_id: str
    tenant: str = "default"
    key: str = ""
    spec: dict = field(default_factory=dict)
    status: str = "submitted"
    error: str | None = None
    meta: dict = field(default_factory=dict)
    cache_hit: bool = False
    submitted_unix: float = 0.0
    updated_unix: float = 0.0
    attempts: int = 0

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL

    def as_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "key": self.key,
            "spec": dict(self.spec),
            "status": self.status,
            "error": self.error,
            "meta": dict(self.meta),
            "cache_hit": self.cache_hit,
            "submitted_unix": self.submitted_unix,
            "updated_unix": self.updated_unix,
            "attempts": self.attempts,
        }


class JobLedger:
    """Manifest + append-only state store for server jobs."""

    def __init__(
        self,
        directory: str | Path,
        *,
        shards: int = 0,
        fs: Filesystem | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._shards = shards
        self._handle = None
        self.fs = fs or DEFAULT_FS
        self.recovered_bytes = 0
        self.manifest = self._open_manifest()

    # -- manifest ------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_FILENAME

    @property
    def state_path(self) -> Path:
        return self.directory / STATE_FILENAME

    @property
    def quarantine_path(self) -> Path:
        return self.directory / QUARANTINE_FILENAME

    def _open_manifest(self) -> dict:
        if self.fs.exists(self.manifest_path):
            try:
                manifest = json.loads(self.fs.read_text(self.manifest_path))
            except (OSError, json.JSONDecodeError) as exc:
                raise ServiceError(
                    f"unreadable ledger manifest {self.manifest_path}: {exc}"
                ) from exc
            if manifest.get("schema") != LEDGER_SCHEMA:
                raise ServiceError(
                    f"{self.manifest_path}: unsupported ledger schema "
                    f"{manifest.get('schema')!r}"
                )
            if manifest.get("pipeline_version") != PIPELINE_VERSION:
                raise ServiceError(
                    f"{self.manifest_path}: ledger was written by pipeline "
                    f"version {manifest.get('pipeline_version')!r}, this "
                    f"build is {PIPELINE_VERSION}"
                )
            return manifest
        manifest = {
            "schema": LEDGER_SCHEMA,
            "pipeline_version": PIPELINE_VERSION,
            "shards": self._shards,
            "created_unix": time.time(),
        }
        self.fs.write_atomic(
            self.manifest_path, json.dumps(manifest, sort_keys=True) + "\n"
        )
        return manifest

    # -- state store ---------------------------------------------------
    def recover(self) -> int:
        """Quarantine any torn tail so appends land on a clean prefix.

        Returns the number of bytes moved into the quarantine file
        (0 when the store is already clean).  Idempotent, and safe to
        crash inside: the quarantine append happens before the
        truncate, so a crash between the two at worst re-quarantines
        the same tail on the next recovery.
        """
        try:
            raw = self.fs.read_bytes(self.state_path)
        except OSError:
            return 0
        good_end = 0
        cursor = 0
        while cursor < len(raw):
            newline = raw.find(b"\n", cursor)
            if newline < 0:
                break  # unterminated tail — torn by definition
            line = raw[cursor:newline].strip()
            if line:
                try:
                    json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    break  # first undecodable line; everything after goes
            cursor = newline + 1
            good_end = cursor
        tail = raw[good_end:]
        if not tail:
            return 0
        self.fs.append_bytes(self.quarantine_path, tail)
        self.fs.truncate(self.state_path, good_end)
        self.recovered_bytes += len(tail)
        return len(tail)

    def record(self, job_id: str, event: str, **fields) -> dict:
        """Append one transition line (flushed before returning)."""
        if event not in EVENTS:
            raise ServiceError(f"unknown ledger event {event!r}")
        line = {"job_id": job_id, "event": event, "unix_time": time.time(),
                **fields}
        if self._handle is None:
            # First append since open: clear any torn tail left by a
            # crash, or this line would concatenate onto the fragment.
            self.recover()
            self._handle = self.fs.open_append(self.state_path)
        self._handle.write(json.dumps(line, sort_keys=True) + "\n")
        self._handle.flush()
        return line

    def _read_lines(self) -> list[dict]:
        if not self.fs.exists(self.state_path):
            return []
        lines = []
        for raw in self.fs.read_text(self.state_path).splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                lines.append(json.loads(raw))
            except json.JSONDecodeError:
                # A torn final line from a crash mid-append is expected;
                # anything else is still not worth refusing to start over.
                continue
        return lines

    def replay(self) -> dict[str, JobRecord]:
        """Fold the transition log into per-job records, log order."""
        records: dict[str, JobRecord] = {}
        for line in self._read_lines():
            job_id = line.get("job_id")
            event = line.get("event")
            if not isinstance(job_id, str) or event not in EVENTS:
                continue
            if event == "snapshot":
                snap = line.get("record", {})
                if isinstance(snap, dict) and snap.get("job_id") == job_id:
                    records[job_id] = JobRecord(**{
                        k: v for k, v in snap.items()
                        if k in JobRecord.__dataclass_fields__
                    })
                continue
            record = records.get(job_id)
            if record is None:
                record = records[job_id] = JobRecord(job_id=job_id)
                record.submitted_unix = line.get("unix_time", 0.0)
            record.status = event
            record.updated_unix = line.get("unix_time", 0.0)
            if event == "submitted":
                record.tenant = line.get("tenant", record.tenant)
                record.key = line.get("key", record.key)
                spec = line.get("spec")
                if isinstance(spec, dict):
                    record.spec = spec
            elif event == "started":
                record.attempts += 1
            elif event == "completed":
                record.cache_hit = bool(line.get("cache_hit", False))
                meta = line.get("meta")
                if isinstance(meta, dict):
                    record.meta = meta
            elif event == "failed":
                record.error = line.get("error")
        return records

    def resumable(self) -> list[JobRecord]:
        """Interrupted jobs (accepted but not finished), oldest first."""
        records = [r for r in self.replay().values() if not r.terminal]
        records.sort(key=lambda r: r.submitted_unix)
        return records

    # -- maintenance ---------------------------------------------------
    def compact(self) -> int:
        """Rewrite the state store as one snapshot line per job.

        Returns the number of jobs kept.  Atomic: readers either see
        the old log or the compacted one, never a truncated file.
        """
        records = self.replay()
        text = "".join(
            json.dumps(
                {"job_id": record.job_id, "event": "snapshot",
                 "unix_time": time.time(), "record": record.as_dict()},
                sort_keys=True,
            ) + "\n"
            for record in records.values()
        )
        self.close()
        self.fs.write_atomic(self.state_path, text)
        return len(records)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None
