"""Per-tenant token-bucket quotas and queue-depth admission control.

Every submission passes through one :class:`AdmissionController`
check, which can refuse it for two independent reasons:

* **tenant quota** — each tenant owns a :class:`TokenBucket`
  (``rate`` tokens/second refill, ``burst`` capacity).  A submission
  costs one token; an empty bucket means *this tenant* is over its
  sustained rate and is told to come back when the next token accrues
  (``Retry-After``), while other tenants are unaffected — one noisy
  tenant cannot starve the fleet;
* **queue depth** — when the server-wide pending queue is at
  ``max_queue_depth`` the server is saturated regardless of who asks,
  and every submission is refused with a ``Retry-After`` derived from
  the observed service rate.

Both refusals map to HTTP 429 with a ``Retry-After`` header; the
distinction is carried in the decision's ``reason`` so clients and
metrics can tell back-off-you (quota) from back-off-everyone
(overload) apart.

Buckets take an injectable clock so tests (and the deterministic load
harness) can step time explicitly.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field


@dataclass
class QuotaSpec:
    """One tenant's sustained rate and burst allowance."""

    rate: float  # tokens (submissions) per second
    burst: int  # bucket capacity

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"quota rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"quota burst must be >= 1, got {self.burst}")


class TokenBucket:
    """Classic token bucket: continuous refill, integer spend."""

    def __init__(self, spec: QuotaSpec, *, clock=time.monotonic) -> None:
        self.spec = spec
        self._clock = clock
        self._tokens = float(spec.burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(
            float(self.spec.burst), self._tokens + elapsed * self.spec.rate
        )
        self._updated = now

    def try_acquire(self, cost: float = 1.0) -> tuple[bool, float]:
        """Spend ``cost`` tokens if available.

        Returns ``(acquired, retry_after_seconds)`` — ``retry_after``
        is 0 on success, otherwise the time until the bucket holds
        ``cost`` tokens again.
        """
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= cost:
                self._tokens -= cost
                return True, 0.0
            return False, (cost - self._tokens) / self.spec.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


@dataclass
class Decision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str = "admitted"  # admitted | quota | queue_full
    retry_after: float = 0.0
    tenant: str = "default"

    @property
    def retry_after_header(self) -> str:
        """Integer seconds, rounded up, never below 1 (RFC 9110 form)."""
        return str(max(1, math.ceil(self.retry_after)))


@dataclass
class AdmissionController:
    """Tenant token buckets + one server-wide queue-depth gate."""

    default_quota: QuotaSpec = field(
        default_factory=lambda: QuotaSpec(rate=20.0, burst=40)
    )
    tenant_quotas: dict[str, QuotaSpec] = field(default_factory=dict)
    max_queue_depth: int = 64
    clock: object = time.monotonic

    def __post_init__(self) -> None:
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                spec = self.tenant_quotas.get(tenant, self.default_quota)
                bucket = self._buckets[tenant] = TokenBucket(
                    spec, clock=self.clock
                )
            return bucket

    def admit(
        self, tenant: str, queue_depth: int, *, service_rate: float = 0.0
    ) -> Decision:
        """Check one submission: queue-depth gate first, then quota.

        ``service_rate`` (jobs/second actually completing) shapes the
        overload ``Retry-After``: with the queue full, the honest wait
        is one queue-drain interval, not a constant.
        """
        if queue_depth >= self.max_queue_depth:
            drain = (
                queue_depth / service_rate if service_rate > 0 else 1.0
            )
            return Decision(
                admitted=False, reason="queue_full",
                retry_after=min(drain, 60.0), tenant=tenant,
            )
        acquired, retry_after = self.bucket(tenant).try_acquire()
        if not acquired:
            return Decision(
                admitted=False, reason="quota", retry_after=retry_after,
                tenant=tenant,
            )
        return Decision(admitted=True, tenant=tenant)


def parse_quota(text: str) -> QuotaSpec:
    """Parse ``RATE`` or ``RATE:BURST`` (CLI form) into a spec."""
    rate_text, _, burst_text = text.partition(":")
    try:
        rate = float(rate_text)
        burst = int(burst_text) if burst_text else max(1, math.ceil(rate))
        return QuotaSpec(rate=rate, burst=burst)
    except ValueError as exc:
        raise ValueError(f"malformed quota {text!r} (want RATE[:BURST])") from exc


def parse_tenant_quota(text: str) -> tuple[str, QuotaSpec]:
    """Parse ``TENANT=RATE[:BURST]`` (repeatable CLI option)."""
    tenant, sep, quota_text = text.partition("=")
    if not sep or not tenant:
        raise ValueError(
            f"malformed tenant quota {text!r} (want TENANT=RATE[:BURST])"
        )
    return tenant, parse_quota(quota_text)
