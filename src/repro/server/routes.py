"""HTTP routes for the compression server.

==========  =========================  =====================================
method      path                       behaviour
==========  =========================  =====================================
GET         ``/healthz``               liveness: ``{"status": "ok"}``
GET         ``/v1/stats``              metrics counters, cache + queue state
GET         ``/metrics``               Prometheus text exposition
POST        ``/v1/jobs``               submit one job → 202, or 429/503
GET         ``/v1/jobs``               job summaries (``?tenant=`` filter)
GET         ``/v1/jobs/{id}``          one job's status document
GET         ``/v1/jobs/{id}/events``   SSE progress stream (span-derived)
GET         ``/v1/jobs/{id}/artifact`` the finished ``.rcim`` blob
==========  =========================  =====================================

Submission carries the tenant in the ``X-Repro-Tenant`` header (or a
``"tenant"`` body field; header wins).  A 429 response always carries
``Retry-After`` plus a JSON body naming the reason (``quota`` — this
tenant is over its token-bucket rate; ``queue_full`` — the server-wide
admission queue is saturated).

Sending the ``X-Repro-Idempotency-Key`` header (any non-empty value)
makes submission idempotent per (tenant, content key): a client
re-submitting after a torn 202 gets the already-queued/completed job
back (``"deduplicated": true`` in the body) instead of a duplicate.
"""

from __future__ import annotations

import asyncio

from repro.observe import prometheus_snapshot
from repro.server.http import HttpError, Request, error_response, response, sse_head
from repro.server.sse import TERMINAL_EVENTS, format_event

TENANT_HEADER = "x-repro-tenant"
IDEMPOTENCY_HEADER = "x-repro-idempotency-key"
#: W3C trace-context header; a valid value parents the server-side job
#: span under the client's trace, one trace id across the wire.
TRACEPARENT_HEADER = "traceparent"


class Router:
    """Literal-and-``{param}`` segment matcher, method-aware."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, tuple[str, ...], object]] = []

    def add(self, method: str, pattern: str, handler) -> None:
        self._routes.append(
            (method.upper(), tuple(pattern.strip("/").split("/")), handler)
        )

    def resolve(self, method: str, path: str):
        """Return ``(handler, params)`` or raise 404/405."""
        segments = tuple(path.strip("/").split("/"))
        allowed: set[str] = set()
        for route_method, route_segments, handler in self._routes:
            params = _match(route_segments, segments)
            if params is None:
                continue
            if route_method != method.upper():
                allowed.add(route_method)
                continue
            return handler, params
        if allowed:
            raise HttpError(
                405, f"{method} not allowed here (try {sorted(allowed)})"
            )
        raise HttpError(404, f"no route for {path}")


def _match(pattern: tuple[str, ...], segments: tuple[str, ...]):
    if len(pattern) != len(segments):
        return None
    params: dict[str, str] = {}
    for expected, actual in zip(pattern, segments):
        if expected.startswith("{") and expected.endswith("}"):
            if not actual:
                return None
            params[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return params


def build_router() -> Router:
    router = Router()
    router.add("GET", "/healthz", handle_health)
    router.add("GET", "/v1/stats", handle_stats)
    router.add("GET", "/metrics", handle_prometheus)
    router.add("POST", "/v1/jobs", handle_submit)
    router.add("GET", "/v1/jobs", handle_list)
    router.add("GET", "/v1/jobs/{job_id}", handle_status)
    router.add("GET", "/v1/jobs/{job_id}/events", handle_events)
    router.add("GET", "/v1/jobs/{job_id}/artifact", handle_artifact)
    return router


def _tenant(request: Request, body: dict) -> str:
    tenant = request.header(TENANT_HEADER) or body.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise HttpError(400, "tenant must be a non-empty string")
    return tenant


# ----------------------------------------------------------------------
# Handlers.  Each receives (server, request, params) and returns the
# complete response bytes — except the SSE handler, which streams to
# the writer it is given and returns None.
# ----------------------------------------------------------------------
async def handle_health(server, request: Request, params: dict) -> bytes:
    return response(200, {
        "status": "draining" if server.draining else "ok",
        "jobs_queued": server.queue_depth,
    })


async def handle_stats(server, request: Request, params: dict) -> bytes:
    return response(200, server.stats_document())


async def handle_prometheus(server, request: Request, params: dict) -> bytes:
    return response(
        200, prometheus_snapshot(server.metrics),
        content_type="text/plain; version=0.0.4; charset=utf-8",
    )


async def handle_submit(server, request: Request, params: dict) -> bytes:
    body = request.json()
    tenant = _tenant(request, body)
    spec = {k: v for k, v in body.items() if k != "tenant"}
    idempotent = bool(request.header(IDEMPOTENCY_HEADER))
    outcome = server.submit(
        spec, tenant, idempotent=idempotent,
        traceparent=request.header(TRACEPARENT_HEADER),
    )
    if not outcome.admitted:
        return response(
            429,
            {
                "error": "submission refused",
                "reason": outcome.decision.reason,
                "tenant": tenant,
                "retry_after": outcome.decision.retry_after,
            },
            extra_headers={"Retry-After": outcome.decision.retry_after_header},
        )
    state = outcome.state
    return response(202, {
        "job_id": state.job_id,
        "key": state.key,
        "status": state.status,
        "tenant": state.tenant,
        "deduplicated": outcome.deduplicated,
        "trace_id": state.trace_id,
        "events_url": f"/v1/jobs/{state.job_id}/events",
    })


async def handle_list(server, request: Request, params: dict) -> bytes:
    tenant = request.query.get("tenant")
    jobs = [
        state.summary() for state in server.job_states()
        if tenant is None or state.tenant == tenant
    ]
    return response(200, {"jobs": jobs, "count": len(jobs)})


async def handle_status(server, request: Request, params: dict) -> bytes:
    state = server.job_state(params["job_id"])
    return response(200, state.document())


async def handle_artifact(server, request: Request, params: dict) -> bytes:
    state = server.job_state(params["job_id"])
    if state.status != "completed":
        raise HttpError(
            409, f"job {state.job_id} is {state.status}, artifact not ready"
        )
    entry = server.cache.get(state.key)
    if entry is None:
        # Evicted, quarantined, or lost to a failing disk — the job is
        # deterministic and its spec is in hand, so recompute instead of
        # making the client resubmit.
        entry = await server.rederive_artifact(state)
    if entry is None:
        raise HttpError(404, f"artifact {state.key} evicted from cache")
    return response(
        200, entry.blob,
        content_type="application/octet-stream",
        extra_headers={"X-Repro-Content-Key": state.key},
    )


async def handle_events(server, request: Request, params: dict, writer) -> None:
    """Stream a job's event log as SSE until it reaches a terminal event.

    Honors ``Last-Event-ID`` (or ``?after=``) so a reconnecting client
    resumes after the last frame it saw.
    """
    state = server.job_state(params["job_id"])
    after_text = request.header("last-event-id") or request.query.get("after", "")
    try:
        cursor = int(after_text) + 1 if after_text else 0
    except ValueError:
        raise HttpError(400, f"bad Last-Event-ID {after_text!r}")
    writer.write(sse_head())
    await writer.drain()
    server.metrics.counter("sse.streams").inc()
    sse_site = f"{state.key}:events"
    while True:
        events = state.events
        while cursor < len(events):
            event = events[cursor]
            fault = server.chaos_connection_fault(sse_site, "sse-event")
            if fault == "reset":
                # Kill the stream mid-flight: flush everything delivered
                # so far, land half of this frame (a torn event the
                # client must not commit), then close.  A FIN — not an
                # RST — on purpose: an abort() can discard bytes already
                # sitting in the client's receive buffer, which would
                # make the resume cursor depend on read timing and break
                # seed-replay determinism.  The client sees EOF with no
                # terminal event and resumes via Last-Event-ID from the
                # frame before this one.
                frame = format_event(event["kind"], event["data"], cursor)
                writer.write(frame[: max(1, len(frame) // 2)])
                await writer.drain()
                return
            if fault == "stall":
                await asyncio.sleep(server.config.chaos.stall_seconds)
            writer.write(format_event(event["kind"], event["data"], cursor))
            cursor += 1
            if event["kind"] in TERMINAL_EVENTS:
                await writer.drain()
                return
        await writer.drain()
        changed = state.changed
        try:
            await asyncio.wait_for(changed.wait(), timeout=30.0)
        except asyncio.TimeoutError:
            writer.write(b": keep-alive\n\n")  # SSE comment frame


def dispatch_error(exc: HttpError) -> bytes:
    return error_response(exc.status, str(exc))
