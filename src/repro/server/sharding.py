"""Content-key sharding for the artifact store.

The server's artifact cache is a :class:`ShardedArtifactCache`: N
independent :class:`~repro.service.cache.ArtifactCache` stores under
one root, with every content key routed to exactly one shard by a
prefix of its SHA-256 hex digest::

    <root>/shards.json            # layout manifest {"version", "shards"}
    <root>/shard-00/<k[:2]>/<key>.rcc
    <root>/shard-01/...

Why shard at all?  Each shard is an independent directory tree with
its own LRU memory front, eviction scan, and (in the server) its own
lock — so concurrent jobs landing on different shards never contend,
directory listings stay short as the store grows, and a shard
directory is the natural unit to place on separate disks or nodes
later.  SHA-256 keys are uniformly distributed, so the prefix route
balances shards without any placement table (the chi-squared balance
test in ``tests/server/test_sharding.py`` pins this).

Layout migration
----------------

:func:`migrate_layout` upgrades a cache root *in place*, atomically
per artifact (``os.replace`` within one filesystem):

* an **unsharded** root — the historical
  ``<root>/<key[:2]>/<key>.rcc`` layout written by
  :class:`~repro.service.cache.ArtifactCache` — has every artifact
  moved into its shard;
* a sharded root whose ``shards.json`` names a **different shard
  count** is re-sharded the same way.

Opening a :class:`ShardedArtifactCache` runs the migration
automatically, so pointing the server at a pre-existing ``repro-serve``
cache directory transparently upgrades it and every cached artifact
stays warm.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ServiceError
from repro.service.cache import ArtifactCache, CacheEntry, CacheStats
from repro.service.fsio import DEFAULT_FS, Filesystem

LAYOUT_FILENAME = "shards.json"
LAYOUT_VERSION = 1

#: Hex digits of the content key consumed by the shard route.  8 hex
#: digits = 32 bits, far more granularity than any plausible shard
#: count while staying cheap to parse.
_ROUTE_PREFIX = 8


def shard_index(key: str, shards: int) -> int:
    """Map a content key to its shard: uniform over SHA-256 prefixes."""
    if shards < 1:
        raise ServiceError(f"shard count must be >= 1, got {shards}")
    try:
        prefix = int(key[:_ROUTE_PREFIX], 16)
    except ValueError as exc:
        raise ServiceError(f"malformed content key {key!r}") from exc
    return prefix % shards


def shard_name(index: int) -> str:
    return f"shard-{index:02d}"


@dataclass
class MigrationReport:
    """What :func:`migrate_layout` did to a cache root."""

    moved: int = 0
    from_shards: int | None = None  # None: legacy unsharded layout
    to_shards: int = 0

    @property
    def migrated(self) -> bool:
        return self.moved > 0 or self.from_shards != self.to_shards


def read_layout(root: str | Path) -> dict | None:
    """The layout manifest, or ``None`` for a fresh/legacy root."""
    path = Path(root) / LAYOUT_FILENAME
    if not path.exists():
        return None
    try:
        layout = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ServiceError(f"unreadable shard layout {path}: {exc}") from exc
    if layout.get("version") != LAYOUT_VERSION:
        raise ServiceError(
            f"{path}: unsupported layout version {layout.get('version')!r}"
        )
    return layout


def _write_layout(root: Path, shards: int, fs: Filesystem) -> None:
    fs.write_atomic(
        root / LAYOUT_FILENAME,
        json.dumps({"version": LAYOUT_VERSION, "shards": shards}) + "\n",
    )


def _artifact_files(root: Path, *, sharded_under: int | None) -> list[Path]:
    """Every ``.rcc`` file in the given layout."""
    if sharded_under is None:
        return [p for p in root.glob("[0-9a-f][0-9a-f]/*.rcc") if p.is_file()]
    files: list[Path] = []
    for index in range(sharded_under):
        files.extend(
            p for p in (root / shard_name(index)).glob("*/*.rcc")
            if p.is_file()
        )
    return files


def migrate_layout(
    root: str | Path, shards: int, fs: Filesystem | None = None
) -> MigrationReport:
    """One-shot, idempotent layout upgrade of ``root`` to ``shards``.

    Handles both the legacy unsharded layout and a sharded layout with
    a different shard count.  Every move is a same-filesystem
    ``os.replace`` (atomic; last writer wins on a key that exists in
    both places, which is safe because entries are content-addressed —
    both copies hold identical bytes).  A crash at any point leaves a
    root that the next migration run finishes: artifacts live in either
    the old spot or the new one, never neither, and the layout manifest
    is only rewritten after every move landed.
    """
    fs = fs or DEFAULT_FS
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    layout = read_layout(root)
    current = layout["shards"] if layout else None
    report = MigrationReport(from_shards=current, to_shards=shards)
    if current == shards:
        return report
    for path in _artifact_files(root, sharded_under=current):
        key = path.stem
        target = (
            root / shard_name(shard_index(key, shards)) / key[:2] / path.name
        )
        if target == path:
            continue
        fs.mkdir(target.parent)
        try:
            fs.replace(path, target)
        except OSError:
            continue  # concurrently evicted — nothing to migrate
        report.moved += 1
    # Drop now-empty legacy/old-shard directories (best effort).
    prune = (
        [d for d in root.glob("[0-9a-f][0-9a-f]") if d.is_dir()]
        if current is None
        else [root / shard_name(i) for i in range(current) if i >= shards]
    )
    for directory in prune:
        for child in sorted(directory.glob("**/*"), reverse=True):
            if child.is_dir():
                try:
                    fs.rmdir(child)
                except OSError:
                    pass
        try:
            fs.rmdir(directory)
        except OSError:
            pass
    _write_layout(root, shards, fs)
    return report


class ShardedArtifactCache:
    """N content-key-routed :class:`ArtifactCache` shards under one root.

    Presents the same ``get``/``put``/``in``/``len`` surface as a
    single :class:`ArtifactCache`.  Thread-safe: the server's executor
    threads and the event loop share one instance; each shard carries
    its own lock, so contention is per-shard, not global.
    """

    def __init__(
        self,
        root: str | Path,
        shards: int = 4,
        *,
        max_disk_bytes: int | None = None,
        memory_entries: int = 64,
        fs: Filesystem | None = None,
    ) -> None:
        if shards < 1:
            raise ServiceError(f"shard count must be >= 1, got {shards}")
        self.root = Path(root)
        self.shards = shards
        self.fs = fs or DEFAULT_FS
        self.migration = migrate_layout(self.root, shards, self.fs)
        per_shard_budget = (
            max(1, max_disk_bytes // shards)
            if max_disk_bytes is not None
            else None
        )
        self._shards = [
            ArtifactCache(
                self.root / shard_name(index),
                max_disk_bytes=per_shard_budget,
                memory_entries=max(1, memory_entries // shards),
                fs=self.fs,
            )
            for index in range(shards)
        ]
        self._locks = [threading.Lock() for _ in range(shards)]

    # ------------------------------------------------------------------
    def _shard(self, key: str) -> tuple[ArtifactCache, threading.Lock]:
        index = shard_index(key, self.shards)
        return self._shards[index], self._locks[index]

    def shard_of(self, key: str) -> int:
        return shard_index(key, self.shards)

    # ------------------------------------------------------------------
    def get(self, key: str) -> CacheEntry | None:
        shard, lock = self._shard(key)
        with lock:
            return shard.get(key)

    def put(self, key: str, blob: bytes, meta: dict | None = None) -> CacheEntry:
        shard, lock = self._shard(key)
        with lock:
            return shard.put(key, blob, meta)

    def __contains__(self, key: str) -> bool:
        shard, lock = self._shard(key)
        with lock:
            return key in shard

    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Aggregated statistics across every shard."""
        total = CacheStats()
        for shard in self._shards:
            for spec in dataclasses.fields(CacheStats):
                setattr(
                    total,
                    spec.name,
                    getattr(total, spec.name) + getattr(shard.stats, spec.name),
                )
        return total

    def read_only_shards(self) -> int:
        """How many shards are currently in degraded read-only mode."""
        return sum(1 for shard in self._shards if shard.read_only)

    def iter_shards(self):
        """The underlying per-shard caches (for the scrubber)."""
        return tuple(self._shards)

    def shard_sizes(self) -> list[int]:
        """Artifact count per shard (the balance the tests check)."""
        return [len(shard) for shard in self._shards]

    def disk_bytes(self) -> int:
        return sum(shard.disk_bytes() for shard in self._shards)

    def clear(self) -> None:
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                shard.clear()

    def __len__(self) -> int:
        return sum(self.shard_sizes())
