"""Server-sent events derived from the observe span trees.

Each job's progress stream is a standard ``text/event-stream``:
``id:`` is the event's position in the job's event log (so a client
that reconnects with ``Last-Event-ID`` can resume without duplicates),
``event:`` is the kind, ``data:`` is one JSON object.

Event kinds, in the order a job emits them::

    queued     {"job_id", "tenant", "key", "position"}
    started    {"job_id", "attempt"}
    stage      {"job_id", "name", "seq", "duration_us", "attrs"}
    completed  {"job_id", "cache_hit", "wall_seconds", "meta"}
    failed     {"job_id", "error"}
    cancelled  {"job_id", "reason"}

``stage`` events are **derived from the span tree** the job's run
produced (:mod:`repro.observe`): one event per span, in span order —
depth-first over the tree, i.e. exactly the order the stages started.
The span's name and attributes come through verbatim, so a cache-hit
job streams its single ``job`` span with ``"cache_hit": true`` and a
built job streams ``job`` → ``compile`` → ``dict_build`` → … with
``"cache_hit": false``, the same shape ``repro-observe`` would show.
"""

from __future__ import annotations

import json

from repro.observe import Span

#: Kinds that end a stream: after one of these, the server closes the
#: SSE response and pollers may stop.
TERMINAL_EVENTS = ("completed", "failed", "cancelled")


def format_event(kind: str, data: dict, event_id: int | None = None) -> bytes:
    """Render one SSE frame (``id``/``event``/``data`` + blank line)."""
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append(f"event: {kind}")
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    for chunk in payload.splitlines() or [""]:
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode()


def span_events(job_id: str, spans: list[Span | dict]) -> list[dict]:
    """One ``stage`` event per span, depth-first (= start order).

    Accepts live :class:`Span` objects or their ``to_dict`` forms (the
    ledger/serialized shape), so replayed jobs stream identically.
    """
    events: list[dict] = []
    seq = 0

    def emit(node: dict) -> None:
        nonlocal seq
        events.append({
            "kind": "stage",
            "data": {
                "job_id": job_id,
                "name": node["name"],
                "seq": seq,
                "duration_us": node.get("duration_us"),
                "attrs": node.get("attrs", {}),
            },
        })
        seq += 1
        for child in node.get("children", []):
            emit(child)

    for root in spans:
        emit(root.to_dict() if isinstance(root, Span) else root)
    return events


def parse_stream(raw: bytes) -> list[dict]:
    """Parse an event-stream body back into ``{kind, id?, data}`` dicts.

    The inverse of :func:`format_event`; used by the load harness and
    the tests (and handy for any stdlib-only client).
    """
    events = []
    for frame in raw.decode().split("\n\n"):
        kind, event_id, data_lines = None, None, []
        for line in frame.splitlines():
            if line.startswith("event:"):
                kind = line[len("event:"):].strip()
            elif line.startswith("id:"):
                event_id = int(line[len("id:"):].strip())
            elif line.startswith("data:"):
                data_lines.append(line[len("data:"):].strip())
        if kind is None:
            continue
        event: dict = {"kind": kind}
        if event_id is not None:
            event["id"] = event_id
        if data_lines:
            event["data"] = json.loads("\n".join(data_lines))
        events.append(event)
    return events
