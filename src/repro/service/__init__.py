"""Batch compression service: jobs in, cached artifacts out.

This layer turns the library's single-shot compile→compress→verify
call chain into a *service* shape:

* :mod:`repro.service.jobs` — :class:`CompressionJob`, a declarative
  work item with a deterministic content key;
* :mod:`repro.service.cache` — :class:`ArtifactCache`, a
  content-addressed on-disk ``.rcim`` store (atomic writes, LRU
  memory front, size-budget eviction, corruption quarantine);
* :mod:`repro.service.pool` — :func:`run_batch`, per-job worker
  processes with timeout, crash retry, and an in-process fallback;
* :mod:`repro.service.metrics` — :class:`MetricsRegistry`, counters/
  timers/histograms wired into the pipeline's
  :mod:`repro.observe` stage marks.

Typical use::

    from repro.service import ArtifactCache, CompressionJob, run_batch

    jobs = [CompressionJob(benchmark=name, encoding="nibble")
            for name in BENCHMARK_NAMES]
    cache = ArtifactCache("~/.cache/repro")
    results = run_batch(jobs, cache=cache, processes=4)

The ``repro-serve`` CLI (:mod:`repro.tools.serve_cli`) exposes the
same pipeline for manifests of sources and workloads.
"""

from repro.service.cache import (
    ArtifactCache,
    CacheCorruptionError,
    CacheEntry,
    CacheStats,
)
from repro.service.jobs import PIPELINE_VERSION, CompressionJob
from repro.service.metrics import Counter, Histogram, MetricsRegistry, Timer
from repro.service.pool import JobResult, execute_job, run_batch

__all__ = [
    "ArtifactCache",
    "CacheCorruptionError",
    "CacheEntry",
    "CacheStats",
    "CompressionJob",
    "Counter",
    "Histogram",
    "JobResult",
    "MetricsRegistry",
    "PIPELINE_VERSION",
    "Timer",
    "execute_job",
    "run_batch",
]
