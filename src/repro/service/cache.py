"""Content-addressed on-disk artifact store for compressed images.

Layout: ``<root>/<key[:2]>/<key>.rcc`` where ``key`` is the job's
SHA-256 content key (:meth:`repro.service.jobs.CompressionJob.content_key`).
Each file is an ``RCC1`` envelope around the raw ``.rcim`` blob plus a
small JSON metadata record (original size, instruction count, build
wall time — whatever the producer wants to remember):

=========  ====================================================
field      contents
=========  ====================================================
magic      ``b"RCC1"``
sha256     32 bytes over everything after this field
meta       u32 length + UTF-8 JSON object
blob       u32 length + ``.rcim`` bytes
=========  ====================================================

Guarantees:

* **atomic writes** — entries are written to a temp file in the same
  directory and ``os.replace``-d into place, so readers never observe
  a half-written artifact, including across processes;
* **lock-free concurrent writers** — two processes storing the same
  key race benignly: both ``os.replace`` a complete envelope and the
  last writer wins (entries are content-addressed, so both envelopes
  hold identical artifacts).  Every path that ``stat``s, touches, or
  unlinks a file tolerates the file vanishing underneath it, because
  a concurrent process may evict or quarantine at any moment;
* **corruption detection** — the envelope hash is verified on every
  read; a mismatch (or truncation) raises
  :class:`CacheCorruptionError`, and :meth:`ArtifactCache.get`
  quarantines the bad file and reports a miss instead of crashing the
  batch;
* **LRU memory front** — the most recently used entries stay parsed
  in memory (``memory_entries`` of them), so the hot path of a warm
  batch never touches disk;
* **size-budget eviction** — when ``max_disk_bytes`` is set, the
  least recently *used* entries (by file mtime, refreshed on read)
  are deleted until the store fits.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.image import CompressedImage
from repro.errors import ServiceError

CACHE_MAGIC = b"RCC1"


def _safe_stat(path: Path) -> os.stat_result | None:
    """``stat`` that treats a concurrently deleted file as absent."""
    try:
        return path.stat()
    except OSError:
        return None


class CacheCorruptionError(ServiceError):
    """A cache file failed its integrity check."""


@dataclass
class CacheEntry:
    """One stored artifact: the raw image blob plus its metadata."""

    key: str
    blob: bytes
    meta: dict = field(default_factory=dict)

    def image(self) -> CompressedImage:
        return CompressedImage.from_bytes(self.blob)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corruptions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corruptions": self.corruptions,
            "hit_rate": self.hit_rate,
        }


def encode_entry(blob: bytes, meta: dict) -> bytes:
    """Serialize one cache file (``RCC1`` envelope)."""
    meta_bytes = json.dumps(meta, sort_keys=True).encode()
    body = (
        struct.pack(">I", len(meta_bytes))
        + meta_bytes
        + struct.pack(">I", len(blob))
        + blob
    )
    return CACHE_MAGIC + hashlib.sha256(body).digest() + body


def decode_entry(key: str, raw: bytes) -> CacheEntry:
    """Parse + integrity-check one cache file."""
    header = len(CACHE_MAGIC) + 32
    if len(raw) < header or raw[:4] != CACHE_MAGIC:
        raise CacheCorruptionError(f"cache entry {key}: bad envelope magic")
    body = raw[header:]
    if hashlib.sha256(body).digest() != raw[4:header]:
        raise CacheCorruptionError(f"cache entry {key}: digest mismatch")
    try:
        meta_len = struct.unpack(">I", body[:4])[0]
        meta = json.loads(body[4 : 4 + meta_len].decode())
        offset = 4 + meta_len
        blob_len = struct.unpack(">I", body[offset : offset + 4])[0]
        blob = body[offset + 4 : offset + 4 + blob_len]
        if len(blob) != blob_len:
            raise ValueError("short blob")
    except (ValueError, struct.error) as exc:
        raise CacheCorruptionError(f"cache entry {key}: malformed body") from exc
    return CacheEntry(key=key, blob=blob, meta=meta)


class ArtifactCache:
    """Content-addressed ``.rcim`` store with an in-memory LRU front."""

    def __init__(
        self,
        root: str | Path,
        max_disk_bytes: int | None = None,
        memory_entries: int = 64,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_disk_bytes = max_disk_bytes
        self.memory_entries = memory_entries
        self.stats = CacheStats()
        self._memory: OrderedDict[str, CacheEntry] = OrderedDict()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.rcc"

    def __contains__(self, key: str) -> bool:
        return key in self._memory or self._path(key).exists()

    # ------------------------------------------------------------------
    def get(self, key: str) -> CacheEntry | None:
        """Fetch an entry, or ``None`` on miss (including quarantined
        corruption)."""
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return entry
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            entry = decode_entry(key, raw)
        except CacheCorruptionError:
            self.stats.corruptions += 1
            self.stats.misses += 1
            path.unlink(missing_ok=True)
            return None
        try:
            os.utime(path)  # refresh recency for LRU eviction
        except OSError:
            pass  # concurrently evicted; the bytes in hand are still good
        self._remember(entry)
        self.stats.hits += 1
        return entry

    # ------------------------------------------------------------------
    def put(self, key: str, blob: bytes, meta: dict | None = None) -> CacheEntry:
        """Store an artifact atomically; returns the stored entry."""
        entry = CacheEntry(key=key, blob=blob, meta=dict(meta or {}))
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = encode_entry(entry.blob, entry.meta)
        # Two attempts: a concurrent process (pre-fix evictors, manual
        # cleanup) may remove the temp file or even the bucket directory
        # between write and replace; last-writer-wins means simply
        # redoing the write is always correct.
        for attempt in (1, 2):
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".rcc"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
                break
            except FileNotFoundError:
                Path(tmp_name).unlink(missing_ok=True)
                if attempt == 2:
                    raise
                path.parent.mkdir(parents=True, exist_ok=True)
            except OSError:
                Path(tmp_name).unlink(missing_ok=True)
                raise
        self._remember(entry)
        self.stats.stores += 1
        if self.max_disk_bytes is not None:
            self._evict_to_budget(keep=path)
        return entry

    # ------------------------------------------------------------------
    def _remember(self, entry: CacheEntry) -> None:
        self._memory[entry.key] = entry
        self._memory.move_to_end(entry.key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def _files(self) -> list[Path]:
        # In-flight ``.tmp-*`` writes from concurrent processes are not
        # entries and must never be eviction victims — deleting one
        # makes the writer's ``os.replace`` crash.
        return [
            p for p in self.root.glob("*/*.rcc")
            if p.is_file() and not p.name.startswith(".")
        ]

    def disk_bytes(self) -> int:
        sizes = (_safe_stat(p) for p in self._files())
        return sum(st.st_size for st in sizes if st is not None)

    def _evict_to_budget(self, keep: Path | None = None) -> None:
        # Snapshot (path, size, mtime) once; a concurrent writer or a
        # second evictor may delete any of these files at any moment,
        # so every stat tolerates absence and unlink is best-effort.
        stated = [
            (path, st) for path in self._files()
            if (st := _safe_stat(path)) is not None
        ]
        total = sum(st.st_size for _, st in stated)
        if total <= self.max_disk_bytes:
            return
        # Oldest-used first; never evict the entry just written.
        stated.sort(key=lambda item: item[1].st_mtime)
        for path, st in stated:
            if total <= self.max_disk_bytes:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                total -= st.st_size  # already gone — someone else evicted
                continue
            self._memory.pop(path.stem, None)
            total -= st.st_size
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    def clear(self) -> None:
        for path in self._files():
            path.unlink(missing_ok=True)
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._files())
