"""Content-addressed on-disk artifact store for compressed images.

Layout: ``<root>/<key[:2]>/<key>.rcc`` where ``key`` is the job's
SHA-256 content key (:meth:`repro.service.jobs.CompressionJob.content_key`).
Each file is an ``RCC1`` envelope around the raw ``.rcim`` blob plus a
small JSON metadata record (original size, instruction count, build
wall time — whatever the producer wants to remember):

=========  ====================================================
field      contents
=========  ====================================================
magic      ``b"RCC1"``
sha256     32 bytes over everything after this field
meta       u32 length + UTF-8 JSON object
blob       u32 length + ``.rcim`` bytes
=========  ====================================================

Guarantees:

* **atomic writes** — entries are written to a temp file in the same
  directory and ``os.replace``-d into place, so readers never observe
  a half-written artifact, including across processes;
* **lock-free concurrent writers** — two processes storing the same
  key race benignly: both ``os.replace`` a complete envelope and the
  last writer wins (entries are content-addressed, so both envelopes
  hold identical artifacts).  Every path that ``stat``s, touches, or
  unlinks a file tolerates the file vanishing underneath it, because
  a concurrent process may evict or quarantine at any moment;
* **corruption detection** — the envelope hash is verified on every
  read; a mismatch (or truncation) raises
  :class:`CacheCorruptionError`, and :meth:`ArtifactCache.get` moves
  the bad file into ``<root>/quarantine/`` (keeping the evidence for
  forensics) and reports a miss instead of crashing the batch;
* **degraded read-only mode** — consecutive store failures trip
  :class:`WriteHealth`; while degraded, :meth:`ArtifactCache.put`
  keeps serving from the memory front and skips the disk entirely,
  so a failing disk plane degrades throughput instead of correctness.
  After a cooldown one store is let through as a half-open probe;
* **LRU memory front** — the most recently used entries stay parsed
  in memory (``memory_entries`` of them), so the hot path of a warm
  batch never touches disk;
* **size-budget eviction** — when ``max_disk_bytes`` is set, the
  least recently *used* entries (by file mtime, refreshed on read)
  are deleted until the store fits.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.image import CompressedImage
from repro.errors import ServiceError
from repro.service.fsio import DEFAULT_FS, Filesystem

CACHE_MAGIC = b"RCC1"

#: Directory (under the cache root) holding quarantined corrupt files.
#: The ``.quar`` suffix keeps them out of the ``*/*.rcc`` entry glob.
QUARANTINE_DIR = "quarantine"


def _safe_stat(path: Path) -> os.stat_result | None:
    """``stat`` that treats a concurrently deleted file as absent."""
    try:
        return path.stat()
    except OSError:
        return None


class CacheCorruptionError(ServiceError):
    """A cache file failed its integrity check."""


@dataclass
class CacheEntry:
    """One stored artifact: the raw image blob plus its metadata."""

    key: str
    blob: bytes
    meta: dict = field(default_factory=dict)

    def image(self) -> CompressedImage:
        return CompressedImage.from_bytes(self.blob)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corruptions: int = 0
    quarantined: int = 0
    write_errors: int = 0
    skipped_stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corruptions": self.corruptions,
            "quarantined": self.quarantined,
            "write_errors": self.write_errors,
            "skipped_stores": self.skipped_stores,
            "hit_rate": self.hit_rate,
        }


class WriteHealth:
    """Consecutive-failure trip switch for the cache's disk plane.

    ``threshold`` consecutive store failures flip the cache into
    degraded (read-only) mode.  After ``cooldown`` seconds the switch
    half-opens: one store is allowed through as a probe — success
    closes the switch, failure re-trips it immediately.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self.failures = 0
        self.tripped_at: float | None = None

    def record_failure(self) -> None:
        self.failures += 1
        if self.failures >= self.threshold:
            self.tripped_at = self._clock()

    def record_success(self) -> None:
        self.failures = 0
        self.tripped_at = None

    def degraded(self) -> bool:
        if self.tripped_at is None:
            return False
        if self._clock() - self.tripped_at >= self.cooldown:
            # Half-open: allow the next store through as a probe.  One
            # more failure re-trips (failures sits at threshold - 1).
            self.tripped_at = None
            self.failures = self.threshold - 1
            return False
        return True


def encode_entry(blob: bytes, meta: dict) -> bytes:
    """Serialize one cache file (``RCC1`` envelope)."""
    meta_bytes = json.dumps(meta, sort_keys=True).encode()
    body = (
        struct.pack(">I", len(meta_bytes))
        + meta_bytes
        + struct.pack(">I", len(blob))
        + blob
    )
    return CACHE_MAGIC + hashlib.sha256(body).digest() + body


def decode_entry(key: str, raw: bytes) -> CacheEntry:
    """Parse + integrity-check one cache file."""
    header = len(CACHE_MAGIC) + 32
    if len(raw) < header or raw[:4] != CACHE_MAGIC:
        raise CacheCorruptionError(f"cache entry {key}: bad envelope magic")
    body = raw[header:]
    if hashlib.sha256(body).digest() != raw[4:header]:
        raise CacheCorruptionError(f"cache entry {key}: digest mismatch")
    try:
        meta_len = struct.unpack(">I", body[:4])[0]
        meta = json.loads(body[4 : 4 + meta_len].decode())
        offset = 4 + meta_len
        blob_len = struct.unpack(">I", body[offset : offset + 4])[0]
        blob = body[offset + 4 : offset + 4 + blob_len]
        if len(blob) != blob_len:
            raise ValueError("short blob")
    except (ValueError, struct.error) as exc:
        raise CacheCorruptionError(f"cache entry {key}: malformed body") from exc
    return CacheEntry(key=key, blob=blob, meta=meta)


class ArtifactCache:
    """Content-addressed ``.rcim`` store with an in-memory LRU front."""

    def __init__(
        self,
        root: str | Path,
        max_disk_bytes: int | None = None,
        memory_entries: int = 64,
        fs: Filesystem | None = None,
        write_health: WriteHealth | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_disk_bytes = max_disk_bytes
        self.memory_entries = memory_entries
        self.fs = fs or DEFAULT_FS
        self.write_health = write_health or WriteHealth()
        self.stats = CacheStats()
        self._memory: OrderedDict[str, CacheEntry] = OrderedDict()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.rcc"

    def __contains__(self, key: str) -> bool:
        return key in self._memory or self._path(key).exists()

    @property
    def read_only(self) -> bool:
        """True while the disk plane is considered too unhealthy to write."""
        return self.write_health.degraded()

    # ------------------------------------------------------------------
    def get(self, key: str) -> CacheEntry | None:
        """Fetch an entry, or ``None`` on miss (including quarantined
        corruption)."""
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return entry
        path = self._path(key)
        try:
            raw = self.fs.read_bytes(path)
        except OSError:
            self.stats.misses += 1
            return None
        try:
            entry = decode_entry(key, raw)
        except CacheCorruptionError:
            self.stats.corruptions += 1
            self.stats.misses += 1
            self._quarantine(path)
            return None
        try:
            self.fs.utime(path)  # refresh recency for LRU eviction
        except OSError:
            pass  # concurrently evicted; the bytes in hand are still good
        self._remember(entry)
        self.stats.hits += 1
        return entry

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt file out of the store, keeping the evidence."""
        target = self.root / QUARANTINE_DIR / f"{path.name}.quar"
        try:
            self.fs.mkdir(target.parent)
            self.fs.replace(path, target)
        except OSError:
            # Quarantine dir unwritable (or the file vanished) — fall
            # back to deleting so the corrupt entry can't be served.
            try:
                self.fs.unlink(path, missing_ok=True)
            except OSError:
                return
        self.stats.quarantined += 1

    # ------------------------------------------------------------------
    def put(self, key: str, blob: bytes, meta: dict | None = None) -> CacheEntry:
        """Store an artifact; returns the stored entry.

        The memory front is always updated, so the entry is servable for
        the rest of the process lifetime even when the disk store fails
        or is skipped.  Disk failures (``OSError``) are swallowed into
        :class:`WriteHealth` — a broken disk degrades the cache, it does
        not break job completion.
        """
        entry = CacheEntry(key=key, blob=blob, meta=dict(meta or {}))
        self._remember(entry)
        if self.read_only:
            self.stats.skipped_stores += 1
            return entry
        path = self._path(key)
        payload = encode_entry(entry.blob, entry.meta)
        try:
            self.fs.mkdir(path.parent)
            # Two attempts: a concurrent process (pre-fix evictors,
            # manual cleanup) may remove the temp file or even the
            # bucket directory between write and replace;
            # last-writer-wins means redoing the write is always correct.
            for attempt in (1, 2):
                try:
                    self.fs.write_atomic(path, payload)
                    break
                except FileNotFoundError:
                    if attempt == 2:
                        raise
                    self.fs.mkdir(path.parent)
        except OSError:
            self.stats.write_errors += 1
            self.write_health.record_failure()
            return entry
        self.write_health.record_success()
        self.stats.stores += 1
        if self.max_disk_bytes is not None:
            self._evict_to_budget(keep=path)
        return entry

    # ------------------------------------------------------------------
    def _remember(self, entry: CacheEntry) -> None:
        self._memory[entry.key] = entry
        self._memory.move_to_end(entry.key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def _files(self) -> list[Path]:
        # In-flight ``.tmp-*`` writes from concurrent processes are not
        # entries and must never be eviction victims — deleting one
        # makes the writer's ``os.replace`` crash.
        return [
            p for p in self.root.glob("*/*.rcc")
            if p.is_file() and not p.name.startswith(".")
        ]

    def disk_bytes(self) -> int:
        sizes = (_safe_stat(p) for p in self._files())
        return sum(st.st_size for st in sizes if st is not None)

    def _evict_to_budget(self, keep: Path | None = None) -> None:
        # Snapshot (path, size, mtime) once; a concurrent writer or a
        # second evictor may delete any of these files at any moment,
        # so every stat tolerates absence and unlink is best-effort.
        stated = [
            (path, st) for path in self._files()
            if (st := _safe_stat(path)) is not None
        ]
        total = sum(st.st_size for _, st in stated)
        if total <= self.max_disk_bytes:
            return
        # Oldest-used first; never evict the entry just written.
        stated.sort(key=lambda item: item[1].st_mtime)
        for path, st in stated:
            if total <= self.max_disk_bytes:
                break
            if keep is not None and path == keep:
                continue
            try:
                self.fs.unlink(path)
            except OSError:
                total -= st.st_size  # already gone — someone else evicted
                continue
            self._memory.pop(path.stem, None)
            total -= st.st_size
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    def clear(self) -> None:
        for path in self._files():
            self.fs.unlink(path, missing_ok=True)
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._files())
