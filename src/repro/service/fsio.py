"""The filesystem seam under the durable service state.

Every component that persists service state — the artifact cache
(:mod:`repro.service.cache`), its sharded server variant
(:mod:`repro.server.sharding`), and the job ledger
(:mod:`repro.server.ledger`) — performs its disk I/O through a
:class:`Filesystem` object instead of calling :mod:`os`/:mod:`pathlib`
directly.  The default (:data:`DEFAULT_FS`) is a thin, allocation-free
veneer over the real syscalls; its only job is to be *replaceable*.

The replacement that matters is
:class:`repro.chaos.filesystem.FaultyFilesystem`, which injects
deterministic disk-plane faults (torn writes, ENOSPC, transient EIO,
lost appends) and simulated ``kill -9`` crashes at every write point —
the mechanism behind the ``repro-chaos`` campaigns and the crash-point
property tests.  Keeping the seam here (and not in the chaos package)
means the service layer never imports chaos code; chaos imports *this*.

Write-op inventory (the crash points a
:class:`~repro.chaos.filesystem.FaultyFilesystem` can kill at):

===================  ==================================================
op                   used by
===================  ==================================================
``write_atomic``     cache entry store, ledger manifest, ledger
                     compaction, shard-layout manifest (internally:
                     create-temp → write-temp → replace, three points)
``open_append``      ledger state-store appends (one point per line)
``append_bytes``     ledger tail quarantine
``replace``          shard migration artifact moves, quarantine moves
``unlink``           cache eviction
``truncate``         ledger torn-tail recovery
``mkdir``/``rmdir``  bucket/shard directory management
===================  ==================================================
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


class AppendHandle:
    """An append-only text handle with explicit flush (the ledger's shape)."""

    def __init__(self, path: Path) -> None:
        self._file = open(path, "a", encoding="utf-8")

    def write(self, text: str) -> None:
        self._file.write(text)

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._file.close()


class Filesystem:
    """Real filesystem operations behind one injectable object."""

    # -- reads ---------------------------------------------------------
    def read_bytes(self, path: str | Path) -> bytes:
        return Path(path).read_bytes()

    def read_text(self, path: str | Path) -> str:
        return Path(path).read_text()

    def exists(self, path: str | Path) -> bool:
        return Path(path).exists()

    def stat(self, path: str | Path) -> os.stat_result:
        return Path(path).stat()

    # -- writes --------------------------------------------------------
    def write_atomic(self, path: str | Path, data: bytes | str) -> None:
        """Write a complete file via temp-file + ``os.replace``.

        Readers never observe a partial file; a crash mid-write leaves
        at most an orphaned ``.tmp-*`` file beside the target.
        """
        path = Path(path)
        payload = data.encode() if isinstance(data, str) else data
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=path.suffix
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except OSError:
            Path(tmp_name).unlink(missing_ok=True)
            raise

    def open_append(self, path: str | Path) -> AppendHandle:
        return AppendHandle(Path(path))

    def append_bytes(self, path: str | Path, data: bytes) -> None:
        with open(path, "ab") as handle:
            handle.write(data)
            handle.flush()

    def replace(self, src: str | Path, dst: str | Path) -> None:
        os.replace(src, dst)

    def unlink(self, path: str | Path, missing_ok: bool = False) -> None:
        Path(path).unlink(missing_ok=missing_ok)

    def truncate(self, path: str | Path, size: int) -> None:
        os.truncate(path, size)

    def utime(self, path: str | Path) -> None:
        os.utime(path)

    def mkdir(self, path: str | Path) -> None:
        Path(path).mkdir(parents=True, exist_ok=True)

    def rmdir(self, path: str | Path) -> None:
        os.rmdir(path)


#: The process-wide real filesystem; every ``fs=None`` default resolves
#: to this instance.
DEFAULT_FS = Filesystem()
