"""Job specifications for the batch compression service.

A :class:`CompressionJob` names one unit of work — *compile this
program (or take it prebuilt), compress it with these parameters,
verify it, produce an* ``.rcim`` *image* — and derives a deterministic
content key for the artifact cache.

Cache-key derivation
--------------------

``content_key()`` is a SHA-256 over:

* the *program content*: the linked program's text bytes, entry index,
  bases, data image, and jump-table slots when a prebuilt
  :class:`~repro.linker.program.Program` is given; the exact source
  text for a MiniC source job; the ``(name, scale)`` pair for a
  synthetic benchmark job (benchmark generation is deterministic, so
  the pair pins the program bytes);
* the *encoding parameters*: encoding name, ``max_codewords``,
  ``max_entry_len``;
* the *pipeline version*: :data:`PIPELINE_VERSION` plus the ``.rcim``
  container version, bumped whenever the compressor or container
  output changes shape.

``verify`` is deliberately excluded — verification never changes the
artifact, so verified and unverified runs share cache entries.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

from repro import observe
from repro.core.compressor import CompressedProgram, compress
from repro.core.encodings import make_encoding
from repro.core.image import VERSION as IMAGE_VERSION
from repro.core.image import CompressedImage
from repro.errors import ServiceError, VerificationError
from repro.linker.program import Program

#: Bump when the compression pipeline changes output for identical
#: inputs (new greedy tie-breaks, layout changes, ...), so stale cached
#: artifacts are never served.
PIPELINE_VERSION = 1

ENCODING_NAMES = ("baseline", "onebyte", "nibble")

#: Verification depth a job can request (see :attr:`CompressionJob.verify`).
VERIFY_LEVELS = ("none", "stream", "full")


@dataclass(frozen=True)
class CompressionJob:
    """One compile→compress→verify work item.

    Exactly one of ``benchmark``, ``source``, or ``program`` must be
    set.  ``scale`` only applies to benchmark jobs.
    """

    benchmark: str | None = None
    scale: float = 1.0
    source: str | None = None
    program: Program | None = field(default=None, compare=False)
    encoding: str = "nibble"
    max_codewords: int | None = None
    max_entry_len: int = 4
    #: ``False``/"none" — no verification; ``True``/"stream" — bit-level
    #: stream round-trip (cheap, the historical default); "full" — the
    #: stream check plus static invariants and lockstep differential
    #: execution (:mod:`repro.verify`), timed as a pipeline stage.
    verify: bool | str = True
    name: str | None = None

    def __post_init__(self) -> None:
        provided = [
            kind
            for kind, value in (
                ("benchmark", self.benchmark),
                ("source", self.source),
                ("program", self.program),
            )
            if value is not None
        ]
        if len(provided) != 1:
            raise ServiceError(
                "a job needs exactly one of benchmark/source/program, "
                f"got {provided or 'none'}"
            )
        if self.encoding not in ENCODING_NAMES:
            raise ServiceError(
                f"unknown encoding {self.encoding!r}; choose from {ENCODING_NAMES}"
            )
        if self.max_entry_len < 1:
            raise ServiceError("max_entry_len must be >= 1")
        if isinstance(self.verify, str) and self.verify not in VERIFY_LEVELS:
            raise ServiceError(
                f"unknown verify level {self.verify!r}; choose from "
                f"{VERIFY_LEVELS}"
            )

    # ------------------------------------------------------------------
    @property
    def verify_level(self) -> str:
        """Normalized verification depth: 'none', 'stream', or 'full'."""
        if isinstance(self.verify, bool):
            return "stream" if self.verify else "none"
        return self.verify

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Display name for tables and logs."""
        if self.name:
            return self.name
        if self.benchmark:
            return self.benchmark
        if self.program is not None:
            return self.program.name
        return "<source>"

    # ------------------------------------------------------------------
    def content_key(self) -> str:
        """Deterministic hex key for the artifact this job produces."""
        digest = hashlib.sha256()
        digest.update(b"repro.service.job/v1\0")
        digest.update(
            f"pipeline={PIPELINE_VERSION};image={IMAGE_VERSION};"
            f"encoding={self.encoding};maxcw={self.max_codewords};"
            f"maxlen={self.max_entry_len}\0".encode()
        )
        if self.program is not None:
            _hash_program(digest, self.program)
        elif self.source is not None:
            digest.update(b"source\0")
            digest.update(self.source.encode())
        else:
            digest.update(f"benchmark\0{self.benchmark}\0{self.scale!r}".encode())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    def build_program(self) -> Program:
        """Produce the linked program this job compresses."""
        if self.program is not None:
            return self.program
        if self.source is not None:
            from repro.compiler import compile_and_link

            return compile_and_link(self.source, name=self.name or "job")
        from repro.workloads import build_benchmark

        assert self.benchmark is not None
        return build_benchmark(self.benchmark, self.scale)

    def run(self) -> tuple[CompressedProgram, CompressedImage]:
        """Execute the job in-process (no cache, no pool).

        The whole job runs inside one ``job`` span — the per-job trace
        tree the service exports — carrying the label, encoding, and
        verify level (``cache_hit=False``; cache hits never reach
        :meth:`run`, the pool emits their marker spans itself).
        """
        with observe.span(
            "job",
            label=self.label,
            encoding=self.encoding,
            verify=self.verify_level,
            cache_hit=False,
        ):
            program = self.build_program()
            encoding = make_encoding(self.encoding, self.max_codewords)
            compressed = compress(
                program, encoding, max_entry_len=self.max_entry_len
            )
            level = self.verify_level
            if level != "none":
                compressed.verify_stream()
            if level == "full":
                self._verify_full(program, compressed)
            return compressed, CompressedImage.from_compressed(compressed)

    def _verify_full(
        self, program: Program, compressed: CompressedProgram
    ) -> None:
        """Static invariants + lockstep differential (``verify='full'``)."""
        # Imported here so the (heavier) verify machinery is only paid
        # for by jobs that ask for it.
        from repro.verify import check_compressed, run_differential

        with observe.stage("verify"):
            invariants = check_compressed(compressed)
            if not invariants.ok:
                raise VerificationError(
                    f"{self.label}: invariant check failed —\n"
                    + invariants.render()
                )
            differential = run_differential(program, compressed)
            if not differential.ok:
                raise VerificationError(
                    f"{self.label}: differential verification failed —\n"
                    + differential.render()
                )


def _hash_program(digest: "hashlib._Hash", program: Program) -> None:
    """Feed the content-bearing parts of a linked program into a hash."""
    digest.update(b"program\0")
    digest.update(struct.pack(">IIII", program.entry_index, program.text_base,
                              program.data_base, len(program.text)))
    digest.update(program.text_bytes())
    digest.update(bytes(program.data_image))
    for slot in program.jump_table_slots:
        digest.update(struct.pack(">II", slot.data_offset, slot.target_index))
