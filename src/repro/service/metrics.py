"""Counters, timers, and histograms for the batch service.

A :class:`MetricsRegistry` is a plain in-process collection of named
instruments:

* :class:`Counter` — a monotonically increasing integer (jobs
  completed, cache hits, bytes saved);
* :class:`Timer` — accumulated wall time plus an event count and a
  bounded sample reservoir for p50/p90/p99 percentiles, with a
  context-manager form (per-stage compile/compress timing);
* :class:`Histogram` — fixed-boundary bucket counts (job latency
  distribution).

Registries serialize to plain dicts (:meth:`MetricsRegistry.as_dict`)
so worker processes can ship their measurements back to the parent,
which folds them in with :meth:`MetricsRegistry.merge`.  A registry can
also :meth:`~MetricsRegistry.install` itself as a
:class:`repro.observe.Recorder`: every span in a completed trace tree
becomes a ``stage.<name>`` timer observation and every point metric a
counter.  Installation is **concurrency-safe** — recorders compose
instead of swapping a process-wide callback, so two registries
installed at once (two service batches, a pool worker's inline
fallback racing a foreground batch) each receive every run started in
their own scope and never steal or drop each other's observations.
The library default remains a no-op when nothing is installed.
"""

from __future__ import annotations

import math
import time
from collections.abc import Iterator, Sequence
from contextlib import contextmanager

from repro.observe import Recorder, Span

DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Per-timer sample-reservoir cap; beyond it the reservoir is decimated
#: (every other sample kept, stride doubled) so memory stays bounded
#: while the percentile estimate keeps covering the whole history.
TIMER_SAMPLE_CAP = 2048

#: The labeled percentiles every timer summary reports.
TIMER_PERCENTILES = (50, 90, 99)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Timer:
    """Accumulated seconds + event count + percentile samples."""

    __slots__ = ("total_seconds", "count", "samples", "_stride", "_skip")

    def __init__(self) -> None:
        self.total_seconds = 0.0
        self.count = 0
        #: Bounded reservoir of raw observations (deterministically
        #: decimated past :data:`TIMER_SAMPLE_CAP`).
        self.samples: list[float] = []
        self._stride = 1
        self._skip = 0

    def observe(self, seconds: float) -> None:
        self.total_seconds += seconds
        self.count += 1
        if self._skip:
            self._skip -= 1
            return
        self._skip = self._stride - 1
        self.samples.append(seconds)
        if len(self.samples) > TIMER_SAMPLE_CAP:
            self.samples = self.samples[::2]
            self._stride *= 2

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def percentile(self, percent: float) -> float:
        """Nearest-rank (ceil) percentile over the sample reservoir.

        Always returns an *observed* value — on small reservoirs the
        high quantiles clamp to the max rather than extrapolating past
        it — and 0 when the reservoir is empty.
        """
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = math.ceil(percent / 100.0 * len(ordered)) - 1
        return ordered[max(0, min(len(ordered) - 1, rank))]

    def percentiles(self) -> dict[str, float]:
        """The labeled summary percentiles plus the reservoir size.

        The ``count`` field is the number of *retained* samples the
        quantiles were computed from (capped at ``TIMER_SAMPLE_CAP``),
        so downstream reports can flag low-confidence quantiles.
        """
        quantiles: dict[str, float] = {
            f"p{percent}": self.percentile(percent)
            for percent in TIMER_PERCENTILES
        }
        quantiles["count"] = len(self.samples)
        return quantiles

    @contextmanager
    def time(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)


class Histogram:
    """Cumulative-style histogram over fixed bucket boundaries.

    ``counts[i]`` is the number of observations ``<= bounds[i]``;
    the final slot counts overflows.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1
        self.sum += value


class _RegistryRecorder(Recorder):
    """Adapter folding observed spans/metrics into a registry."""

    def __init__(self, registry: "MetricsRegistry", prefix: str) -> None:
        super().__init__(name=f"registry:{prefix}")
        self._registry = registry
        self._prefix = prefix

    def on_span(self, root: Span) -> None:
        for node in root.walk():
            self._registry.timer(self._prefix + node.name).observe(
                node.duration_seconds
            )

    def on_metric(self, name: str, value: int) -> None:
        self._registry.counter(name).inc(value)


class MetricsRegistry:
    """Named counters/timers/histograms with dict round-tripping."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}
        self._recorder: _RegistryRecorder | None = None

    # -- instrument accessors (create on first use) --------------------
    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def timer(self, name: str) -> Timer:
        return self._timers.setdefault(name, Timer())

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._histograms.setdefault(name, Histogram(bounds))

    def timers(self) -> dict[str, Timer]:
        """A snapshot view of the named timers (read-only use)."""
        return dict(self._timers)

    # -- pipeline span hook ---------------------------------------------
    def install(
        self, prefix: str = "stage.", *, process_wide: bool = False
    ) -> None:
        """Observe :mod:`repro.observe` spans/metrics until
        :meth:`uninstall`: every span in a completed trace becomes a
        ``<prefix><name>`` timer observation, point metrics
        (``candidates.count``, ``decode_cache.hits``, ...) become
        counters under their own names.

        Context-scoped by default (only runs started in this context
        are observed, so concurrent registries see disjoint runs);
        pass ``process_wide=True`` to observe every run in the process.
        Any number of registries may be installed at once.
        """
        if self._recorder is not None:
            return
        self._recorder = _RegistryRecorder(self, prefix)
        self._recorder.install(process_wide=process_wide)

    def uninstall(self) -> None:
        if self._recorder is not None:
            self._recorder.uninstall()
            self._recorder = None

    @contextmanager
    def installed(
        self, prefix: str = "stage.", *, process_wide: bool = False
    ) -> Iterator["MetricsRegistry"]:
        self.install(prefix, process_wide=process_wide)
        try:
            yield self
        finally:
            self.uninstall()

    # -- serialization --------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "counters": {
                name: counter.value for name, counter in self._counters.items()
            },
            "timers": {
                name: {
                    "count": timer.count,
                    "total_seconds": timer.total_seconds,
                    "samples": list(timer.samples),
                }
                for name, timer in self._timers.items()
            },
            "histograms": {
                name: {
                    "bounds": list(histogram.bounds),
                    "counts": list(histogram.counts),
                    "total": histogram.total,
                    "sum": histogram.sum,
                }
                for name, histogram in self._histograms.items()
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`as_dict` snapshot into this one."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, data in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            timer.count += data["count"]
            timer.total_seconds += data["total_seconds"]
            timer.samples.extend(data.get("samples", ()))
            while len(timer.samples) > TIMER_SAMPLE_CAP:
                timer.samples = timer.samples[::2]
                timer._stride *= 2
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, data["bounds"])
            if tuple(data["bounds"]) != histogram.bounds:
                raise ValueError(f"histogram {name!r} bucket bounds differ")
            for index, count in enumerate(data["counts"]):
                histogram.counts[index] += count
            histogram.total += data["total"]
            histogram.sum += data["sum"]

    # -- reporting -------------------------------------------------------
    def report(self) -> str:
        """Human-readable multi-line summary, stable ordering."""
        lines = []
        if self._counters:
            lines.append("counters:")
            for name in sorted(self._counters):
                lines.append(f"  {name:<28s} {self._counters[name].value}")
        if self._timers:
            lines.append("timers (count, total, mean, p50/p90/p99):")
            for name in sorted(self._timers):
                timer = self._timers[name]
                quantiles = timer.percentiles()
                lines.append(
                    f"  {name:<28s} {timer.count:5d}  "
                    f"{timer.total_seconds:8.3f}s  "
                    f"{timer.mean_seconds * 1e3:8.2f}ms  "
                    f"{quantiles['p50'] * 1e3:.2f}/"
                    f"{quantiles['p90'] * 1e3:.2f}/"
                    f"{quantiles['p99'] * 1e3:.2f}ms"
                )
        if self._histograms:
            lines.append("histograms:")
            for name in sorted(self._histograms):
                histogram = self._histograms[name]
                buckets = "  ".join(
                    f"<={bound:g}:{count}"
                    for bound, count in zip(histogram.bounds, histogram.counts)
                    if count
                )
                overflow = histogram.counts[-1]
                if overflow:
                    buckets += f"  >{histogram.bounds[-1]:g}:{overflow}"
                lines.append(f"  {name} (n={histogram.total}): {buckets or '-'}")
        return "\n".join(lines) if lines else "(no metrics recorded)"
