"""Counters, timers, and histograms for the batch service.

A :class:`MetricsRegistry` is a plain in-process collection of named
instruments:

* :class:`Counter` — a monotonically increasing integer (jobs
  completed, cache hits, bytes saved);
* :class:`Timer` — accumulated wall time plus an event count, with a
  context-manager form (per-stage compile/compress timing);
* :class:`Histogram` — fixed-boundary bucket counts (job latency
  distribution).

Registries serialize to plain dicts (:meth:`MetricsRegistry.as_dict`)
so worker processes can ship their measurements back to the parent,
which folds them in with :meth:`MetricsRegistry.merge`.  A registry can
also :meth:`~MetricsRegistry.install` itself as the process-wide
:mod:`repro.observe` stage callback, turning the compiler's and
compressor's stage marks into ``stage.<name>`` timers; the library
default remains a no-op when nothing is installed.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence
from contextlib import contextmanager

from repro import observe

DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Timer:
    """Accumulated seconds + event count."""

    __slots__ = ("total_seconds", "count")

    def __init__(self) -> None:
        self.total_seconds = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        self.total_seconds += seconds
        self.count += 1

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    @contextmanager
    def time(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)


class Histogram:
    """Cumulative-style histogram over fixed bucket boundaries.

    ``counts[i]`` is the number of observations ``<= bounds[i]``;
    the final slot counts overflows.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1
        self.sum += value


class MetricsRegistry:
    """Named counters/timers/histograms with dict round-tripping."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}
        self._previous_callback: observe.StageCallback | None = None
        self._previous_metric_callback: observe.MetricCallback | None = None
        self._installed = False

    # -- instrument accessors (create on first use) --------------------
    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def timer(self, name: str) -> Timer:
        return self._timers.setdefault(name, Timer())

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._histograms.setdefault(name, Histogram(bounds))

    # -- pipeline stage hook -------------------------------------------
    def install(self, prefix: str = "stage.") -> None:
        """Route :mod:`repro.observe` hooks into this registry until
        :meth:`uninstall`: stage marks become ``<prefix><name>`` timers,
        point metrics (``candidates.count``, ``decode_cache.hits``, ...)
        become counters under their own names."""
        if self._installed:
            return

        def record(name: str, seconds: float) -> None:
            self.timer(prefix + name).observe(seconds)

        def count(name: str, value: int) -> None:
            self.counter(name).inc(value)

        self._previous_callback = observe.set_stage_callback(record)
        self._previous_metric_callback = observe.set_metric_callback(count)
        self._installed = True

    def uninstall(self) -> None:
        if self._installed:
            observe.set_stage_callback(self._previous_callback)
            observe.set_metric_callback(self._previous_metric_callback)
            self._previous_callback = None
            self._previous_metric_callback = None
            self._installed = False

    @contextmanager
    def installed(self, prefix: str = "stage.") -> Iterator["MetricsRegistry"]:
        self.install(prefix)
        try:
            yield self
        finally:
            self.uninstall()

    # -- serialization --------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "counters": {
                name: counter.value for name, counter in self._counters.items()
            },
            "timers": {
                name: {"count": timer.count, "total_seconds": timer.total_seconds}
                for name, timer in self._timers.items()
            },
            "histograms": {
                name: {
                    "bounds": list(histogram.bounds),
                    "counts": list(histogram.counts),
                    "total": histogram.total,
                    "sum": histogram.sum,
                }
                for name, histogram in self._histograms.items()
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`as_dict` snapshot into this one."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, data in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            timer.count += data["count"]
            timer.total_seconds += data["total_seconds"]
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, data["bounds"])
            if tuple(data["bounds"]) != histogram.bounds:
                raise ValueError(f"histogram {name!r} bucket bounds differ")
            for index, count in enumerate(data["counts"]):
                histogram.counts[index] += count
            histogram.total += data["total"]
            histogram.sum += data["sum"]

    # -- reporting -------------------------------------------------------
    def report(self) -> str:
        """Human-readable multi-line summary, stable ordering."""
        lines = []
        if self._counters:
            lines.append("counters:")
            for name in sorted(self._counters):
                lines.append(f"  {name:<28s} {self._counters[name].value}")
        if self._timers:
            lines.append("timers (count, total, mean):")
            for name in sorted(self._timers):
                timer = self._timers[name]
                lines.append(
                    f"  {name:<28s} {timer.count:5d}  "
                    f"{timer.total_seconds:8.3f}s  {timer.mean_seconds * 1e3:8.2f}ms"
                )
        if self._histograms:
            lines.append("histograms:")
            for name in sorted(self._histograms):
                histogram = self._histograms[name]
                buckets = "  ".join(
                    f"<={bound:g}:{count}"
                    for bound, count in zip(histogram.bounds, histogram.counts)
                    if count
                )
                overflow = histogram.counts[-1]
                if overflow:
                    buckets += f"  >{histogram.bounds[-1]:g}:{overflow}"
                lines.append(f"  {name} (n={histogram.total}): {buckets or '-'}")
        return "\n".join(lines) if lines else "(no metrics recorded)"
